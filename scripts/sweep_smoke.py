#!/usr/bin/env python3
"""CI smoke test for the sweep executor + cell cache.

Runs ``repro experiment fig5 --scale quick --jobs 2`` twice against a
fresh temp cache and asserts:

* run 1 executes every cell (no hits against an empty cache);
* run 2 is 100% cache hits and executes nothing;
* run 2 finishes in a fraction of run 1's wall-clock;
* both runs print byte-identical tables.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SUMMARY = re.compile(r"(\d+) cells: (\d+) cache hits, (\d+) executed")


def run_once(cache_dir: str):
    env = dict(os.environ)
    env["REPRO_CELL_CACHE"] = cache_dir
    env["PYTHONPATH"] = str(REPO / "src")
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "fig5",
         "--scale", "quick", "--jobs", "2"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        sys.exit(f"[smoke] run failed (rc={proc.returncode}):\n{proc.stderr}")
    match = SUMMARY.search(proc.stderr)
    if not match:
        sys.exit(f"[smoke] no executor summary on stderr:\n{proc.stderr}")
    cells, hits, executed = map(int, match.groups())
    return proc.stdout, cells, hits, executed, wall


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as tmp:
        out1, cells1, hits1, executed1, wall1 = run_once(tmp)
        print(f"[smoke] cold: {cells1} cells, {hits1} hits, "
              f"{executed1} executed, {wall1:.1f}s")
        out2, cells2, hits2, executed2, wall2 = run_once(tmp)
        print(f"[smoke] warm: {cells2} cells, {hits2} hits, "
              f"{executed2} executed, {wall2:.1f}s")

    failures = []
    if hits1 != 0 or executed1 != cells1:
        failures.append("cold run should execute every cell with zero hits")
    if hits2 != cells2 or executed2 != 0:
        failures.append("warm run should be 100% cache hits")
    if wall2 >= 0.5 * wall1:
        failures.append(
            f"warm run not fast enough: {wall2:.1f}s vs cold {wall1:.1f}s"
        )
    if out1 != out2:
        failures.append("cold and warm runs printed different tables")
    for failure in failures:
        print(f"[smoke] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[smoke] OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
