#!/usr/bin/env python3
"""Run every reproduction experiment and save the tables.

Usage:  python scripts/run_experiments.py [quick|medium|paper] [outdir]

``medium`` (default) takes minutes on a laptop; ``paper`` matches the
paper's 1,000-peer scale and takes correspondingly longer.  Outputs are
written to <outdir>/<experiment>.txt and echoed to stdout; EXPERIMENTS.md
quotes these files.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.experiments import (
    Scale,
    fig3_analysis,
    fig4_distribution,
    fig5_failure,
    fig6_latency,
    table2_connum,
)


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "medium"
    outdir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results")
    outdir.mkdir(exist_ok=True)
    scale = {"quick": Scale.quick, "medium": Scale.medium, "paper": Scale.paper}[
        scale_name
    ]()
    jobs = [
        ("fig3", lambda: fig3_analysis.main(points=11)),
        ("fig4", lambda: fig4_distribution.main(scale)),
        ("fig5", lambda: fig5_failure.main(scale)),
        ("fig6", lambda: fig6_latency.main(scale)),
        ("table2", lambda: table2_connum.main(scale)),
    ]
    for name, job in jobs:
        t0 = time.time()
        text = job()
        elapsed = time.time() - t0
        stamped = f"{text}\n\n[scale={scale_name}, {elapsed:.1f}s]"
        (outdir / f"{name}.txt").write_text(stamped + "\n")
        print(stamped)
        print("=" * 70, flush=True)


if __name__ == "__main__":
    main()
