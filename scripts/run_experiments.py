#!/usr/bin/env python3
"""Run every reproduction experiment and save the tables.

Usage:  python scripts/run_experiments.py [quick|medium|paper] [outdir]
                                          [--jobs N] [--no-cache]

``medium`` (default) takes minutes on a laptop; ``paper`` matches the
paper's 1,000-peer scale and takes correspondingly longer.  Outputs are
written to <outdir>/<experiment>.txt and echoed to stdout; EXPERIMENTS.md
quotes these files.

Cells fan out over ``--jobs`` worker processes (default: ``REPRO_JOBS``
or all cores) and are memoized in the content-addressed cell cache
(``~/.cache/repro-cells`` or ``$REPRO_CELL_CACHE``; ``--no-cache``
recomputes).  One executor spans the whole bundle, so cells shared
between experiments (Fig. 5a and Table 2 overlap on 18) run once.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.exec import CellCache, CellExecutor
from repro.shard import (
    SHARDS_STRICT_ENV,
    resolve_shard_backend,
    resolve_shards,
)
from repro.experiments import (
    Scale,
    fig3_analysis,
    fig4_distribution,
    fig5_failure,
    fig6_latency,
    table2_connum,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale", nargs="?", default="medium", choices=["quick", "medium", "paper"]
    )
    parser.add_argument("outdir", nargs="?", default="results", type=pathlib.Path)
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell instead of consulting the cell cache",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker shards per cell (default: REPRO_SHARDS or 1); "
        "bit-identical to unsharded execution",
    )
    parser.add_argument(
        "--shard-backend", choices=("pipe", "shm"), default=None,
        help="cross-shard transport (default: REPRO_SHARD_BACKEND or "
        "pipe); shm = struct-encoded shared-memory rings",
    )
    parser.add_argument(
        "--shards-strict", action="store_true", default=None,
        help="fail instead of silently running a cell single-process "
        "when its config is not shardable (also: REPRO_SHARDS_STRICT=1)",
    )
    args = parser.parse_args()

    args.outdir.mkdir(parents=True, exist_ok=True)
    scale = {"quick": Scale.quick, "medium": Scale.medium, "paper": Scale.paper}[
        args.scale
    ]()
    if args.shards_strict:
        os.environ[SHARDS_STRICT_ENV] = "1"
    executor = CellExecutor(
        jobs=args.jobs,
        cache=None if args.no_cache else CellCache(),
        progress=sys.stderr.isatty(),
        shards=resolve_shards(args.shards),
        shard_backend=(
            resolve_shard_backend(args.shard_backend)
            if args.shard_backend else None
        ),
    )
    jobs = [
        ("fig3", lambda: fig3_analysis.main(points=11)),
        ("fig4", lambda: fig4_distribution.main(scale, executor=executor)),
        ("fig5", lambda: fig5_failure.main(scale, executor=executor)),
        ("fig6", lambda: fig6_latency.main(scale, executor=executor)),
        ("table2", lambda: table2_connum.main(scale, executor=executor)),
    ]
    for name, job in jobs:
        t0 = time.time()
        text = job()
        elapsed = time.time() - t0
        stamped = f"{text}\n\n[scale={args.scale}, {elapsed:.1f}s]"
        (args.outdir / f"{name}.txt").write_text(stamped + "\n")
        print(stamped)
        print("=" * 70, flush=True)
    print(f"[sweep] bundle: {executor.summary()}", file=sys.stderr)


if __name__ == "__main__":
    main()
