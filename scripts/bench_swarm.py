#!/usr/bin/env python
"""Swarm bench: flash-crowd bulk transfer, naive vs tracker-mode swarm.

Boots a real multi-process cluster (one ``repro serve`` bootstrap plus N
``repro node`` daemons, each its own OS process) with
``swarm_enabled=true``, then times the same flash crowd twice:

* **naive** -- the payload is stored as one ordinary value; every
  fetcher issues a full-size ``ClientGet``.  All of them resolve to the
  single owner, whose process serializes every multi-megabyte encode.
* **swarm** -- the payload is published with ``put_file`` (hashed
  pieces + manifest) and fetched with ``get_file``.  Fetchers pull
  pieces rarest-first from the tracker's holder set, and every
  completed piece immediately makes its node a source, so the load
  spreads across the crowd and rides the raw-bytes v2 frame path.

Every piece is hash-verified on receipt and the assembled content is
hash-verified against the manifest; the bench asserts zero integrity
failures.  Appends the result to ``BENCH_swarm.json``.

``--smoke`` is the CI gate: a smaller payload, exit nonzero unless the
swarm crowd beats the naive crowd with zero integrity failures.

Run from the repo root:
``PYTHONPATH=src python scripts/bench_swarm.py --smoke``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import re
import sys
import time
from pathlib import Path

SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, SRC)

from repro.runtime import (  # noqa: E402
    ClientConnection,
    ClientGet,
    ClientPut,
    ClientStatus,
    get_file,
    put_file,
)

OVERRIDES = [
    "swarm_enabled=true",
    "swarm_inflight=4",
    "swarm_request_timeout=1000",
    "lookup_timeout=15000",
]
LISTEN_RE = re.compile(
    r"listening on ([\d.]+):(\d+)(?: \(role=(\w), p_id=(-?\d+)\))?"
)


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    return env


async def spawn(*argv: str) -> asyncio.subprocess.Process:
    return await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.STDOUT,
        env=cli_env(),
    )


async def read_listen_line(proc, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        try:
            raw = await asyncio.wait_for(
                proc.stdout.readline(), timeout=deadline - time.monotonic()
            )
        except asyncio.TimeoutError:
            break
        if not raw:
            break
        line = raw.decode().rstrip()
        lines.append(line)
        m = LISTEN_RE.search(line)
        if m:
            return m.group(1), int(m.group(2)), m.group(3)
    raise RuntimeError(f"daemon never announced its endpoint: {lines}")


async def wait_directory(host: str, port: int, want: int,
                         timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            conn = await ClientConnection(host, port).connect()
            try:
                reply = await conn.request(ClientStatus(), timeout=5.0)
            finally:
                await conn.aclose()
            if reply.ok:
                last = reply.payload
                if last["t_count"] + last["s_count"] >= want:
                    return
        except (ConnectionError, asyncio.TimeoutError):
            pass
        await asyncio.sleep(0.3)
    raise RuntimeError(f"cluster never reached {want} members: {last}")


async def wait_joined(nodes, timeout: float = 60.0) -> None:
    """Block until every node reports ``joined`` in its status."""
    deadline = time.monotonic() + timeout
    pending = list(nodes)
    while pending and time.monotonic() < deadline:
        still = []
        for host, port, _role in pending:
            try:
                conn = await ClientConnection(host, port).connect()
                try:
                    reply = await conn.request(ClientStatus(), timeout=5.0)
                finally:
                    await conn.aclose()
                if not (reply.ok and reply.payload.get("joined")):
                    still.append((host, port, _role))
            except (ConnectionError, asyncio.TimeoutError):
                still.append((host, port, _role))
        pending = still
        if pending:
            await asyncio.sleep(0.3)
    if pending:
        raise RuntimeError(f"nodes never joined: {pending}")


async def timed_crowd(coros) -> tuple:
    """Run the crowd concurrently; (wall seconds to last, per-task seconds)."""
    t0 = time.perf_counter()

    async def _one(coro):
        start = time.perf_counter()
        result = await coro
        return time.perf_counter() - start, result

    pairs = await asyncio.gather(*[_one(c) for c in coros])
    total = time.perf_counter() - t0
    return total, [p[0] for p in pairs], [p[1] for p in pairs]


async def naive_run(pub, nodes, fetch_conns, data: bytes,
                    timeout: float) -> dict:
    # Latin-1 round-trips any byte value through the Any/JSON encoding
    # without the +33% of base64; the cost under test is the single
    # owner encoding the full payload once per fetcher.
    value = data.decode("latin-1")
    # The put ack now means the copy landed at its holder (daemon holds
    # the reply on the landed verdict), so the crowd can go immediately.
    reply = await pub.request(ClientPut(key="bulk-naive", value=value),
                              timeout=timeout)
    assert reply.ok, f"naive put failed: {reply.error}"

    async def _fetch(conn):
        r = await conn.request(ClientGet(key="bulk-naive"), timeout=timeout)
        assert r.ok, f"naive get failed: {r.error}"
        assert r.payload["value"] == value, "naive get returned wrong bytes"
        return len(value)

    total, per_task, _ = await timed_crowd([_fetch(c) for c in fetch_conns])
    return {"mode": "naive", "seconds": total, "per_fetcher_s": per_task}


async def swarm_run(pub, nodes, fetch_conns, data: bytes, piece_size: int,
                    timeout: float) -> dict:
    reply = await put_file(pub, "bulk-swarm", data, piece_size=piece_size,
                           timeout=timeout)
    pieces = reply.payload.get("pieces", 0)

    async def _fetch(conn):
        blob = await get_file(conn, "bulk-swarm", timeout=timeout)
        assert blob == data, "swarm get_file returned wrong bytes"
        return len(blob)

    total, per_task, _ = await timed_crowd([_fetch(c) for c in fetch_conns])
    return {
        "mode": "swarm",
        "seconds": total,
        "per_fetcher_s": per_task,
        "pieces": pieces,
    }


async def integrity_failures(conns) -> int:
    total = 0
    for conn in conns:
        reply = await conn.request(ClientStatus(), timeout=10.0)
        if reply.ok:
            total += reply.payload.get("swarm", {}).get("integrity_failures", 0)
    return total


async def run_bench(args: argparse.Namespace) -> dict:
    procs = []
    conns = []
    set_args = [a for kv in OVERRIDES for a in ("--set", kv)]
    try:
        server = await spawn(
            "serve", "--host", "127.0.0.1", "--port", "0",
            "--ps", "0.7", "--seed", str(args.seed), *set_args,
        )
        procs.append(server)
        b_host, b_port, _ = await read_listen_line(server)
        print(f"bootstrap at {b_host}:{b_port}", flush=True)

        nodes = []  # (host, port, role)
        for i in range(args.nodes):
            proc = await spawn(
                "node", "--join", f"{b_host}:{b_port}", "--port", "0",
                "--seed", str(100 + i), *set_args,
            )
            procs.append(proc)
            host, port, role = await read_listen_line(proc)
            nodes.append((host, port, role))
        await wait_directory(b_host, b_port, args.nodes)
        await wait_joined(nodes)
        roles = "".join(sorted(n[2] for n in nodes))
        print(f"{args.nodes} nodes up (roles {roles})", flush=True)

        data = random.Random(args.seed).randbytes(args.size)
        # Fetchers attach to s-role nodes only: that is the flash-crowd
        # shape the bench models (edge peers downloading), and it keeps
        # the naive baseline honest -- a get issued *from* the t-peer
        # that owns the key's segment exercises a known seed-repo quirk
        # (owner-origin lookups can time out under a concurrent
        # multi-megabyte answer crowd) that has nothing to do with
        # either transfer plane under comparison.
        s_nodes = [n for n in nodes if n[2] == "s"]
        if len(s_nodes) < 2:
            raise RuntimeError(f"need >= 2 s-nodes, got roles "
                               f"{[n[2] for n in nodes]}")
        publisher, others = s_nodes[0], s_nodes[1:]
        pub = await ClientConnection(publisher[0], publisher[1],
                                     retry=True).connect()
        conns.append(pub)
        fetch_conns = []
        for i in range(args.fetchers):
            host, port, _role = others[i % len(others)]
            conn = await ClientConnection(host, port, retry=True).connect()
            conns.append(conn)
            fetch_conns.append(conn)

        naive = await naive_run(pub, nodes, fetch_conns, data, args.timeout)
        print(f"naive: {args.fetchers} fetchers x {args.size} bytes "
              f"in {naive['seconds']:.2f}s", flush=True)
        swarm = await swarm_run(pub, nodes, fetch_conns, data,
                                args.piece_size, args.timeout)
        print(f"swarm: {args.fetchers} fetchers x {args.size} bytes "
              f"({swarm['pieces']} pieces) in {swarm['seconds']:.2f}s",
              flush=True)
        bad = await integrity_failures(conns)
        swarm["integrity_failures"] = bad

        return {
            "bench": "swarm",
            "setup": {
                "nodes": args.nodes,
                "fetchers": args.fetchers,
                "size_bytes": args.size,
                "piece_size": args.piece_size,
                "seed": args.seed,
                "smoke": args.smoke,
            },
            "runs": [naive, swarm],
            "speedup": naive["seconds"] / max(swarm["seconds"], 1e-9),
            "integrity_failures": bad,
        }
    finally:
        for conn in conns:
            try:
                await conn.aclose()
            except (OSError, ConnectionError):
                pass
        for proc in procs:
            if proc.returncode is None:
                proc.terminate()
        for proc in procs:
            if proc.returncode is None:
                try:
                    await asyncio.wait_for(proc.wait(), timeout=10)
                except asyncio.TimeoutError:
                    proc.kill()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--nodes", type=int, default=10)
    ap.add_argument("--fetchers", type=int, default=8)
    # The naive baseline carries the whole value inside one DataFound
    # frame, whose JSON string escaping roughly quadruples random
    # bytes -- so it hits the 16 MiB wire frame ceiling just past
    # 2 MiB of payload.  The swarm plane has no such limit (pieces are
    # individually framed), but the bench compares both on the same
    # payload, so the default stays under the naive ceiling.
    ap.add_argument("--size", type=int, default=2 * 1024 * 1024,
                    help="payload bytes (default 2 MiB)")
    ap.add_argument("--piece-size", type=int, default=64 * 1024)
    ap.add_argument("--timeout", type=float, default=120.0)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--output", type=Path, default=Path("BENCH_swarm.json"))
    ap.add_argument("--smoke", action="store_true",
                    help="CI gate: smaller payload, fail unless the swarm "
                    "crowd beats the naive crowd with zero bad pieces")
    args = ap.parse_args()
    if args.smoke:
        args.size = min(args.size, 2 * 1024 * 1024)

    result = asyncio.run(run_bench(args))
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}", flush=True)
    print(f"speedup: {result['speedup']:.2f}x "
          f"(naive {result['runs'][0]['seconds']:.2f}s, "
          f"swarm {result['runs'][1]['seconds']:.2f}s), "
          f"{result['integrity_failures']} integrity failures", flush=True)

    if args.smoke:
        problems = []
        if result["speedup"] <= 1.0:
            problems.append(
                f"swarm ({result['runs'][1]['seconds']:.2f}s) did not beat "
                f"naive ({result['runs'][0]['seconds']:.2f}s)"
            )
        if result["integrity_failures"]:
            problems.append(
                f"{result['integrity_failures']} piece integrity failures"
            )
        for problem in problems:
            print(f"smoke FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"smoke OK: swarm {result['speedup']:.2f}x faster, "
              "zero integrity failures", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
