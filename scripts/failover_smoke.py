#!/usr/bin/env python
"""CI smoke test: live failover with zero lost acknowledged writes.

Boots a real multi-process cluster -- one ``repro serve`` bootstrap plus
seven ``repro node`` daemons, every one its own OS process -- at
replication_factor=3 / write_quorum=2, puts background load on it with
``repro bench-clients``, records a batch of acknowledged puts, then
SIGKILLs a t-peer mid-run.  After the ring repairs itself the test
asserts that every acknowledged write is still readable from a survivor
and that some survivor's ``repro_failover_total`` counter moved.

Exits 0 and prints PASS on success; any failure is a non-zero exit for
CI.  Run from the repo root:
``PYTHONPATH=src python scripts/failover_smoke.py``
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
import time

SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, SRC)

from repro.runtime import ClientConnection, ClientGet, ClientPut, ClientStatus  # noqa: E402

N_NODES = 7
TRACKED_PUTS = 40
FAILOVER_PUTS = 20

# Same overrides for the server and every node: replicate each segment to
# 3 peers, ack after 2 copies, and run the failure detector fast enough
# that detection + election + repair all land well inside the CI timeout.
OVERRIDES = [
    "replication_factor=3",
    "write_quorum=2",
    "replica_ack_timeout=500",
    "replica_write_retries=1",
    "replica_sync_period=1000",
    "heartbeats_enabled=true",
    "hello_period=200",
    "neighbor_timeout=700",
    "ack_suppress=100",
    "election_grace=600",
    "join_retry_timeout=1500",
    "lookup_timeout=5000",
]
# The server prints just host:port; nodes append "(role=X, p_id=N)".
LISTEN_RE = re.compile(
    r"listening on ([\d.]+):(\d+)(?: \(role=(\w), p_id=(-?\d+)\))?"
)


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    return env


async def spawn(*argv: str) -> asyncio.subprocess.Process:
    return await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.STDOUT,
        env=cli_env(),
    )


async def read_listen_line(proc, timeout: float = 30.0):
    """Wait for a daemon's "listening on ..." line; return (host, port, role)."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        try:
            raw = await asyncio.wait_for(
                proc.stdout.readline(), timeout=deadline - time.monotonic()
            )
        except asyncio.TimeoutError:
            break
        if not raw:
            break
        line = raw.decode().rstrip()
        lines.append(line)
        m = LISTEN_RE.search(line)
        if m:
            return m.group(1), int(m.group(2)), m.group(3)
    raise RuntimeError(f"daemon never announced its endpoint: {lines}")


async def wait_directory(endpoint: str, want: int, timeout: float = 60.0) -> None:
    host, port = endpoint.rsplit(":", 1)
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            conn = await ClientConnection(host, int(port)).connect()
            try:
                reply = await conn.request(ClientStatus(), timeout=5.0)
            finally:
                await conn.aclose()
            if reply.ok:
                last = reply.payload
                if last["t_count"] + last["s_count"] >= want:
                    return
        except (ConnectionError, asyncio.TimeoutError):
            pass
        await asyncio.sleep(0.3)
    raise RuntimeError(f"cluster never reached {want} members: {last}")


async def scrape_metrics(host: str, port: int) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    return raw.partition(b"\r\n\r\n")[2].decode("utf-8")


async def failover_total(survivors) -> float:
    total = 0.0
    for host, port, _role in survivors:
        try:
            text = await scrape_metrics(host, port)
        except (OSError, ConnectionError, asyncio.TimeoutError):
            continue
        for line in text.splitlines():
            if line.startswith("repro_failover_total"):
                total += float(line.rsplit(" ", 1)[1])
    return total


async def main() -> None:
    procs = []
    set_args = [arg for kv in OVERRIDES for arg in ("--set", kv)]
    try:
        server = await spawn(
            "serve", "--host", "127.0.0.1", "--port", "0",
            "--ps", "0.3", "--seed", "7", *set_args,
        )
        procs.append(server)
        host, port, _ = await read_listen_line(server)
        bootstrap = f"{host}:{port}"
        print(f"bootstrap at {bootstrap}", flush=True)

        nodes = []  # (proc, host, port, role)
        for i in range(N_NODES):
            proc = await spawn(
                "node", "--join", bootstrap, "--port", "0",
                "--seed", str(100 + i), *set_args,
            )
            procs.append(proc)
            n_host, n_port, role = await read_listen_line(proc)
            nodes.append((proc, n_host, n_port, role))
            print(f"node {i} up at {n_host}:{n_port} role={role}", flush=True)
        await wait_directory(bootstrap, N_NODES)

        t_nodes = [n for n in nodes if n[3] == "t"]
        assert len(t_nodes) >= 2, "need at least two t-peers to kill one"
        victim = t_nodes[-1]
        survivors = [
            (n[1], n[2], n[3]) for n in nodes if n is not victim
        ]
        target = next(s for s in survivors if s[2] == "t")
        print(f"victim {victim[1]}:{victim[2]}, client target "
              f"{target[0]}:{target[1]}", flush=True)

        # Background load across the survivors while we track our own puts.
        bench = await spawn(
            "bench-clients",
            *[a for s in survivors[:3] for a in ("--node", f"{s[0]}:{s[1]}")],
            "--clients", "3", "--pipeline", "4", "--duration", "8",
            "--warmup", "0.2", "--get-fraction", "0.7",
            "--keyspace", "64", "--timeout", "15", "--seed", "3",
        )
        procs.append(bench)
        await asyncio.sleep(1.0)

        conn = await ClientConnection(target[0], target[1], retry=True).connect()
        acked = {}
        for i in range(TRACKED_PUTS):
            key, value = f"tracked-{i}", f"payload-{i}"
            reply = await conn.request(ClientPut(key=key, value=value), timeout=15.0)
            assert reply.ok, f"put {key} failed: {reply.error}"
            acked[key] = value
        print(f"{len(acked)} writes acknowledged; killing victim", flush=True)

        before = await failover_total(survivors)
        os.kill(victim[0].pid, signal.SIGKILL)
        await victim[0].wait()

        # Keep writing through the failover window -- only acknowledged
        # puts join the must-survive set; refused ones are allowed.
        accepted_during = 0
        for i in range(FAILOVER_PUTS):
            key, value = f"during-{i}", f"payload-{i}"
            try:
                reply = await conn.request(
                    ClientPut(key=key, value=value), timeout=15.0
                )
            except (ConnectionError, asyncio.TimeoutError):
                continue
            if reply.ok:
                acked[key] = value
                accepted_during += 1
            await asyncio.sleep(0.1)
        print(f"{accepted_during}/{FAILOVER_PUTS} writes acked during "
              "failover; waiting for repair", flush=True)
        await asyncio.sleep(4.0)

        lost = dict(acked)
        deadline = time.monotonic() + 30.0
        while lost and time.monotonic() < deadline:
            for key in list(lost):
                try:
                    reply = await conn.request(ClientGet(key=key), timeout=10.0)
                except (ConnectionError, asyncio.TimeoutError):
                    break
                if reply.ok and reply.payload["value"] == lost[key]:
                    del lost[key]
            if lost:
                await asyncio.sleep(0.5)
        assert not lost, (
            f"{len(lost)}/{len(acked)} acknowledged writes lost: "
            f"{sorted(lost)[:5]}"
        )
        print(f"all {len(acked)} acknowledged writes survived", flush=True)

        after = await failover_total(survivors)
        assert after > before, (
            f"repro_failover_total did not move ({before} -> {after})"
        )
        print(f"repro_failover_total {before} -> {after}", flush=True)

        await conn.aclose()
        bench_out, _ = await asyncio.wait_for(bench.communicate(), timeout=60)
        print("bench-clients rc:", bench.returncode, flush=True)
        sys.stdout.write(bench_out.decode()[-400:] + "\n")
        print("PASS")
    finally:
        for proc in procs:
            if proc.returncode is None:
                proc.terminate()
        for proc in procs:
            if proc.returncode is None:
                try:
                    await asyncio.wait_for(proc.wait(), timeout=10)
                except asyncio.TimeoutError:
                    proc.kill()


if __name__ == "__main__":
    asyncio.run(main())
