#!/usr/bin/env python
"""CI smoke test: 5-node localnet + put/get through the repro CLI.

Boots 1 bootstrap + 2 t-peers + 2 s-peers in-process (real TCP on
ephemeral localhost ports), then drives one ``put`` and one ``get``
through ``python -m repro`` *subprocesses* -- the full CLI -> client
codec -> node path -- and asserts clean shutdown.  Exits 0 and prints
PASS on success; any failure is a non-zero exit for CI.

Run from the repo root: ``PYTHONPATH=src python scripts/localnet_smoke.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime import LocalNet  # noqa: E402


async def run_cli(*argv: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=env,
    )
    out, err = await asyncio.wait_for(proc.communicate(), timeout=30)
    if proc.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(argv)} failed ({proc.returncode}): {err.decode()}"
        )
    return out.decode()


async def main() -> None:
    net = LocalNet(t_peers=2, s_peers=2, seed=5)
    await net.start(join_timeout=20)
    await net.wait_converged(timeout=20)
    print("converged:", net.describe())

    putter = net.nodes[0]
    put_out = await run_cli(
        "put", "smoke.key", "smoke-value", "--node", f"{putter.host}:{putter.port}"
    )
    print("put ->", put_out.strip())
    await asyncio.sleep(0.3)

    # Get through a node whose segment does not own the key, so the
    # lookup crosses the t-network over real sockets.
    remote = net.node_for_key("smoke.key", putter)
    get_out = await run_cli(
        "get", "smoke.key", "--node", f"{remote.host}:{remote.port}"
    )
    payload = json.loads(get_out)
    assert payload["value"] == "smoke-value", payload
    print("get ->", get_out.strip())

    status_out = await run_cli(
        "status", "--node", f"{net.bootstrap.host}:{net.bootstrap.port}"
    )
    directory = json.loads(status_out)
    assert directory["t_count"] == 2 and directory["s_count"] == 2, directory

    await net.stop()
    leftovers = [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]
    assert not leftovers, f"leaked tasks: {leftovers}"
    print("PASS")


if __name__ == "__main__":
    asyncio.run(main())
