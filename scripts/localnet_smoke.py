#!/usr/bin/env python
"""CI smoke test: 5-node localnet + put/get through the repro CLI.

Boots 1 bootstrap + 2 t-peers + 2 s-peers in-process (real TCP on
ephemeral localhost ports), then drives one ``put`` and one ``get``
through ``python -m repro`` *subprocesses* -- the full CLI -> client
codec -> node path -- and asserts clean shutdown.  Exits 0 and prints
PASS on success; any failure is a non-zero exit for CI.

Run from the repo root: ``PYTHONPATH=src python scripts/localnet_smoke.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime import LocalNet  # noqa: E402


async def scrape_metrics(host: str, port: int) -> str:
    """GET /metrics from a daemon's listen port, return the body text."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    assert " 200 " in status_line, status_line
    return body.decode("utf-8")


async def run_cli(*argv: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=env,
    )
    out, err = await asyncio.wait_for(proc.communicate(), timeout=30)
    if proc.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(argv)} failed ({proc.returncode}): {err.decode()}"
        )
    return out.decode()


async def main() -> None:
    net = LocalNet(t_peers=2, s_peers=2, seed=5)
    await net.start(join_timeout=20)
    await net.wait_converged(timeout=20)
    print("converged:", net.describe())

    putter = net.nodes[0]
    put_out = await run_cli(
        "put", "smoke.key", "smoke-value", "--node", f"{putter.host}:{putter.port}"
    )
    print("put ->", put_out.strip())
    await asyncio.sleep(0.3)

    # Get through a node whose segment does not own the key, so the
    # lookup crosses the t-network over real sockets.
    remote = net.node_for_key("smoke.key", putter)
    get_out = await run_cli(
        "get", "smoke.key", "--node", f"{remote.host}:{remote.port}"
    )
    payload = json.loads(get_out)
    assert payload["value"] == "smoke-value", payload
    print("get ->", get_out.strip())

    status_out = await run_cli(
        "status", "--node", f"{net.bootstrap.host}:{net.bootstrap.port}"
    )
    directory = json.loads(status_out)
    assert directory["t_count"] == 2 and directory["s_count"] == 2, directory
    assert directory["codec_version"] == 2 and directory["uptime_s"] > 0, directory

    # Every daemon multiplexes Prometheus scrapes on its protocol port;
    # after one put/get the frame counters must have moved everywhere,
    # and the get's origin recorded its lookup in the hop histogram.
    for host, port in [(net.bootstrap.host, net.bootstrap.port)] + [
        (n.host, n.port) for n in net.nodes
    ]:
        text = await scrape_metrics(host, port)
        assert "# TYPE repro_frames_total counter" in text, (host, port)
        assert 'repro_frames_total{' in text, (host, port)
    origin_text = await scrape_metrics(remote.host, remote.port)
    hop_count_lines = [
        line
        for line in origin_text.splitlines()
        if line.startswith("repro_lookup_hops_bucket")
        and not line.rstrip().endswith(" 0")
    ]
    assert hop_count_lines, "get origin shows no lookup hop observations"
    print("metrics ->", hop_count_lines[-1])

    await net.stop()
    leftovers = [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]
    assert not leftovers, f"leaked tasks: {leftovers}"
    print("PASS")


if __name__ == "__main__":
    asyncio.run(main())
