#!/usr/bin/env python
"""Replication bench: quorum-write latency and time-to-repair.

Boots one in-process localnet per replication factor (k = 1, 2, 3; real
TCP sockets on localhost), measures client-observed put latency at that
factor -- k=1 is the paper's unreplicated write, k>1 pays the
``write_quorum`` round trips of the repro.replica protocol -- then, for
k > 1, abruptly kills a t-peer that owns acknowledged keys and measures
how long until every one of its keys is readable again (detection +
ring repair + segment handoff + anti-entropy).

Writes ``BENCH_replica.json``.  ``--smoke`` runs a smaller batch and
exits nonzero unless every factor's p99 put latency stays under the
bound and the k=3 repair completes -- the CI regression gate for the
durable write path.

Run from the repo root: ``PYTHONPATH=src python scripts/bench_replica.py --smoke``
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime import ClientConnection, ClientGet, ClientPut, LocalNet  # noqa: E402
from repro.runtime.localnet import fast_config  # noqa: E402

SMOKE_P99_BOUND_MS = 5_000.0
SMOKE_REPAIR_BOUND_S = 25.0


def quantile(sorted_vals, q):
    if not sorted_vals:
        return None
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def replica_config(k: int):
    return fast_config(
        replication_factor=k,
        write_quorum=min(2, k),
        replica_ack_timeout=500.0,
        replica_write_retries=1,
        replica_sync_period=1_000.0 if k > 1 else 0.0,
        heartbeats_enabled=True,
    )


async def bench_factor(k: int, n_puts: int, measure_repair: bool) -> dict:
    net = LocalNet(t_peers=4, s_peers=1, seed=31 + k, config=replica_config(k))
    await net.start(join_timeout=30)
    await net.wait_converged(timeout=30)
    conn = None
    try:
        t_nodes = [n for n in net.nodes if n.peer.role == "t"]
        victim = t_nodes[0]
        survivor = next(n for n in net.nodes if n is not victim)
        conn = await ClientConnection(
            survivor.host, survivor.port, retry=True
        ).connect()

        latencies = []
        acked = {}
        for i in range(n_puts):
            key, value = f"bench-{k}-{i}", f"v-{i}"
            t0 = time.perf_counter()
            reply = await conn.request(ClientPut(key=key, value=value), timeout=15.0)
            latencies.append((time.perf_counter() - t0) * 1_000.0)
            assert reply.ok, f"k={k} put {i} failed: {reply.error}"
            acked[key] = value
        latencies.sort()
        result = {
            "replication_factor": k,
            "write_quorum": min(2, k),
            "puts": n_puts,
            "put_p50_ms": round(quantile(latencies, 0.50), 3),
            "put_p99_ms": round(quantile(latencies, 0.99), 3),
            "put_mean_ms": round(sum(latencies) / len(latencies), 3),
            "time_to_repair_s": None,
        }

        if measure_repair:
            lost_keys = [
                key for key in acked
                if victim.peer.owns_locally(victim.peer.idspace.hash_key(key))
            ]
            t0 = time.monotonic()
            await victim.stop()  # abrupt: no departure handshake
            deadline = t0 + 60.0
            pending = set(lost_keys or acked)
            while pending and time.monotonic() < deadline:
                await asyncio.sleep(0.2)
                for key in list(pending):
                    reply = await conn.request(ClientGet(key=key), timeout=10.0)
                    if reply.ok and reply.payload["value"] == acked[key]:
                        pending.discard(key)
            result["time_to_repair_s"] = (
                round(time.monotonic() - t0, 2) if not pending else None
            )
            result["keys_on_crashed_segment"] = len(lost_keys)
            result["keys_unrecovered"] = len(pending)
        return result
    finally:
        if conn is not None:
            await conn.aclose()
        await net.stop()


async def run(n_puts: int) -> dict:
    runs = []
    for k in (1, 2, 3):
        print(f"factor k={k}: {n_puts} puts"
              f"{' + crash/repair' if k > 1 else ''} ...", flush=True)
        runs.append(await bench_factor(k, n_puts, measure_repair=k > 1))
        print(f"  -> {json.dumps(runs[-1])}", flush=True)
    return {
        "bench": "repro.replica: quorum-write latency + time-to-repair",
        "setup": (
            "in-process LocalNet per factor (1 bootstrap + 4 t-peers + 1 "
            "s-peer, real TCP on localhost), fast_config timers, "
            "write_quorum=min(2,k), replica_ack_timeout=500ms; latency is "
            "client-observed put round trip; repair time is abrupt t-peer "
            "kill -> every key of the crashed segment readable again"
        ),
        "runs": runs,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--puts", type=int, default=150,
                        help="tracked puts per replication factor")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_replica.json")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 60 puts, exit 1 unless p99 latency "
                        "and k=3 repair clear their bounds")
    args = parser.parse_args()

    n_puts = 60 if args.smoke else args.puts
    result = asyncio.run(run(n_puts))
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.smoke:
        failures = []
        for r in result["runs"]:
            if r["put_p99_ms"] > SMOKE_P99_BOUND_MS:
                failures.append(
                    f"k={r['replication_factor']} p99 {r['put_p99_ms']}ms "
                    f"> {SMOKE_P99_BOUND_MS}ms"
                )
            if r["replication_factor"] > 1:
                if r["time_to_repair_s"] is None:
                    failures.append(
                        f"k={r['replication_factor']} repair did not complete"
                    )
                elif r["time_to_repair_s"] > SMOKE_REPAIR_BOUND_S:
                    failures.append(
                        f"k={r['replication_factor']} repair "
                        f"{r['time_to_repair_s']}s > {SMOKE_REPAIR_BOUND_S}s"
                    )
        if failures:
            print("SMOKE FAIL:", "; ".join(failures))
            return 1
        print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
