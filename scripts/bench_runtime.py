#!/usr/bin/env python
"""Live-runtime wire throughput bench: codec v1 vs v2 over real sockets.

Three measurements, each run once per wire version:

* **codec micro** -- encode+decode of the medium message mix, pure
  in-process CPU: the ceiling the transport can approach.
* **flood pump** (the headline) -- one source :class:`AioTransport`
  broadcasting the mix via ``send_many`` to ``--sinks`` TCP sink
  servers on localhost, each sink decoding every frame as a live node
  would.  Frames/sec is counted at the decode side, so the number
  reflects the full wire path: encode-once fan-out, write coalescing,
  kernel round-trip, zero-copy decode.
* **localnet put/get** -- client-verb ops/sec against a small
  :class:`LocalNet`, over one persistent pipelined
  :class:`ClientConnection`: serial (one op in flight, pure service
  latency) and pipelined (64 in flight, saturation throughput).  The
  deeper open/closed-loop latency study lives in ``repro
  bench-clients`` / ``BENCH_clientpath.json``; this bench keeps the
  per-codec-version numbers comparable across PRs.

The medium mix is flood-weighted to match the paper's workload: the
s-network answers lookups by flooding, so on the wire, query fan-out
frames dominate store/result frames by an order of magnitude (see
PAPER.md and the fanout histograms in a sim run).  Two mix entries
(StoreRequest, DataFound) carry ``Any``-typed JSON payloads -- the
codec's documented slow case -- so the headline is not a
fixed-fields-only best case.

Protocol: ``--repeats`` timed repeats per version per bench (default
3), interleaved v1/v2 within the same process and time window; best
(min wall) is the headline and the median is reported next to it.
Results land in ``BENCH_runtime.json`` at the repo root.

Usage::

    PYTHONPATH=src python scripts/bench_runtime.py            # full, writes JSON
    PYTHONPATH=src python scripts/bench_runtime.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.overlay.messages import (
    DataFound,
    FloodQuery,
    Hello,
    LookupRequest,
    StoreRequest,
    WalkQuery,
)
from repro.runtime import (
    WIRE_V1,
    WIRE_V2,
    AioTransport,
    ClientConnection,
    ClientGet,
    ClientPut,
    LocalNet,
    acall,
    pack_endpoint,
)
from repro.runtime.aio_transport import frame_stream
from repro.runtime.client import runtime_codec
from repro.runtime.localnet import fast_config


# ----------------------------------------------------------------------
# The medium mix (weights = relative frame counts on the wire)
# ----------------------------------------------------------------------
def build_mix() -> List[object]:
    origin = pack_endpoint("127.0.0.1", 9001)
    mix: List[object] = []
    for i in range(8):
        mix.append(
            FloodQuery(
                d_id=3, key=f"doc/alpha-{i}", origin=origin, query_id=1000 + i,
                ttl=4, attempt=1, span_id=987654321 + i,
            )
        )
    for i in range(3):
        mix.append(
            LookupRequest(
                d_id=5, key=f"doc/beta-{i}", origin=origin, query_id=2000 + i,
                ttl=6, attempt=0, span_id=123450 + i,
            )
        )
    for i in range(2):
        mix.append(
            WalkQuery(
                d_id=7, key=f"doc/gamma-{i}", origin=origin, query_id=3000 + i,
                ttl=3, span_id=54321 + i,
            )
        )
    mix.append(Hello())
    mix.append(
        StoreRequest(
            key="doc/alpha-0", value={"title": "Alpha", "tags": ["x", "y"]},
            d_id=3, origin=origin,
        )
    )
    mix.append(
        DataFound(
            query_id=1000, key="doc/alpha-0",
            value={"title": "Alpha", "tags": ["x", "y"]},
            holder=origin, holder_pid=7, holder_pred_pid=6, hops=5,
        )
    )
    sender = pack_endpoint("127.0.0.1", 9000)
    for m in mix:
        m.sender = sender
        m.hop_count = 2
    return mix


MIX_DESCRIPTION = (
    "8x FloodQuery + 3x LookupRequest + 2x WalkQuery + 1x Hello "
    "+ 1x StoreRequest + 1x DataFound (the two last carry JSON payloads)"
)


# ----------------------------------------------------------------------
# Bench 1: codec micro (encode + decode, no sockets)
# ----------------------------------------------------------------------
def bench_codec_micro(version: int, rounds: int) -> Dict[str, float]:
    codec = runtime_codec(version=version)
    decoder = runtime_codec()  # accepts both, like every live daemon
    mix = build_mix()
    frames = [codec.frame(m) for m in mix]
    payloads = [memoryview(f)[4:] for f in frames]
    n_msgs = rounds * len(mix)

    t0 = time.perf_counter()
    for _ in range(rounds):
        for m in mix:
            codec.frame(m)
    t_enc = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        for p in payloads:
            decoder.decode(p)
    t_dec = time.perf_counter() - t0

    return {
        "encode_msgs_per_s": n_msgs / t_enc,
        "decode_msgs_per_s": n_msgs / t_dec,
        "roundtrip_msgs_per_s": n_msgs / (t_enc + t_dec),
        "avg_frame_bytes": sum(len(f) for f in frames) / len(frames),
    }


# ----------------------------------------------------------------------
# Bench 2: flood pump (send_many fan-out over real TCP, decode at sinks)
# ----------------------------------------------------------------------
class _Origin:
    address = pack_endpoint("127.0.0.1", 9000)
    alive = True

    def receive(self, msg) -> None:  # pragma: no cover - never local
        pass


async def _flood_pump(version: int, sinks: int, rounds: int) -> float:
    """Broadcast ``rounds`` copies of the mix to ``sinks`` decoding TCP
    servers; returns frames/sec counted at the decode side."""
    decoder = runtime_codec()
    mix = build_mix()
    per_sink = rounds * len(mix)
    counters = [0] * sinks
    done = asyncio.Event()

    def make_sink(idx: int):
        async def sink(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                async for payload in frame_stream(reader):
                    decoder.decode(payload)
                    counters[idx] += 1
                    if counters[idx] >= per_sink and all(
                        c >= per_sink for c in counters
                    ):
                        done.set()
            finally:
                writer.close()

        return sink

    servers = []
    dests = []
    for i in range(sinks):
        server = await asyncio.start_server(make_sink(i), "127.0.0.1", 0)
        servers.append(server)
        dests.append(pack_endpoint("127.0.0.1", server.sockets[0].getsockname()[1]))

    transport = AioTransport(
        runtime_codec(version=version),
        asyncio.get_running_loop(),
        max_queue=1 << 20,  # measuring throughput, not shedding
    )
    origin = _Origin()
    try:
        t0 = time.perf_counter()
        for _ in range(rounds):
            for m in mix:
                transport.send_many(origin, dests, m)
            # Crude flow control: keep the producer from building a
            # multi-hundred-MB backlog ahead of the writers.
            if transport.tx_queue_depth() > 20_000:
                while transport.tx_queue_depth() > 4_000:
                    await asyncio.sleep(0)
        await asyncio.wait_for(done.wait(), timeout=300)
        wall = time.perf_counter() - t0
    finally:
        await transport.aclose()
        for server in servers:
            server.close()
            await server.wait_closed()
    return (per_sink * sinks) / wall


# ----------------------------------------------------------------------
# Bench 3: localnet put/get ops (latency-bound; reported, not headline)
# ----------------------------------------------------------------------
async def _localnet_ops(version: int, ops: int) -> Dict[str, float]:
    net = LocalNet(
        t_peers=2, s_peers=1, seed=5, config=fast_config(),
        codec_version=version,
    )
    await net.start(join_timeout=30)
    try:
        await net.wait_converged(timeout=30)
        node = net.nodes[0]
        async with ClientConnection(node.host, node.port) as conn:
            t0 = time.perf_counter()
            for i in range(ops):
                reply = await conn.request(
                    ClientPut(key=f"bench/{i}", value=f"value-{i}")
                )
                assert reply.ok, reply.error
            put_wall = time.perf_counter() - t0
        await asyncio.sleep(0.3)  # let spreads land before reading back
        reader_node = net.nodes[-1]
        async with ClientConnection(reader_node.host, reader_node.port) as conn:
            t0 = time.perf_counter()
            for i in range(ops):
                reply = await conn.request(
                    ClientGet(key=f"bench/{i}"), timeout=15
                )
                assert reply.ok, reply.error
            get_wall = time.perf_counter() - t0

            # Saturation: the same gets with 64 permanently in flight.
            pipelined = ops * 10
            sem = asyncio.Semaphore(64)

            async def one(i: int) -> None:
                async with sem:
                    reply = await conn.request(
                        ClientGet(key=f"bench/{i % ops}"), timeout=15
                    )
                    assert reply.ok, reply.error

            t0 = time.perf_counter()
            await asyncio.gather(*(one(i) for i in range(pipelined)))
            pipelined_wall = time.perf_counter() - t0
        return {
            "put_ops_per_s": ops / put_wall,
            "get_ops_per_s": ops / get_wall,
            "pipelined_get_ops_per_s": pipelined / pipelined_wall,
        }
    finally:
        await net.stop()


# ----------------------------------------------------------------------
# Smoke: tiny localnet + /metrics scrape + v2 >= v1 pump gate (CI)
# ----------------------------------------------------------------------
async def _scrape_metrics(host: str, port: int) -> str:
    """Async one-shot HTTP GET /metrics (the daemons share our loop, so
    a blocking urllib call here would deadlock the scrape)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    return raw.split(b"\r\n\r\n", 1)[-1].decode("utf-8")


async def _smoke() -> int:
    print("smoke 1/3: tiny localnet, put/get, /metrics scrape ...")
    net = LocalNet(t_peers=2, s_peers=1, seed=3, config=fast_config())
    await net.start(join_timeout=30)
    try:
        await net.wait_converged(timeout=30)
        node = net.nodes[0]
        reply = await acall(node.host, node.port, ClientPut(key="smoke", value="ok"))
        assert reply.ok, reply.error
        reply = await acall(node.host, node.port, ClientGet(key="smoke"), timeout=15)
        assert reply.ok and reply.payload["value"] == "ok"
        for daemon in [net.bootstrap, *net.nodes]:
            text = await _scrape_metrics(daemon.host, daemon.port)
            moved = [
                line
                for line in text.splitlines()
                if line.startswith("repro_frames_total") and line.split()[-1] != "0.0"
            ]
            assert moved, f"no frames counted on {daemon.host}:{daemon.port}"
        print("  localnet served put/get; every daemon counted frames")
    finally:
        await net.stop()

    print("smoke 2/3: codec micro, v2 must beat v1 ...")
    micro = {v: bench_codec_micro(v, rounds=2_000) for v in (WIRE_V1, WIRE_V2)}
    ratio = (
        micro[WIRE_V2]["roundtrip_msgs_per_s"] / micro[WIRE_V1]["roundtrip_msgs_per_s"]
    )
    print(f"  micro roundtrip v2/v1: {ratio:.2f}x")
    assert ratio >= 1.0, f"codec v2 slower than v1 in micro bench ({ratio:.2f}x)"

    print("smoke 3/3: flood pump, v2 must beat v1 (best of 2) ...")
    pump: Dict[int, float] = {}
    for version in (WIRE_V1, WIRE_V2):
        runs = [await _flood_pump(version, sinks=2, rounds=400) for _ in range(2)]
        pump[version] = max(runs)
        print(f"  v{version}: {pump[version]:,.0f} frames/s (best of 2)")
    assert pump[WIRE_V2] >= pump[WIRE_V1], (
        f"v2 pump ({pump[WIRE_V2]:,.0f}/s) slower than v1 ({pump[WIRE_V1]:,.0f}/s)"
    )
    print("smoke OK")
    return 0


# ----------------------------------------------------------------------
def _stats(runs: List[float]) -> Dict[str, float]:
    return {"best": max(runs), "median": statistics.median(runs), "all": runs}


async def _full(args: argparse.Namespace) -> dict:
    repeats = args.repeats
    result: dict = {
        "bench": "live runtime wire throughput, codec v1 vs v2",
        "mix": MIX_DESCRIPTION,
        "protocol": (
            f"{repeats} repeats per version per bench, v1/v2 interleaved "
            "in-process in the same time window; best = max throughput "
            "across repeats (the run least disturbed by the machine), "
            "median reported alongside"
        ),
    }

    print(f"codec micro ({args.micro_rounds} rounds of the mix) ...")
    micro: Dict[str, dict] = {}
    micro_runs: Dict[int, List[float]] = {WIRE_V1: [], WIRE_V2: []}
    micro_last: Dict[int, Dict[str, float]] = {}
    for _ in range(repeats):
        for version in (WIRE_V1, WIRE_V2):  # interleaved
            r = bench_codec_micro(version, args.micro_rounds)
            micro_runs[version].append(r["roundtrip_msgs_per_s"])
            micro_last[version] = r
    for version in (WIRE_V1, WIRE_V2):
        stats = _stats(micro_runs[version])
        micro[f"v{version}"] = {
            "roundtrip_msgs_per_s": {
                k: round(v) if k != "all" else [round(x) for x in v]
                for k, v in stats.items()
            },
            "encode_msgs_per_s": round(micro_last[version]["encode_msgs_per_s"]),
            "decode_msgs_per_s": round(micro_last[version]["decode_msgs_per_s"]),
            "avg_frame_bytes": round(micro_last[version]["avg_frame_bytes"], 1),
        }
        print(
            f"  v{version}: best {stats['best']:,.0f} msg/s "
            f"(median {stats['median']:,.0f})"
        )
    micro["speedup_v2_over_v1_best"] = round(
        max(micro_runs[WIRE_V2]) / max(micro_runs[WIRE_V1]), 2
    )
    result["codec_micro"] = micro

    print(
        f"flood pump ({args.sinks} sinks x {args.pump_rounds} rounds "
        f"of the mix, frames decoded at sinks) ..."
    )
    pump: Dict[str, dict] = {}
    pump_runs: Dict[int, List[float]] = {WIRE_V1: [], WIRE_V2: []}
    for _ in range(repeats):
        for version in (WIRE_V1, WIRE_V2):
            fps = await _flood_pump(version, args.sinks, args.pump_rounds)
            pump_runs[version].append(fps)
    for version in (WIRE_V1, WIRE_V2):
        stats = _stats(pump_runs[version])
        pump[f"v{version}"] = {
            "frames_per_s": {
                k: round(v) if k != "all" else [round(x) for x in v]
                for k, v in stats.items()
            }
        }
        print(
            f"  v{version}: best {stats['best']:,.0f} frames/s "
            f"(median {stats['median']:,.0f})"
        )
    speedup = max(pump_runs[WIRE_V2]) / max(pump_runs[WIRE_V1])
    pump["sinks"] = args.sinks
    pump["frames_per_repeat"] = args.pump_rounds * 15 * args.sinks
    pump["speedup_v2_over_v1_best"] = round(speedup, 2)
    result["flood_pump"] = pump
    print(f"  speedup v2/v1 (best): {speedup:.2f}x")

    print(f"localnet put/get ({args.ops} ops each) ...")
    ops: Dict[str, dict] = {}
    for version in (WIRE_V1, WIRE_V2):
        r = await _localnet_ops(version, args.ops)
        ops[f"v{version}"] = {k: round(v, 1) for k, v in r.items()}
        print(
            f"  v{version}: {r['put_ops_per_s']:,.0f} puts/s, "
            f"{r['get_ops_per_s']:,.0f} serial gets/s, "
            f"{r['pipelined_get_ops_per_s']:,.0f} pipelined gets/s"
        )
    ops["note"] = (
        "one persistent pipelined ClientConnection; serial = one op in "
        "flight (service latency), pipelined = 64 in flight (saturation); "
        "event-driven lookup completion, no poll loop"
    )
    result["localnet_ops"] = ops

    result["headline"] = {
        "metric": "flood pump frames/sec, medium mix (best of repeats)",
        "v1_frames_per_s": round(max(pump_runs[WIRE_V1])),
        "v2_frames_per_s": round(max(pump_runs[WIRE_V2])),
        "speedup_v2_over_v1": round(speedup, 2),
    }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: tiny localnet + v2>=v1 assertion, no JSON")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per version per bench (default: 3)")
    parser.add_argument("--sinks", type=int, default=4,
                        help="decoding TCP sinks in the flood pump (default: 4)")
    parser.add_argument("--pump-rounds", type=int, default=1_500,
                        help="mix broadcasts per pump repeat (default: 1500)")
    parser.add_argument("--micro-rounds", type=int, default=10_000,
                        help="mix rounds per codec-micro repeat (default: 10000)")
    parser.add_argument("--ops", type=int, default=400,
                        help="serial put/get ops in the localnet bench; the "
                        "pipelined pass runs 10x this (default: 400)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_runtime.json")
    args = parser.parse_args(argv)

    if args.smoke:
        return asyncio.run(_smoke())

    result = asyncio.run(_full(args))
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    headline = result["headline"]
    print(
        f"headline: v2 {headline['v2_frames_per_s']:,} frames/s vs "
        f"v1 {headline['v1_frames_per_s']:,} frames/s "
        f"({headline['speedup_v2_over_v1']}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
