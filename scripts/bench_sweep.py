#!/usr/bin/env python3
"""Benchmark the parallel sweep executor + cell cache (BENCH_sweep.json).

Runs the medium-scale fig5 + fig6 + table2 bundle three ways:

* ``serial_cold``   -- jobs=1, no cache (the pre-PR execution model);
* ``parallel_cold`` -- jobs=N (default 4) into a fresh temp cache;
* ``warm``          -- jobs=1 replaying the now-populated cache.

Each pass digests the concatenated rendered tables; the digests must
match across all three passes (the executor may change *when* cells
run, never *what* they produce) or the script exits non-zero.

Usage:  python scripts/bench_sweep.py [--jobs N] [--scale quick|medium]
                                      [--smoke] [--out BENCH_sweep.json]

``--smoke`` switches to quick scale and skips the JSON write -- used to
sanity-check the harness itself.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exec import CellCache, CellExecutor  # noqa: E402
from repro.experiments import Scale  # noqa: E402
from repro.experiments import fig5_failure, fig6_latency, table2_connum  # noqa: E402


def timed_pass(scale: Scale, jobs: int, cache: CellCache | None):
    """One bundle run; returns (wall_seconds, output_digest, stats)."""
    executor = CellExecutor(jobs=jobs, cache=cache)
    t0 = time.perf_counter()
    text = "\n".join(
        driver.main(scale, executor=executor)
        for driver in (fig5_failure, fig6_latency, table2_connum)
    )
    wall = time.perf_counter() - t0
    return wall, hashlib.sha256(text.encode()).hexdigest(), executor.stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--scale", choices=["quick", "medium"], default="medium")
    parser.add_argument("--smoke", action="store_true",
                        help="quick scale, no JSON write")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_sweep.json"))
    args = parser.parse_args()
    scale_name = "quick" if args.smoke else args.scale
    scale = {"quick": Scale.quick, "medium": Scale.medium}[scale_name]()

    print(f"[bench] fig5+fig6+table2 bundle at scale={scale_name}, "
          f"jobs={args.jobs}, cpus={os.cpu_count()}", file=sys.stderr)

    serial_wall, serial_digest, serial_stats = timed_pass(scale, 1, None)
    print(f"[bench] serial_cold: {serial_wall:.1f}s "
          f"({serial_stats.executed} cells)", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        parallel_wall, parallel_digest, parallel_stats = timed_pass(
            scale, args.jobs, CellCache(pathlib.Path(tmp))
        )
        print(f"[bench] parallel_cold (jobs={args.jobs}): "
              f"{parallel_wall:.1f}s", file=sys.stderr)
        warm_wall, warm_digest, warm_stats = timed_pass(
            scale, 1, CellCache(pathlib.Path(tmp))
        )
        print(f"[bench] warm: {warm_wall:.2f}s "
              f"({warm_stats.cache_hits} hits)", file=sys.stderr)

    if not (serial_digest == parallel_digest == warm_digest):
        print("[bench] FAIL: rendered outputs diverge across passes",
              file=sys.stderr)
        return 1
    if warm_stats.executed != 0:
        print("[bench] FAIL: warm pass was not 100% cache hits",
              file=sys.stderr)
        return 1

    report = {
        "bench": "sweep executor, fig5+fig6+table2 bundle",
        "scale": scale_name,
        "cells": serial_stats.cells_total,
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "output_digest": serial_digest,
        "serial_cold": {
            "wall_seconds": round(serial_wall, 2),
            "executed": serial_stats.executed,
        },
        "parallel_cold": {
            "wall_seconds": round(parallel_wall, 2),
            "executed": parallel_stats.executed,
            "cache_hits": parallel_stats.cache_hits,
        },
        "warm": {
            "wall_seconds": round(warm_wall, 3),
            "cache_hits": warm_stats.cache_hits,
        },
        "speedup_parallel_vs_serial": round(serial_wall / parallel_wall, 2),
        "warm_fraction_of_serial": round(warm_wall / serial_wall, 4),
    }
    print(json.dumps(report, indent=2))
    if not args.smoke:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[bench] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
