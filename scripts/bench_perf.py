#!/usr/bin/env python
"""Substrate perf-regression bench: time a fixed Fig.-3-style workload.

Runs ``run_cell(HybridConfig(p_s=0.3), Scale.<scale>())`` -- build a
hybrid system, populate it, then drive the lookup waves -- ``--repeats``
times in-process and reports best (min wall) and median, plus the
speedup over the pre-optimisation baseline recorded below.  Results are
written to ``BENCH_substrate.json`` at the repo root.

Protocol notes
--------------
* The workload is fully deterministic: every repeat must execute the
  exact same number of events and reproduce the golden lookup metrics,
  so the bench doubles as a determinism check.
* Wall-clock on shared machines is noisy (we observed ±40% between
  otherwise identical runs), hence best-of-N: the minimum is the run
  least disturbed by the machine, and the baseline figures below were
  captured with the same best-of-N protocol, interleaved A/B against
  the optimised tree in the same time window.
* ``REPRO_PROFILE=1`` additionally wraps the first repeat in cProfile
  and prints the hottest functions to stderr (see :mod:`repro.perf`).

Usage::

    PYTHONPATH=src python scripts/bench_perf.py                 # medium
    PYTHONPATH=src python scripts/bench_perf.py --scale quick
    PYTHONPATH=src python scripts/bench_perf.py --smoke         # CI
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.hybrid import HybridConfig
from repro.experiments.common import Scale, run_cell
from repro.perf import PerfReport, maybe_profile, profiling_enabled

# Pre-optimisation baseline (commit 4dba637, the tree before the
# tuple-heap engine / batched transport rewrite), measured with this
# script's exact protocol -- best of 5 in-process repeats, interleaved
# with the optimised tree -- on the same machine as the "current"
# figures first recorded in BENCH_substrate.json.
BASELINE = {
    "quick": {"wall_seconds": 0.3171, "events_per_second": 116_815},
    "medium": {"wall_seconds": 2.4673, "events_per_second": 106_097},
}

# Deterministic invariants of the workload at each scale: total events
# executed and the golden lookup metrics (same seed => same run).
EXPECTED = {
    "quick": {
        "events": 37_040,
        "mean_latency": 3121.8109594982875,
        "connum": 17_056,
    },
    "medium": {
        "events": 261_776,
        "mean_latency": 10661.615417341618,
        "connum": 123_750,
    },
}

WORKLOAD = "run_cell(HybridConfig(p_s=0.3), Scale.{scale}())"


def bench_once(scale: Scale, profile: bool):
    """One timed repeat; returns (PerfReport, CellResult).

    ``run_cell`` owns the whole engine lifecycle, so the counters are
    harvested from the finished system rather than via repro.perf's
    ``measure`` context (which wants the engine up front).  Profiled
    repeats still report their wall-clock, but it is not comparable to
    unprofiled ones.
    """
    import time

    out = {}
    t0 = time.perf_counter()
    if profile:
        with maybe_profile():
            result = run_cell(HybridConfig(p_s=0.3), scale, system_out=out)
    else:
        result = run_cell(HybridConfig(p_s=0.3), scale, system_out=out)
    wall = time.perf_counter() - t0
    system = out["system"]
    transport = system.transport
    report = PerfReport(
        wall_seconds=wall,
        events_executed=system.engine.events_executed,
        messages_sent=transport.messages_sent,
        messages_delivered=transport.messages_delivered,
        messages_dropped=transport.messages_dropped,
        message_type_counts=dict(transport.message_type_counts),
    )
    return report, result


def run_bench(scale_name: str, repeats: int, check: bool) -> dict:
    scale = Scale.quick() if scale_name == "quick" else Scale.medium()
    expected = EXPECTED[scale_name]
    walls = []
    reports = []
    for i in range(repeats):
        report, result = bench_once(scale, profile=(i == 0 and profiling_enabled()))
        if check:
            assert report.events_executed == expected["events"], (
                f"determinism break: executed {report.events_executed} events, "
                f"expected {expected['events']}"
            )
            assert result.mean_latency == expected["mean_latency"], result.mean_latency
            assert result.connum == expected["connum"], result.connum
        walls.append(report.wall_seconds)
        reports.append(report)
        print(
            f"  repeat {i + 1}/{repeats}: {report.wall_seconds:.4f}s "
            f"({report.events_per_second:,.0f} events/s)"
        )
    best_wall = min(walls)
    events = reports[0].events_executed
    best_evps = events / best_wall
    baseline = BASELINE[scale_name]
    speedup = best_evps / baseline["events_per_second"]
    return {
        "scale": scale_name,
        "workload": WORKLOAD.format(scale=scale_name),
        "protocol": f"best of {repeats} in-process repeats (min wall-clock)",
        "repeats": repeats,
        "wall_seconds_all": [round(w, 4) for w in walls],
        "events_executed": events,
        "messages_sent": reports[0].messages_sent,
        "messages_delivered": reports[0].messages_delivered,
        "best": {
            "wall_seconds": round(best_wall, 4),
            "events_per_second": round(best_evps),
        },
        "median": {
            "wall_seconds": round(statistics.median(walls), 4),
            "events_per_second": round(events / statistics.median(walls)),
        },
        "baseline_pre_pr": baseline,
        "speedup_events_per_second": round(speedup, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("quick", "medium"),
        default="medium",
        help="workload scale (default: medium, the acceptance gate)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed repeats (default: 5)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: quick scale, 2 repeats, no JSON written",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_substrate.json",
        help="result file (default: BENCH_substrate.json at repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    if args.smoke:
        args.scale = "quick"
        args.repeats = min(args.repeats, 2)

    print(f"benchmarking {WORKLOAD.format(scale=args.scale)} ...")
    entry = run_bench(args.scale, args.repeats, check=True)
    print(
        f"best: {entry['best']['wall_seconds']}s "
        f"({entry['best']['events_per_second']:,} events/s); "
        f"pre-PR baseline: {entry['baseline_pre_pr']['events_per_second']:,} events/s; "
        f"speedup: {entry['speedup_events_per_second']}x"
    )

    if not args.smoke:
        existing = {}
        if args.output.exists():
            existing = json.loads(args.output.read_text())
        existing.setdefault("bench", "substrate throughput, Fig.-3-style workload")
        existing.setdefault("scales", {})
        existing["scales"][args.scale] = entry
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
