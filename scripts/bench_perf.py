#!/usr/bin/env python
"""Substrate perf-regression bench: time a fixed Fig.-3-style workload.

Runs ``run_cell(HybridConfig(p_s=0.3), Scale.<scale>())`` -- build a
hybrid system, populate it, then drive the lookup waves -- ``--repeats``
times in-process and reports best (min wall) and median, plus the
speedup over the pre-optimisation baseline recorded below.  Results are
written to ``BENCH_substrate.json`` at the repo root.

Protocol notes
--------------
* The workload is fully deterministic: every repeat must execute the
  exact same number of events and reproduce the golden lookup metrics,
  so the bench doubles as a determinism check.
* Wall-clock on shared machines is noisy (we observed ±40% between
  otherwise identical runs), hence best-of-N: the minimum is the run
  least disturbed by the machine, and the baseline figures below were
  captured with the same best-of-N protocol, interleaved A/B against
  the optimised tree in the same time window.
* ``REPRO_PROFILE=1`` additionally wraps the first repeat in cProfile
  and prints the hottest functions to stderr (see :mod:`repro.perf`).

Sharded runs (``--shards N``, repeatable) execute the same workload on
the :mod:`repro.shard` substrate and must reproduce the single-process
``CellResult`` bit-for-bit -- the bench records aggregate events/s and
scaling efficiency per shard count next to the single-process figures.
``--scale large`` runs the first past-the-paper cell (10^5 peers, bulk
build): no golden to check against, so it records throughput plus peak
RSS instead.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py                 # medium
    PYTHONPATH=src python scripts/bench_perf.py --scale quick
    PYTHONPATH=src python scripts/bench_perf.py --smoke         # CI
    PYTHONPATH=src python scripts/bench_perf.py --shards 2 --shards 4
    PYTHONPATH=src python scripts/bench_perf.py --scale large --shards 4
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.hybrid import HybridConfig
from repro.experiments.common import Scale, run_cell
from repro.perf import PerfReport, maybe_profile, profiling_enabled

# Pre-optimisation baseline (commit 4dba637, the tree before the
# tuple-heap engine / batched transport rewrite), measured with this
# script's exact protocol -- best of 5 in-process repeats, interleaved
# with the optimised tree -- on the same machine as the "current"
# figures first recorded in BENCH_substrate.json.
BASELINE = {
    "quick": {"wall_seconds": 0.3171, "events_per_second": 116_815},
    "medium": {"wall_seconds": 2.4673, "events_per_second": 106_097},
}

# Deterministic invariants of the workload at each scale: total events
# executed and the golden lookup metrics (same seed => same run).
EXPECTED = {
    "quick": {
        "events": 37_040,
        "mean_latency": 3121.8109594982875,
        "connum": 17_056,
    },
    "medium": {
        "events": 261_776,
        "mean_latency": 10661.615417341618,
        "connum": 123_750,
    },
}

SCALES = {
    "quick": Scale.quick,
    "medium": Scale.medium,
    "large": Scale.large,
}


def config_for_scale(scale_name: str) -> HybridConfig:
    """The benched cell's configuration at each scale.

    quick/medium pin the golden Fig.-3-style cell: ``p_s = 0.3``,
    linear ring forwarding.  Linear forwarding costs O(n_t) ring hops
    per remote lookup -- fine at the paper's 10^3, absurd at 10^5
    (~10^4 hops *each* of 5,000 lookups is pure ring walking), so the
    large cell uses the paper's own mechanism for scale: Section
    3.2.1 finger routing, at the s-heavy operating point.
    """
    if scale_name == "large":
        return HybridConfig(p_s=0.7, ring_routing="finger")
    return HybridConfig(p_s=0.3)


def workload_desc(scale_name: str) -> str:
    if scale_name == "large":
        return (
            "run_cell(HybridConfig(p_s=0.7, ring_routing='finger'), "
            "Scale.large())"
        )
    return f"run_cell(HybridConfig(p_s=0.3), Scale.{scale_name}())"


def bench_once(config: HybridConfig, scale: Scale, profile: bool):
    """One timed repeat; returns (PerfReport, CellResult).

    ``run_cell`` owns the whole engine lifecycle, so the counters are
    harvested from the finished system rather than via repro.perf's
    ``measure`` context (which wants the engine up front).  Profiled
    repeats still report their wall-clock, but it is not comparable to
    unprofiled ones.
    """
    import time

    out = {}
    t0 = time.perf_counter()
    if profile:
        with maybe_profile():
            result = run_cell(config, scale, system_out=out)
    else:
        result = run_cell(config, scale, system_out=out)
    wall = time.perf_counter() - t0
    system = out["system"]
    transport = system.transport
    report = PerfReport(
        wall_seconds=wall,
        events_executed=system.engine.events_executed,
        messages_sent=transport.messages_sent,
        messages_delivered=transport.messages_delivered,
        messages_dropped=transport.messages_dropped,
        message_type_counts=dict(transport.message_type_counts),
    )
    return report, result


def bench_sharded(config: HybridConfig, scale: Scale, shards: int):
    """One sharded repeat; returns (wall, CellResult, shard info dict)."""
    import time

    info = {}
    t0 = time.perf_counter()
    result = run_cell(config, scale, system_out=info, shards=shards)
    wall = time.perf_counter() - t0
    return wall, result, info["shard_info"]


def run_sharded_bench(
    scale_name: str, shard_counts, base_result, base_evps
) -> dict:
    """Sharded repeats of the same workload: identity + scaling record.

    ``base_result`` is the single-process :class:`CellResult` of this
    run -- every sharded repeat must equal it exactly.  Efficiency is
    aggregate events/s relative to ``base_evps`` (the single-process
    best); on a single-core container this is honestly < 1.
    """
    scale = SCALES[scale_name]()
    config = config_for_scale(scale_name)
    entries = {}
    for n in sorted(set(shard_counts)):
        wall, result, info = bench_sharded(config, scale, n)
        identical = result == base_result
        assert identical, (
            f"shards={n} diverged from the single-process run:\n"
            f"  sharded: {result}\n  single:  {base_result}"
        )
        evps = info["events_total"] / wall
        entries[str(n)] = {
            "mode": info["mode"],
            "wall_seconds": round(wall, 4),
            "build_wall_seconds": round(info["build_wall_seconds"], 4),
            "lookup_wall_seconds": round(info["lookup_wall_seconds"], 4),
            "events_total": info["events_total"],
            "events_per_second": round(evps),
            "efficiency_vs_single": round(evps / base_evps, 3) if base_evps else None,
            "bit_identical_to_single": identical,
            "waves": info["waves"],
            "window_rounds": info["window_rounds"],
            "lookahead_ms": info["lookahead_ms"],
            "peak_rss_kb": info["peak_rss_kb"],
        }
        print(
            f"  shards={n} ({info['mode']}): {wall:.4f}s "
            f"({evps:,.0f} events/s, identical={identical})"
        )
    return entries


def run_bench(scale_name: str, repeats: int, check: bool) -> dict:
    scale = SCALES[scale_name]()
    config = config_for_scale(scale_name)
    expected = EXPECTED.get(scale_name)
    check = check and expected is not None
    walls = []
    reports = []
    results = []
    for i in range(repeats):
        report, result = bench_once(
            config, scale, profile=(i == 0 and profiling_enabled())
        )
        results.append(result)
        if check:
            assert report.events_executed == expected["events"], (
                f"determinism break: executed {report.events_executed} events, "
                f"expected {expected['events']}"
            )
            assert result.mean_latency == expected["mean_latency"], result.mean_latency
            assert result.connum == expected["connum"], result.connum
        walls.append(report.wall_seconds)
        reports.append(report)
        print(
            f"  repeat {i + 1}/{repeats}: {report.wall_seconds:.4f}s "
            f"({report.events_per_second:,.0f} events/s)"
        )
    best_wall = min(walls)
    events = reports[0].events_executed
    best_evps = events / best_wall
    baseline = BASELINE.get(scale_name)
    entry = {
        "scale": scale_name,
        "workload": workload_desc(scale_name),
        "protocol": f"best of {repeats} in-process repeats (min wall-clock)",
        "repeats": repeats,
        "wall_seconds_all": [round(w, 4) for w in walls],
        "events_executed": events,
        "messages_sent": reports[0].messages_sent,
        "messages_delivered": reports[0].messages_delivered,
        "best": {
            "wall_seconds": round(best_wall, 4),
            "events_per_second": round(best_evps),
        },
        "median": {
            "wall_seconds": round(statistics.median(walls), 4),
            "events_per_second": round(events / statistics.median(walls)),
        },
    }
    if baseline is not None:
        entry["baseline_pre_pr"] = baseline
        entry["speedup_events_per_second"] = round(
            best_evps / baseline["events_per_second"], 2
        )
    else:
        # No pre-optimisation tree ever ran this scale; peak RSS is the
        # figure of merit alongside throughput.
        try:
            import resource

            entry["peak_rss_kb"] = resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            pass
    entry["_base_result"] = results[0]
    entry["_best_evps"] = best_evps
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("quick", "medium", "large"),
        default="medium",
        help="workload scale (default: medium, the acceptance gate; "
        "large = 10^5 peers, bulk build, no golden)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed repeats (default: 5)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: quick scale, 2 repeats, shards=2 identity gate, "
        "no JSON written",
    )
    parser.add_argument(
        "--shards",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="also run the workload sharded over N workers (repeatable); "
        "asserts bit-identity with the single-process result",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_substrate.json",
        help="result file (default: BENCH_substrate.json at repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    if args.smoke:
        args.scale = "quick"
        args.repeats = min(args.repeats, 2)
        if not args.shards:
            args.shards = [2]
    if args.scale == "large" and args.repeats > 2:
        args.repeats = 2  # minutes per repeat; best-of-5 buys little

    print(f"benchmarking {workload_desc(args.scale)} ...")
    entry = run_bench(args.scale, args.repeats, check=True)
    base_result = entry.pop("_base_result")
    base_evps = entry.pop("_best_evps")
    line = (
        f"best: {entry['best']['wall_seconds']}s "
        f"({entry['best']['events_per_second']:,} events/s)"
    )
    if "baseline_pre_pr" in entry:
        line += (
            f"; pre-PR baseline: "
            f"{entry['baseline_pre_pr']['events_per_second']:,} events/s; "
            f"speedup: {entry['speedup_events_per_second']}x"
        )
    print(line)

    if args.shards:
        print(f"sharded repeats (identity gate vs single-process) ...")
        entry["sharded"] = run_sharded_bench(
            args.scale, args.shards, base_result, base_evps
        )

    if not args.smoke:
        existing = {}
        if args.output.exists():
            existing = json.loads(args.output.read_text())
        existing.setdefault("bench", "substrate throughput, Fig.-3-style workload")
        existing.setdefault("scales", {})
        existing["scales"][args.scale] = entry
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
