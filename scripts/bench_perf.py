#!/usr/bin/env python
"""Substrate perf-regression bench: time a fixed Fig.-3-style workload.

Runs ``run_cell(HybridConfig(p_s=0.3), Scale.<scale>())`` -- build a
hybrid system, populate it, then drive the lookup waves -- ``--repeats``
times in-process and reports best (min wall) and median, plus the
speedup over the pre-optimisation baseline recorded below.  Results are
written to ``BENCH_substrate.json`` at the repo root.

Protocol notes
--------------
* The workload is fully deterministic: every repeat must execute the
  exact same number of events and reproduce the golden lookup metrics,
  so the bench doubles as a determinism check.
* Wall-clock on shared machines is noisy (we observed ±40% between
  otherwise identical runs), hence best-of-N: the minimum is the run
  least disturbed by the machine, and the baseline figures below were
  captured with the same best-of-N protocol, interleaved A/B against
  the optimised tree in the same time window.
* ``REPRO_PROFILE=1`` additionally wraps the first repeat in cProfile
  and prints the hottest functions to stderr (see :mod:`repro.perf`).

Sharded runs (``--shards N``, repeatable) execute the same workload on
the :mod:`repro.shard` substrate and must reproduce the single-process
``CellResult`` bit-for-bit -- the bench records aggregate events/s and
scaling efficiency per shard count next to the single-process figures.
``--shard-backend shm`` routes cross-shard traffic over the shared-
memory ring transport (struct frames) instead of pickled pipes; shm
entries are keyed ``"<n>-shm"`` and additionally record IPC byte/frame
counters and per-worker PSS.  ``--scale large`` runs the first
past-the-paper cell (10^5 peers, bulk build): no golden to check
against, so it records throughput, peak RSS and the fig4-style data
distribution instead.  ``--scale huge`` (10^6 peers) is sharded-only:
a single-process reference run is pointless at that size, so the entry
notes ``reference: none`` and the determinism evidence is the
pipe-vs-shm cross-check at the gated scales.  ``--ipc-micro`` times
the two cross-shard transports head-to-head on a captured-shape
message mix and writes an ``ipc_micro`` section.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py                 # medium
    PYTHONPATH=src python scripts/bench_perf.py --scale quick
    PYTHONPATH=src python scripts/bench_perf.py --smoke         # CI
    PYTHONPATH=src python scripts/bench_perf.py --shards 2 --shards 4
    PYTHONPATH=src python scripts/bench_perf.py --scale large --shards 4
    PYTHONPATH=src python scripts/bench_perf.py --smoke --shards 2 \
        --shard-backend shm
    PYTHONPATH=src python scripts/bench_perf.py --ipc-micro
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.hybrid import HybridConfig
from repro.experiments.common import Scale, run_cell
from repro.perf import PerfReport, maybe_profile, profiling_enabled

# Pre-optimisation baseline (commit 4dba637, the tree before the
# tuple-heap engine / batched transport rewrite), measured with this
# script's exact protocol -- best of 5 in-process repeats, interleaved
# with the optimised tree -- on the same machine as the "current"
# figures first recorded in BENCH_substrate.json.
BASELINE = {
    "quick": {"wall_seconds": 0.3171, "events_per_second": 116_815},
    "medium": {"wall_seconds": 2.4673, "events_per_second": 106_097},
}

# Deterministic invariants of the workload at each scale: total events
# executed and the golden lookup metrics (same seed => same run).
EXPECTED = {
    "quick": {
        "events": 37_040,
        "mean_latency": 3121.8109594982875,
        "connum": 17_056,
    },
    "medium": {
        "events": 261_776,
        "mean_latency": 10661.615417341618,
        "connum": 123_750,
    },
}

SCALES = {
    "quick": Scale.quick,
    "medium": Scale.medium,
    "large": Scale.large,
    "huge": Scale.huge,
}


def config_for_scale(scale_name: str) -> HybridConfig:
    """The benched cell's configuration at each scale.

    quick/medium pin the golden Fig.-3-style cell: ``p_s = 0.3``,
    linear ring forwarding.  Linear forwarding costs O(n_t) ring hops
    per remote lookup -- fine at the paper's 10^3, absurd at 10^5
    (~10^4 hops *each* of 5,000 lookups is pure ring walking), so the
    large and huge cells use the paper's own mechanism for scale:
    Section 3.2.1 finger routing, at the s-heavy operating point.
    """
    if scale_name in ("large", "huge"):
        return HybridConfig(p_s=0.7, ring_routing="finger")
    return HybridConfig(p_s=0.3)


def workload_desc(scale_name: str) -> str:
    if scale_name in ("large", "huge"):
        return (
            "run_cell(HybridConfig(p_s=0.7, ring_routing='finger'), "
            f"Scale.{scale_name}())"
        )
    return f"run_cell(HybridConfig(p_s=0.3), Scale.{scale_name}())"


def distribution_summary(peer_state) -> dict:
    """Fig.-4-style data-distribution summary from CompactPeerState."""
    import numpy as np

    items = peer_state.data_distribution()
    arr = np.asarray(items, dtype=np.int64)
    nonzero = arr[arr > 0]
    return {
        "alive_peers": int(arr.size),
        "total_items": int(arr.sum()),
        "holders": int(nonzero.size),
        "mean_items_per_peer": round(float(arr.mean()), 4),
        "max_items_per_peer": int(arr.max()) if arr.size else 0,
        "p50_items": float(np.percentile(arr, 50)) if arr.size else 0.0,
        "p90_items": float(np.percentile(arr, 90)) if arr.size else 0.0,
        "p99_items": float(np.percentile(arr, 99)) if arr.size else 0.0,
    }


def bench_once(config: HybridConfig, scale: Scale, profile: bool):
    """One timed repeat; returns (PerfReport, CellResult).

    ``run_cell`` owns the whole engine lifecycle, so the counters are
    harvested from the finished system rather than via repro.perf's
    ``measure`` context (which wants the engine up front).  Profiled
    repeats still report their wall-clock, but it is not comparable to
    unprofiled ones.
    """
    import time

    out = {}
    t0 = time.perf_counter()
    if profile:
        with maybe_profile():
            result = run_cell(config, scale, system_out=out)
    else:
        result = run_cell(config, scale, system_out=out)
    wall = time.perf_counter() - t0
    system = out["system"]
    transport = system.transport
    report = PerfReport(
        wall_seconds=wall,
        events_executed=system.engine.events_executed,
        messages_sent=transport.messages_sent,
        messages_delivered=transport.messages_delivered,
        messages_dropped=transport.messages_dropped,
        message_type_counts=dict(transport.message_type_counts),
    )
    return report, result


def bench_sharded(config: HybridConfig, scale: Scale, shards: int, backend=None):
    """One sharded repeat; returns (wall, CellResult, shard info dict)."""
    import time

    info = {}
    t0 = time.perf_counter()
    result = run_cell(
        config, scale, system_out=info, shards=shards, shard_backend=backend
    )
    wall = time.perf_counter() - t0
    return wall, result, info["shard_info"]


def _worker_memory(info) -> dict:
    """Per-worker memory record: VmRSS at finish plus PSS.

    PSS is the honest per-worker figure for forked workers -- build
    state is copy-on-write-shared with the parent, so plain RSS counts
    the same pages once per process.
    """
    workers = (info.get("memory") or {}).get("workers") or []
    out = []
    for mem in workers:
        if not mem:
            out.append(None)
            continue
        out.append({
            "vm_rss_kb": mem.get("vm_rss_kb"),
            "pss_kb": mem.get("pss_kb"),
            "private_kb": mem.get("private_kb"),
        })
    return {
        "peak_rss_kb": info.get("peak_rss_kb"),
        "workers_at_finish": out,
    }


def run_sharded_bench(
    scale_name, shard_counts, base_result, base_evps, backend=None,
    with_distribution=False,
) -> dict:
    """Sharded repeats of the same workload: identity + scaling record.

    ``base_result`` is the single-process :class:`CellResult` of this
    run -- every sharded repeat must equal it exactly (pass ``None``
    only for huge, where no single-process reference exists).
    Efficiency is aggregate events/s relative to ``base_evps`` (the
    single-process best); on a single-core container this is honestly
    < 1.  With ``backend="shm"`` entries are keyed ``"<n>-shm"`` and
    record the ring transport's byte/frame counters.
    """
    scale = SCALES[scale_name]()
    config = config_for_scale(scale_name)
    entries = {}
    for n in sorted(set(shard_counts)):
        wall, result, info = bench_sharded(config, scale, n, backend=backend)
        if base_result is not None:
            identical = result == base_result
            assert identical, (
                f"shards={n} diverged from the single-process run:\n"
                f"  sharded: {result}\n  single:  {base_result}"
            )
        else:
            identical = None
        evps = info["events_total"] / wall
        key = str(n) if info["backend"] in ("pipe", "inline") else f"{n}-{info['backend']}"
        entries[key] = {
            "mode": info["mode"],
            "backend": info["backend"],
            "wall_seconds": round(wall, 4),
            "build_wall_seconds": round(info["build_wall_seconds"], 4),
            "lookup_wall_seconds": round(info["lookup_wall_seconds"], 4),
            "events_total": info["events_total"],
            "events_per_second": round(evps),
            "efficiency_vs_single": round(evps / base_evps, 3) if base_evps else None,
            "bit_identical_to_single": identical,
            "waves": info["waves"],
            "window_rounds": info["window_rounds"],
            "lookahead_ms": info["lookahead_ms"],
            "peak_rss_kb": info["peak_rss_kb"],
        }
        if info["backend"] == "shm":
            entries[key]["ipc"] = info["ipc"]
            entries[key]["memory"] = _worker_memory(info)
        if base_result is None:
            entries[key]["cell_metrics"] = result.to_dict()
        if with_distribution:
            entries[key]["data_distribution"] = distribution_summary(
                info["peer_state"]
            )
        print(
            f"  shards={n} ({info['mode']}/{info['backend']}): {wall:.4f}s "
            f"({evps:,.0f} events/s, identical={identical})"
        )
    return entries


def run_bench(scale_name: str, repeats: int, check: bool) -> dict:
    scale = SCALES[scale_name]()
    config = config_for_scale(scale_name)
    expected = EXPECTED.get(scale_name)
    check = check and expected is not None
    walls = []
    reports = []
    results = []
    for i in range(repeats):
        report, result = bench_once(
            config, scale, profile=(i == 0 and profiling_enabled())
        )
        results.append(result)
        if check:
            assert report.events_executed == expected["events"], (
                f"determinism break: executed {report.events_executed} events, "
                f"expected {expected['events']}"
            )
            assert result.mean_latency == expected["mean_latency"], result.mean_latency
            assert result.connum == expected["connum"], result.connum
        walls.append(report.wall_seconds)
        reports.append(report)
        print(
            f"  repeat {i + 1}/{repeats}: {report.wall_seconds:.4f}s "
            f"({report.events_per_second:,.0f} events/s)"
        )
    best_wall = min(walls)
    events = reports[0].events_executed
    best_evps = events / best_wall
    baseline = BASELINE.get(scale_name)
    entry = {
        "scale": scale_name,
        "workload": workload_desc(scale_name),
        "protocol": f"best of {repeats} in-process repeats (min wall-clock)",
        "repeats": repeats,
        "wall_seconds_all": [round(w, 4) for w in walls],
        "events_executed": events,
        "messages_sent": reports[0].messages_sent,
        "messages_delivered": reports[0].messages_delivered,
        "best": {
            "wall_seconds": round(best_wall, 4),
            "events_per_second": round(best_evps),
        },
        "median": {
            "wall_seconds": round(statistics.median(walls), 4),
            "events_per_second": round(events / statistics.median(walls)),
        },
    }
    if baseline is not None:
        entry["baseline_pre_pr"] = baseline
        entry["speedup_events_per_second"] = round(
            best_evps / baseline["events_per_second"], 2
        )
    else:
        # No pre-optimisation tree ever ran this scale; peak RSS is the
        # figure of merit alongside throughput.
        try:
            import resource

            entry["peak_rss_kb"] = resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            pass
    entry["_base_result"] = results[0]
    entry["_best_evps"] = best_evps
    return entry


def _micro_messages(n: int):
    """Cross-shard message mix shaped like real lookup-phase traffic.

    Sharded cells exchange lookups travelling the ring, floods into
    remote s-networks, answers and acks -- the mix below weights them
    roughly as observed on the quick cell (queries dominate).
    """
    from repro.overlay.messages import Ack, DataFound, FloodQuery, LookupRequest

    out = []
    for i in range(n):
        k = i % 8
        if k < 3:
            msg = LookupRequest(
                d_id=(i * 2654435761) % (2**32), key=f"key-{i % 997}",
                origin=1000 + i % 500, query_id=i, ttl=4, attempt=0,
            )
        elif k < 6:
            msg = FloodQuery(
                d_id=(i * 40503) % (2**32), key=f"key-{i % 997}",
                origin=1000 + i % 500, query_id=i, ttl=3, attempt=i % 2,
            )
        elif k == 6:
            msg = DataFound(
                query_id=i, key=f"key-{i % 997}", value=None,
                holder=2000 + i % 300, holder_pid=(i * 7919) % (2**32),
                holder_pred_pid=(i * 104729) % (2**32), hops=i % 9,
            )
        else:
            msg = Ack(query_id=i)
        msg.sender = 3000 + i % 700
        msg.hop_count = i % 12
        out.append(msg)
    return out


def run_ipc_micro(n_messages: int = 20_000, batch: int = 64) -> dict:
    """Head-to-head micro-bench of the two cross-shard transports.

    Both paths move the *same* delivery stream end to end, modelled on
    what each backend actually does per delivery (see
    :mod:`repro.shard.ipc`):

    * **struct ring** (shm backend) -- ONE hop: envelope + wire codec
      v2 struct encode, frame into the destination pair's
      :class:`SpscRing`, zero-copy read and decode on the far side.
      The coordinator never touches the message.
    * **pickled pipe** -- TWO hops through the coordinator relay
      (worker -> coordinator -> destination worker), each delivery a
      pickled tuple through an ``os.pipe`` with routing at the relay.
      This is the transport ROADMAP named as the blocker ("pickled
      tuples over multiprocessing pipes") and the gate comparator.
    * **pickled pipe, batched** -- the same relay with one pickle per
      window batch, which is what PR 9's pipe backend actually does
      (``Connection.send`` of a whole window reply).  Recorded so the
      comparison against the strongest pipe configuration is on the
      table too, not just the per-tuple one.

    Runs in one process with interleaved passes so machine noise hits
    all paths alike (the satellite requirement: measurable on the
    1-core container).  Throughput is compared as *payload* bytes per
    second -- the same logical deliveries valued at the struct wire
    size for every path -- because the encodings move different wire
    byte counts for identical traffic; raw wire bytes moved are
    recorded per path as well.  Gate: struct ring >= 2x pickled pipe.
    """
    import os
    import pickle
    import struct as pystruct
    import time

    from repro.shard.ipc import ShardFrameCodec, SpscRing

    msgs = _micro_messages(n_messages)
    n_shards = 4
    deliveries = [
        (1000.0 + i * 0.25, (i * 31) % 512, i, i % n_shards, m)
        for i, m in enumerate(msgs)
    ]
    # Destination-shard map for the relay's routing step (the pipe
    # coordinator pays this per delivery; the shm path resolves the
    # ring once per (src, dst) pair instead).
    owner = {dst: dst % n_shards for _, dst, _, _, _ in deliveries}
    codec = ShardFrameCodec()

    # --- struct ring: one direct hop -----------------------------------
    ring = SpscRing.over(1 << 20)

    def ring_pass() -> tuple:
        t0 = time.perf_counter()
        decoded = 0
        for start in range(0, len(deliveries), batch):
            chunk = deliveries[start:start + batch]
            for t, dst, seq, origin, m in chunk:
                kind, payload = codec.encode_delivery(t, dst, seq, origin, m)
                ring.write(kind, payload)
            for _ in chunk:
                kind, view = ring.read()
                codec.decode_delivery(kind, view)
                decoded += 1
        wall = time.perf_counter() - t0
        assert decoded == len(deliveries)
        return wall, ring.bytes_written

    # --- pickled pipe: worker -> coordinator -> destination ------------
    rfd, wfd = os.pipe()
    rfd2, wfd2 = os.pipe()
    lenhdr = pystruct.Struct("!I")

    def _send(fd, obj) -> int:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        os.write(fd, lenhdr.pack(len(blob)) + blob)
        return lenhdr.size + len(blob)

    def _recv(fd):
        (length,) = lenhdr.unpack(os.read(fd, lenhdr.size))
        body = b""
        while len(body) < length:
            body += os.read(fd, length - len(body))
        return pickle.loads(body)

    def pipe_pass() -> tuple:
        """Per-delivery pickled tuples through the two-hop relay."""
        t0 = time.perf_counter()
        moved = 0
        delivered = 0
        for start in range(0, len(deliveries), batch):
            chunk = deliveries[start:start + batch]
            # hop 1: each outbox entry pickled into the coordinator pipe
            for item in chunk:
                moved += _send(wfd, item)
            inboxes = [[] for _ in range(n_shards)]
            for _ in chunk:
                item = _recv(rfd)
                inboxes[owner[item[1]]].append(item)
            # hop 2: each routed entry pickled on to its destination
            for inbox in inboxes:
                for item in inbox:
                    moved += _send(wfd2, item)
                for _ in inbox:
                    _recv(rfd2)
                    delivered += 1
        wall = time.perf_counter() - t0
        assert delivered == len(deliveries)
        return wall, moved

    def batched_pass() -> tuple:
        """One pickle per window batch (PR 9's actual pipe mechanics)."""
        t0 = time.perf_counter()
        moved = 0
        delivered = 0
        for start in range(0, len(deliveries), batch):
            chunk = deliveries[start:start + batch]
            moved += _send(wfd, chunk)
            arrived = _recv(rfd)
            inboxes = [[] for _ in range(n_shards)]
            for item in arrived:
                inboxes[owner[item[1]]].append(item)
            for inbox in inboxes:
                if not inbox:
                    continue
                moved += _send(wfd2, inbox)
                delivered += len(_recv(rfd2))
        wall = time.perf_counter() - t0
        assert delivered == len(deliveries)
        return wall, moved

    # Warm-up, then interleave A/B/C passes and keep the best of each:
    # the minimum is the pass least disturbed by the machine (same
    # protocol as the macro bench).
    ring_pass(); pipe_pass(); batched_pass()
    ring_walls, pipe_walls, batched_walls = [], [], []
    ring_bytes = pipe_bytes = batched_bytes = 0
    for _ in range(3):
        w, ring_bytes = ring_pass()
        ring_walls.append(w)
        w, pipe_bytes = pipe_pass()
        pipe_walls.append(w)
        w, batched_bytes = batched_pass()
        batched_walls.append(w)
    os.close(rfd)
    os.close(wfd)
    os.close(rfd2)
    os.close(wfd2)
    ring.close()

    # Encode-only comparison (no transport, no decode).
    t0 = time.perf_counter()
    for t, dst, seq, origin, m in deliveries:
        codec.encode_delivery(t, dst, seq, origin, m)
    struct_encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for item in deliveries:
        pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
    pickle_encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for start in range(0, len(deliveries), batch):
        pickle.dumps(
            deliveries[start:start + batch],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    pickle_batched_encode_s = time.perf_counter() - t0

    n = len(deliveries)
    ring_wall = min(ring_walls)
    pipe_wall = min(pipe_walls)
    batched_wall = min(batched_walls)
    # The ring byte counter accumulates over warm-up + timed passes.
    ring_wire = ring_bytes // (len(ring_walls) + 1)

    def path_entry(wall: float, wire: int) -> dict:
        return {
            "wall_seconds": round(wall, 4),
            "deliveries_per_second": round(n / wall),
            "wire_bytes_moved": wire,
            "wire_bytes_per_delivery": round(wire / n, 1),
            # Same logical deliveries on every path, valued at the
            # struct wire size -- the common denominator that makes
            # bytes/s comparable across encodings.
            "payload_bytes_per_second": round(ring_wire / wall),
        }

    entry = {
        "protocol": (
            f"{n_messages} deliveries (lookup-phase mix), windows of "
            f"{batch}, interleaved passes, best of 3; pipe paths = "
            "2 pickled hops via the coordinator relay (per-tuple and "
            "per-batch variants)"
        ),
        "struct_ring": {
            **path_entry(ring_wall, ring_wire),
            "encode_only_seconds": round(struct_encode_s, 4),
            "pickled_fallbacks": codec.pickled_fallbacks,
        },
        "pickled_pipe": {
            **path_entry(pipe_wall, pipe_bytes),
            "encode_only_seconds": round(pickle_encode_s, 4),
        },
        "pickled_pipe_batched": {
            **path_entry(batched_wall, batched_bytes),
            "encode_only_seconds": round(pickle_batched_encode_s, 4),
        },
        "payload_bytes_note": (
            "all paths carry the same logical deliveries, so throughput "
            "is compared at a common payload size (the struct wire "
            "bytes); raw wire bytes differ per encoding and are "
            "recorded above"
        ),
        "throughput_ratio_bytes_per_second": round(
            pipe_wall / ring_wall, 2
        ),
        "throughput_ratio_vs_batched_pipe": round(
            batched_wall / ring_wall, 2
        ),
    }
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("quick", "medium", "large", "huge"),
        default=None,
        help="workload scale (default: medium, the acceptance gate; "
        "large = 10^5 peers, bulk build, no golden; huge = 10^6 peers, "
        "sharded-only)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed repeats (default: 5)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: quick scale, 2 repeats, shards=2 identity gate, "
        "no JSON written",
    )
    parser.add_argument(
        "--shards",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="also run the workload sharded over N workers (repeatable); "
        "asserts bit-identity with the single-process result",
    )
    parser.add_argument(
        "--shard-backend",
        choices=("pipe", "shm"),
        default=None,
        help="cross-shard transport for the sharded repeats "
        "(default: REPRO_SHARD_BACKEND or pipe)",
    )
    parser.add_argument(
        "--ipc-micro",
        action="store_true",
        help="run the transport micro-bench (struct ring vs pickled "
        "pipe) and record it under 'ipc_micro'",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_substrate.json",
        help="result file (default: BENCH_substrate.json at repo root)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    scale_explicit = args.scale is not None
    if args.scale is None:
        args.scale = "medium"

    if args.smoke:
        args.scale = "quick"
        args.repeats = min(args.repeats, 2)
        if not args.shards:
            args.shards = [2]
    if args.scale == "large" and args.repeats > 2:
        args.repeats = 2  # minutes per repeat; best-of-5 buys little

    if args.ipc_micro:
        print("ipc micro-bench (struct ring vs pickled pipe) ...")
        micro = run_ipc_micro()
        print(
            f"  struct ring: "
            f"{micro['struct_ring']['deliveries_per_second']:,} deliveries/s "
            f"({micro['struct_ring']['wire_bytes_per_delivery']} wire B each); "
            f"pickled pipe: "
            f"{micro['pickled_pipe']['deliveries_per_second']:,} deliveries/s "
            f"({micro['pickled_pipe']['wire_bytes_per_delivery']} wire B each); "
            f"ratio {micro['throughput_ratio_bytes_per_second']}x payload bytes/s"
        )
        if not args.smoke:
            existing = {}
            if args.output.exists():
                existing = json.loads(args.output.read_text())
            existing["ipc_micro"] = micro
            args.output.write_text(json.dumps(existing, indent=2) + "\n")
            print(f"wrote {args.output}")
        if not scale_explicit and not args.shards and not args.smoke:
            return 0  # --ipc-micro alone: skip the macro bench

    if args.scale == "huge":
        # 10^6 peers: a single-process reference run has nothing to
        # teach (the whole point is that one heap can't hold it
        # comfortably) and would double a multi-hour bench, so huge is
        # sharded-only.  Determinism evidence at this scale is the
        # pipe-vs-shm cross-check the gated scales run on every CI pass.
        shard_counts = args.shards or [2]
        print(f"benchmarking {workload_desc(args.scale)} (sharded only) ...")
        entry = {
            "scale": args.scale,
            "workload": workload_desc(args.scale),
            "protocol": "single sharded run (hours per repeat)",
            "reference": "none (sharded only; no single-process golden at 10^6)",
            "sharded": run_sharded_bench(
                args.scale, shard_counts, None, None,
                backend=args.shard_backend, with_distribution=True,
            ),
        }
    else:
        print(f"benchmarking {workload_desc(args.scale)} ...")
        entry = run_bench(args.scale, args.repeats, check=True)
        base_result = entry.pop("_base_result")
        base_evps = entry.pop("_best_evps")
        if args.scale == "large":
            entry["cell_metrics"] = base_result.to_dict()
        line = (
            f"best: {entry['best']['wall_seconds']}s "
            f"({entry['best']['events_per_second']:,} events/s)"
        )
        if "baseline_pre_pr" in entry:
            line += (
                f"; pre-PR baseline: "
                f"{entry['baseline_pre_pr']['events_per_second']:,} events/s; "
                f"speedup: {entry['speedup_events_per_second']}x"
            )
        print(line)

        if args.shards:
            print(f"sharded repeats (identity gate vs single-process) ...")
            entry["sharded"] = run_sharded_bench(
                args.scale, args.shards, base_result, base_evps,
                backend=args.shard_backend,
                with_distribution=(args.scale == "large"),
            )

    if not args.smoke:
        existing = {}
        if args.output.exists():
            existing = json.loads(args.output.read_text())
        existing.setdefault("bench", "substrate throughput, Fig.-3-style workload")
        existing.setdefault("scales", {})
        if args.scale in existing["scales"] and "sharded" in entry:
            # Sharded entries accumulate across backends (keys "2" /
            # "2-shm" coexist); everything else is overwritten.
            prior = existing["scales"][args.scale].get("sharded", {})
            entry["sharded"] = {**prior, **entry["sharded"]}
        existing["scales"][args.scale] = entry
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
