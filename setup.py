"""Legacy shim: this environment lacks the `wheel` package, which the
PEP 517 editable path needs; `pip install -e . --no-use-pep517` falls
back to `setup.py develop` via this file."""
from setuptools import setup

setup()
