"""repro.swarm: manifests, bitmaps, rarest-first, tracker, sim swarm.

Unit coverage for the pure pieces (hashing, bitmaps, selection,
tracker book-keeping) plus deterministic end-to-end flash crowds on
the simulator: publish chunked content from one s-peer, fetch it from
several others, and check that the bytes verify, the load spreads off
the publisher, and repeated runs are bit-identical.
"""

from __future__ import annotations

import pytest

from repro.core.config import HybridConfig
from repro.core.hybrid import HybridSystem
from repro.swarm import manifest as mf
from repro.swarm.pieces import (
    bitmap_all,
    bitmap_count,
    bitmap_get,
    bitmap_new,
    bitmap_set,
    rarest_first,
)
from repro.swarm.tracker import SwarmTracker


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def test_manifest_roundtrip() -> None:
    data = bytes(range(256)) * 41  # 10496 bytes, not piece-aligned
    manifest = mf.build_manifest(data, 1000)
    assert mf.is_manifest(manifest)
    assert manifest["length"] == len(data)
    assert len(manifest["pieces"]) == 11  # 10 full + 1 short
    pieces = mf.split_pieces(data, 1000)
    assert all(
        mf.verify_piece(manifest, i, p) for i, p in enumerate(pieces)
    )
    assert mf.assemble(manifest, dict(enumerate(pieces))) == data


def test_manifest_empty_content() -> None:
    manifest = mf.build_manifest(b"", 4096)
    assert manifest["length"] == 0
    assert len(manifest["pieces"]) == 1
    assert mf.verify_piece(manifest, 0, b"")
    assert mf.assemble(manifest, {0: b""}) == b""


def test_verify_piece_rejects_corruption() -> None:
    # Offset each piece's pattern so no two pieces share bytes.
    data = bytes((i + i // 1024) % 256 for i in range(4096))
    manifest = mf.build_manifest(data, 1024)
    pieces = mf.split_pieces(data, 1024)
    flipped = bytes([pieces[1][0] ^ 0xFF]) + pieces[1][1:]
    assert not mf.verify_piece(manifest, 1, flipped)
    # Right bytes under the wrong index fail too.
    assert not mf.verify_piece(manifest, 0, pieces[1])
    # Truncation is caught by the length check.
    assert not mf.verify_piece(manifest, 1, pieces[1][:-1])
    # Out-of-range index is a clean False, not an IndexError.
    assert not mf.verify_piece(manifest, 99, pieces[1])


def test_assemble_refuses_missing_and_corrupt() -> None:
    data = b"0123456789" * 100
    manifest = mf.build_manifest(data, 256)
    pieces = dict(enumerate(mf.split_pieces(data, 256)))
    incomplete = dict(pieces)
    del incomplete[2]
    with pytest.raises(ValueError, match="missing"):
        mf.assemble(manifest, incomplete)
    swapped = dict(pieces)
    swapped[0], swapped[1] = swapped[1], swapped[0]
    with pytest.raises(ValueError):
        mf.assemble(manifest, swapped)


def test_is_manifest_rejects_plain_values() -> None:
    assert not mf.is_manifest("a string")
    assert not mf.is_manifest({"swarm": 1})  # missing content/pieces
    assert not mf.is_manifest({"content": "x", "pieces": []})
    assert not mf.is_manifest(None)


def test_split_pieces_validates_size() -> None:
    with pytest.raises(ValueError):
        mf.split_pieces(b"xy", 0)


# ----------------------------------------------------------------------
# Bitmaps
# ----------------------------------------------------------------------
def test_bitmap_basics() -> None:
    bm = bitmap_new(20)
    assert len(bm) == 3 and bitmap_count(bm) == 0
    bitmap_set(bm, 0)
    bitmap_set(bm, 9)
    bitmap_set(bm, 19)
    assert bitmap_get(bm, 9) and not bitmap_get(bm, 10)
    assert bitmap_count(bm) == 3
    # Out-of-range reads are False, not IndexError.
    assert not bitmap_get(bm, 200)
    # Sets grow the map.
    bitmap_set(bm, 40)
    assert bitmap_get(bm, 40) and bitmap_count(bm) == 4


def test_bitmap_all_sets_exactly_n_bits() -> None:
    for n in (0, 1, 7, 8, 9, 64, 65):
        bm = bitmap_all(n)
        assert bitmap_count(bm) == n
        assert not bitmap_get(bm, n)  # pad bits stay clear


# ----------------------------------------------------------------------
# Rarest-first selection
# ----------------------------------------------------------------------
def test_rarest_first_prefers_rare_pieces() -> None:
    # Piece 3 exists on one holder only; everything else on both.
    full = bytes(bitmap_all(4))
    partial = bytearray(bitmap_all(4))
    partial[0] &= ~(1 << 3) & 0xFF
    plan = rarest_first(
        4, have=set(), requested=set(),
        holder_maps={10: bytes(partial), 20: full},
        inflight={}, max_inflight=4, budget=1,
    )
    assert plan == [(3, 20)]  # the rare piece, from its only source


def test_rarest_first_respects_inflight_cap_and_budget() -> None:
    full = bytes(bitmap_all(8))
    plan = rarest_first(
        8, have=set(), requested=set(),
        holder_maps={10: full}, inflight={10: 2},
        max_inflight=3, budget=8,
    )
    # One slot left under the cap: exactly one request may be planned.
    assert len(plan) == 1 and plan[0][1] == 10


def test_rarest_first_skips_held_and_requested() -> None:
    full = bytes(bitmap_all(4))
    plan = rarest_first(
        4, have={0, 1}, requested={2},
        holder_maps={10: full}, inflight={},
        max_inflight=4, budget=8,
    )
    assert [index for index, _ in plan] == [3]


def test_rarest_first_is_deterministic_and_salt_spreads() -> None:
    full = bytes(bitmap_all(16))
    maps = {10: full, 20: full, 30: full}
    kw = dict(have=set(), requested=set(), holder_maps=maps,
              inflight={}, max_inflight=2, budget=4)
    assert rarest_first(16, salt=7, **kw) == rarest_first(16, salt=7, **kw)
    picks_a = {h for _, h in rarest_first(16, salt=1, **kw)}
    picks_b = {h for _, h in rarest_first(16, salt=2, **kw)}
    # Different salts must not stampede one identical holder.
    assert len(picks_a | picks_b) > 1


# ----------------------------------------------------------------------
# Tracker
# ----------------------------------------------------------------------
def test_tracker_announce_have_and_ranking() -> None:
    tracker = SwarmTracker()
    tracker.announce("c1", holder=10, n_pieces=8, have=bytes(bitmap_all(8)))
    tracker.announce("c1", holder=20, n_pieces=8, have=bytes(bitmap_new(8)))
    tracker.have("c1", holder=20, piece=5, n_pieces=8)
    holders = tracker.holders_for("c1")
    assert [addr for addr, _ in holders] == [10, 20]  # best-stocked first
    assert bitmap_get(holders[1][1], 5)
    # The requester is excluded from its own answer.
    assert [a for a, _ in tracker.holders_for("c1", exclude=10)] == [20]
    assert tracker.holder_count("c1") == 2
    assert tracker.n_pieces("c1") == 8


def test_tracker_forget_peer_drops_all_registrations() -> None:
    tracker = SwarmTracker()
    tracker.announce("c1", 10, 4, bytes(bitmap_all(4)))
    tracker.announce("c2", 10, 4, bytes(bitmap_all(4)))
    tracker.announce("c2", 20, 4, bytes(bitmap_all(4)))
    tracker.forget_peer(10)
    assert tracker.holder_count("c1") == 0
    assert [a for a, _ in tracker.holders_for("c2")] == [20]


# ----------------------------------------------------------------------
# Simulated flash crowd
# ----------------------------------------------------------------------
def _swarm_system(n_peers: int = 16, seed: int = 3) -> HybridSystem:
    config = HybridConfig(
        p_s=0.7, swarm_enabled=True, swarm_piece_size=1_000,
        swarm_inflight=4, swarm_request_timeout=250.0,
    )
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    return system


def test_sim_publish_and_crowd_fetch() -> None:
    system = _swarm_system()
    s_peers = sorted(system.s_peers(), key=lambda p: p.address)
    publisher, fetchers = s_peers[0], s_peers[1:9]
    data = bytes(i % 251 for i in range(26_000))  # 26 pieces

    tx_by_peer: dict = {}

    def _count(rec) -> None:
        if rec.payload.get("dir") == "tx":
            addr = rec.payload["peer"]
            tx_by_peer[addr] = tx_by_peer.get(addr, 0) + 1

    system.trace.subscribe("swarm.piece", _count)
    manifest = publisher.swarm_publish("hot", data)
    assert len(manifest["pieces"]) == 26
    system.settle(2_000.0)

    results: list = []
    for peer in fetchers:
        peer.swarm_fetch(manifest, lambda d, info: results.append((d, info)))
    system.engine.run_while(lambda: len(results) < len(fetchers), 5_000_000)
    system.trace.unsubscribe("swarm.piece", _count)

    assert len(results) == len(fetchers)
    assert all(d == data for d, _ in results)
    assert all(info["integrity_failures"] == 0 for _, info in results)
    # The swarm effect: fetchers re-serve pieces, so the publisher does
    # not carry the whole crowd alone.
    served_by_others = sum(
        n for addr, n in tx_by_peer.items() if addr != publisher.address
    )
    assert served_by_others > 0
    # A completed fetcher is itself a full seed now.
    content = manifest["content"]
    assert len(fetchers[0].swarm_pieces[content]) == 26


def test_sim_fetch_from_local_seed_is_immediate() -> None:
    system = _swarm_system(n_peers=12, seed=5)
    publisher = sorted(system.s_peers(), key=lambda p: p.address)[0]
    data = b"x" * 5_000
    manifest = publisher.swarm_publish("self", data)
    results: list = []
    publisher.swarm_fetch(manifest, lambda d, info: results.append(d))
    assert results == [data]  # no messages needed


def test_sim_crowd_is_deterministic() -> None:
    def run_once() -> list:
        system = _swarm_system(n_peers=14, seed=9)
        s_peers = sorted(system.s_peers(), key=lambda p: p.address)
        publisher, fetchers = s_peers[0], s_peers[1:4]
        events: list = []
        system.trace.subscribe(
            "swarm.piece",
            lambda rec: events.append((rec.time, tuple(sorted(rec.payload.items())))),
        )
        data = bytes(i % 17 for i in range(9_500))
        manifest = publisher.swarm_publish("det", data)
        system.settle(1_000.0)
        done: list = []
        for peer in fetchers:
            peer.swarm_fetch(manifest, lambda d, info: done.append(d == data))
        system.engine.run_while(lambda: len(done) < len(fetchers), 5_000_000)
        assert done == [True, True, True]
        return events

    assert run_once() == run_once()


def test_swarm_disabled_allocates_nothing_active() -> None:
    config = HybridConfig()
    assert config.swarm_enabled is False
    system = HybridSystem(config, n_peers=10, seed=1)
    system.build()
    for peer in system.alive_peers():
        assert peer.swarm_pieces == {}
        assert len(peer.swarm_tracker) == 0
        assert peer._swarm_downloads == {}
        assert not peer._swarm_on


def test_config_validates_swarm_knobs() -> None:
    with pytest.raises(ValueError, match="swarm_piece_size"):
        HybridConfig(swarm_piece_size=0).validate()
    with pytest.raises(ValueError, match="swarm_inflight"):
        HybridConfig(swarm_inflight=0).validate()
    with pytest.raises(ValueError, match="swarm_request_timeout"):
        HybridConfig(swarm_request_timeout=0.0).validate()
