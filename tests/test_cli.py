"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 200 and args.ps == 0.7

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2", "--scale", "quick"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_sweep_grid(self):
        args = build_parser().parse_args(["sweep", "--grid", "0.1", "0.5"])
        assert args.grid == [0.1, 0.5]

    def test_executor_flags_default_off(self):
        args = build_parser().parse_args(["experiment", "fig5"])
        assert args.jobs is None and args.no_cache is False

    def test_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4 and args.no_cache is True

    def test_node_set_flag_repeats(self):
        args = build_parser().parse_args(
            ["node", "--join", "h:1", "--set", "replication_factor=3",
             "--set", "write_quorum=2"]
        )
        assert args.overrides == ["replication_factor=3", "write_quorum=2"]

    def test_set_overrides_coerce_by_field_type(self):
        from repro.cli import _apply_config_overrides
        from repro.core import HybridConfig

        cfg = _apply_config_overrides(
            HybridConfig(),
            ["replication_factor=3", "write_quorum=2",
             "heartbeats_enabled=true", "replica_sync_period=2000"],
        )
        assert cfg.replication_factor == 3 and cfg.write_quorum == 2
        assert cfg.heartbeats_enabled is True
        assert cfg.replica_sync_period == 2000.0

    def test_set_overrides_reject_unknown_and_invalid(self):
        from repro.cli import _apply_config_overrides
        from repro.core import HybridConfig

        with pytest.raises(SystemExit):
            _apply_config_overrides(HybridConfig(), ["no_such_field=1"])
        with pytest.raises(SystemExit):
            _apply_config_overrides(HybridConfig(), ["write_quorum=9"])
        with pytest.raises(SystemExit):
            _apply_config_overrides(HybridConfig(), ["replication_factor"])


class TestCommands:
    def test_demo_runs(self, capsys):
        rc = main(
            [
                "demo", "--peers", "40", "--keys", "60", "--lookups", "60",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "failure ratio" in out
        assert "connum" in out

    def test_demo_bittorrent_and_cache_flags(self, capsys):
        rc = main(
            [
                "demo", "--peers", "30", "--keys", "40", "--lookups", "40",
                "--bittorrent", "--cache",
            ]
        )
        assert rc == 0
        assert "0.0000" in capsys.readouterr().out  # zero failures

    def test_analyze_runs(self, capsys):
        rc = main(["analyze", "--points", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fig. 3a" in out and "Fig. 3b" in out

    def test_sweep_runs(self, capsys):
        rc = main(
            [
                "sweep", "--peers", "30", "--keys", "40", "--lookups", "40",
                "--grid", "0.0", "0.8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0.8" in out

    def test_experiment_maintenance(self, capsys):
        rc = main(["experiment", "maintenance", "--scale", "quick"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "maintenance" in out

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_CACHE", str(tmp_path))
        argv = [
            "sweep", "--peers", "30", "--keys", "40", "--lookups", "40",
            "--grid", "0.0", "0.8",
        ]
        assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(argv + ["--jobs", "1"]) == 0  # warm cache
        cached = capsys.readouterr().out
        assert serial == parallel == cached

    def test_deterministic_output(self, capsys):
        argv = ["demo", "--peers", "30", "--keys", "40", "--lookups", "40", "--seed", "9"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second
