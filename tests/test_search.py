"""Tests for random-walk lookups and partial/keyword search."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system


def populate(system, n, prefix="k"):
    peers = [p.address for p in system.alive_peers()]
    system.populate([(peers[i % len(peers)], f"{prefix}{i}", i) for i in range(n)])
    return peers


class TestRandomWalks:
    def test_walks_find_items_with_ample_budget(self):
        system = build_system(
            p_s=0.8, n_peers=40, seed=3,
            search_mode="walk", walkers=6, walk_ttl=24,
            lookup_timeout=20_000.0,
        )
        peers = populate(system, 100)
        system.run_lookups([(peers[(i * 7) % len(peers)], f"k{i}") for i in range(100)])
        assert system.query_stats().failure_ratio < 0.05

    def test_starved_walks_fail(self):
        system = build_system(
            p_s=0.9, n_peers=50, seed=3, delta=2,
            search_mode="walk", walkers=1, walk_ttl=2,
            lookup_timeout=5_000.0,
        )
        peers = populate(system, 150)
        system.run_lookups([(peers[(i * 7) % len(peers)], f"k{i}") for i in range(150)])
        assert system.query_stats().failure_ratio > 0.0

    def test_walks_bound_the_per_query_budget(self):
        """A flood pays for the whole reachable ball; a walk pays at
        most walkers x walk_ttl.  With the budget below the s-network
        size, walks must contact fewer peers (their trade: a higher
        failure ratio)."""

        def run(mode: str):
            system = build_system(
                p_s=0.9, n_peers=50, seed=4, ttl=8,
                search_mode=mode, walkers=1, walk_ttl=5,
                lookup_timeout=10_000.0,
            )
            peers = populate(system, 100)
            system.run_lookups(
                [(peers[(i * 7) % len(peers)], f"k{i}") for i in range(100)]
            )
            return system.query_stats()

        walk, flood = run("walk"), run("flood")
        assert walk.connum < flood.connum
        assert walk.failure_ratio >= flood.failure_ratio

    def test_more_walkers_higher_success(self):
        def failure(walkers: int) -> float:
            system = build_system(
                p_s=0.9, n_peers=50, seed=5, delta=2,
                search_mode="walk", walkers=walkers, walk_ttl=6,
                lookup_timeout=5_000.0,
            )
            peers = populate(system, 120)
            system.run_lookups(
                [(peers[(i * 11) % len(peers)], f"k{i}") for i in range(120)]
            )
            return system.query_stats().failure_ratio

        assert failure(8) <= failure(1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(search_mode="teleport").validate()
        with pytest.raises(ValueError):
            HybridConfig(walkers=0).validate()
        with pytest.raises(ValueError):
            HybridConfig(walk_ttl=0).validate()


class TestPartialSearch:
    def make_interest_system(self, n_items=40, seed=2):
        system = build_system(
            p_s=0.8, n_peers=60, ttl=10, seed=seed, interest_band_bits=14
        )
        peers = [p.address for p in system.alive_peers()]
        system.populate(
            [(peers[i % len(peers)], f"music:item-{i}", i) for i in range(n_items)]
        )
        anchor_pid, anchor = system.server.ring.owner_of(
            system.idspace.hash_key("music")
        )
        members = [p for p in system.s_peers() if p.t_peer == anchor]
        origin = members[0] if members else system.peers[anchor]
        return system, origin

    def test_prefix_search_finds_all_matches(self):
        system, origin = self.make_interest_system()
        qid = origin.search("music:item-1", timeout=10_000.0)
        system.engine.run()
        assert origin.search_done(qid)
        results = origin.search_results(qid)
        expected = {f"music:item-{i}" for i in [1] + list(range(10, 20))}
        assert set(results) == expected
        assert system.queries.get(qid).status == "success"

    def test_search_with_no_matches_fails(self):
        system, origin = self.make_interest_system()
        qid = origin.search("video:", timeout=5_000.0)
        system.engine.run()
        assert origin.search_done(qid)
        assert origin.search_results(qid) == {}
        assert system.queries.get(qid).status == "failed"

    def test_search_aggregates_multiple_holders(self):
        system, origin = self.make_interest_system()
        qid = origin.search("music:", timeout=10_000.0)
        system.engine.run()
        state = origin.pending_searches[qid]
        assert len(state.holders) > 1  # matches came from several peers
        assert len(origin.search_results(qid)) == 40

    def test_empty_prefix_rejected(self):
        system, origin = self.make_interest_system(n_items=5)
        with pytest.raises(ValueError):
            origin.search("")

    def test_results_none_while_running(self):
        system, origin = self.make_interest_system(n_items=5)
        qid = origin.search("music:", timeout=60_000.0)
        # Before the engine runs the timer out, results are unavailable.
        assert origin.search_results(qid) is None
        system.engine.run()
        assert origin.search_results(qid) is not None
