"""Tests for the Prometheus text renderer and the HTTP micro-router."""

from __future__ import annotations

import json

from repro.obs import (
    CONTENT_TYPE_PROM,
    MetricsRegistry,
    handle_http_request,
    render_json,
    render_prometheus,
)


def _loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_frames_total", "frames", labelnames=("direction", "type")
    ).labels("tx", "Hello").inc(7)
    reg.gauge("repro_uptime_seconds", "uptime").set(12.5)
    reg.histogram("repro_lookup_hops", "hops", buckets=(1, 2, 4)).labels()
    for v in (1, 2, 3, 9):
        reg.get("repro_lookup_hops").observe(v)
    return reg


class TestRenderPrometheus:
    def test_help_and_type_lines(self):
        text = render_prometheus(_loaded_registry())
        assert "# HELP repro_frames_total frames" in text
        assert "# TYPE repro_frames_total counter" in text
        assert "# TYPE repro_lookup_hops histogram" in text
        assert "# TYPE repro_uptime_seconds gauge" in text

    def test_counter_sample_with_labels(self):
        text = render_prometheus(_loaded_registry())
        assert 'repro_frames_total{direction="tx",type="Hello"} 7' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = render_prometheus(_loaded_registry()).splitlines()
        buckets = [l for l in lines if l.startswith("repro_lookup_hops_bucket")]
        assert buckets == [
            'repro_lookup_hops_bucket{le="1"} 1',
            'repro_lookup_hops_bucket{le="2"} 2',
            'repro_lookup_hops_bucket{le="4"} 3',
            'repro_lookup_hops_bucket{le="+Inf"} 4',
        ]
        assert "repro_lookup_hops_sum 15" in lines
        assert "repro_lookup_hops_count 4" in lines

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", "h", labelnames=("k",)).labels('a"b\\c').inc()
        text = render_prometheus(reg)
        assert 'x{k="a\\"b\\\\c"} 1' in text

    def test_render_json_round_trips(self):
        reg = _loaded_registry()
        snap = json.loads(render_json(reg))
        assert snap == reg.snapshot()


class TestHttpRouter:
    def _parse(self, raw: bytes):
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("ascii").split("\r\n")
        status = lines[0].split(" ", 1)[1]
        headers = dict(l.split(": ", 1) for l in lines[1:])
        return status, headers, body

    def test_get_metrics(self):
        reg = _loaded_registry()
        status, headers, body = self._parse(
            handle_http_request("GET /metrics HTTP/1.1", reg)
        )
        assert status == "200 OK"
        assert headers["Content-Type"] == CONTENT_TYPE_PROM
        assert int(headers["Content-Length"]) == len(body)
        assert b"repro_frames_total" in body

    def test_get_metrics_json(self):
        reg = _loaded_registry()
        status, headers, body = self._parse(
            handle_http_request("GET /metrics.json HTTP/1.1", reg)
        )
        assert status == "200 OK"
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == reg.snapshot()

    def test_healthz_uses_callable(self):
        reg = MetricsRegistry()
        raw = handle_http_request(
            "GET /healthz HTTP/1.1", reg, health=lambda: {"ok": True, "role": "t"}
        )
        status, _, body = self._parse(raw)
        assert status == "200 OK"
        assert json.loads(body) == {"ok": True, "role": "t"}

    def test_query_string_ignored(self):
        status, _, _ = self._parse(
            handle_http_request("GET /healthz?probe=1 HTTP/1.1", MetricsRegistry())
        )
        assert status == "200 OK"

    def test_head_returns_headers_only(self):
        reg = _loaded_registry()
        raw = handle_http_request("HEAD /metrics HTTP/1.1", reg)
        status, headers, body = self._parse(raw)
        assert status == "200 OK"
        assert body == b""
        # Content-Length still advertises what a GET would carry.
        assert int(headers["Content-Length"]) > 0

    def test_unknown_path_404(self):
        status, _, _ = self._parse(
            handle_http_request("GET /nope HTTP/1.1", MetricsRegistry())
        )
        assert status == "404 Not Found"

    def test_post_405(self):
        status, _, _ = self._parse(
            handle_http_request("POST /metrics HTTP/1.1", MetricsRegistry())
        )
        assert status == "405 Method Not Allowed"

    def test_garbage_request_line_400(self):
        status, _, _ = self._parse(
            handle_http_request("garbage", MetricsRegistry())
        )
        assert status == "400 Bad Request"
