"""Unit tests for HybridConfig validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import HybridConfig


def test_defaults_validate():
    HybridConfig().validate()


@pytest.mark.parametrize(
    "field,value",
    [
        ("p_s", -0.1),
        ("p_s", 1.1),
        ("delta", 0),
        ("ttl", 0),
        ("id_bits", 0),
        ("pid_strategy", "nope"),
        ("placement", "nope"),
        ("ring_routing", "nope"),
        ("lookup_timeout", 0.0),
        ("max_refloods", -1),
        ("connect_policy", "nope"),
        ("assignment", "nope"),
        ("snetwork_style", "nope"),
        ("mesh_extra_links", -1),
        ("hello_period", 0.0),
        ("election_grace", 0.0),
        ("join_retry_timeout", 0.0),
        ("link_usage_threshold", 0.0),
        ("n_landmarks", -1),
        ("interest_band_bits", 40),
        ("bypass_lifetime", 0.0),
    ],
)
def test_bad_values_rejected(field, value):
    cfg = dataclasses.replace(HybridConfig(), **{field: value})
    with pytest.raises(ValueError):
        cfg.validate()


def test_neighbor_timeout_must_exceed_hello_period():
    cfg = dataclasses.replace(
        HybridConfig(), hello_period=1000.0, neighbor_timeout=500.0
    )
    with pytest.raises(ValueError, match="neighbor_timeout"):
        cfg.validate()


def test_binned_assignment_requires_landmarks():
    cfg = dataclasses.replace(HybridConfig(), assignment="binned", n_landmarks=0)
    with pytest.raises(ValueError, match="landmark"):
        cfg.validate()


def test_with_changes_returns_validated_copy():
    base = HybridConfig(p_s=0.5)
    derived = base.with_changes(p_s=0.7, ttl=2)
    assert derived.p_s == 0.7 and derived.ttl == 2
    assert base.p_s == 0.5  # frozen original untouched
    with pytest.raises(ValueError):
        base.with_changes(p_s=2.0)


def test_config_is_hashable_and_frozen():
    cfg = HybridConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.p_s = 0.9  # type: ignore[misc]
    hash(cfg)  # usable as a sweep-cache key
