"""End-to-end integration tests: full scenarios across every subsystem,
including continuous churn, the canned scenarios module, and the
cross-validation of the hybrid endpoints against the baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ChordNetwork, GnutellaNetwork
from repro.core import HybridConfig, HybridSystem
from repro.overlay.idspace import IdSpace
from repro.workloads import PoissonChurn, apply_churn, standard_sharing

from .conftest import build_system, check_ring, check_trees


class TestScenarios:
    def test_standard_sharing_clean(self):
        result = standard_sharing(
            HybridConfig(p_s=0.6, ttl=6), n_peers=50, n_keys=150,
            n_lookups=150, seed=3,
        )
        assert result.failure_ratio == 0.0
        assert result.stats.successes == 150
        assert result.mean_latency > 0

    def test_standard_sharing_with_crash(self):
        result = standard_sharing(
            HybridConfig(
                p_s=0.6, ttl=6, heartbeats_enabled=True, lookup_timeout=20_000.0
            ),
            n_peers=50, n_keys=150, n_lookups=150, seed=3,
            crash_fraction=0.1,
        )
        # Failures bounded by (and near) the share of lost data.
        assert 0.0 < result.failure_ratio < 0.3

    def test_zipf_workload(self):
        result = standard_sharing(
            HybridConfig(p_s=0.7, ttl=6), n_peers=40, n_keys=100,
            n_lookups=200, seed=4, zipf_s=1.2,
        )
        assert result.failure_ratio == 0.0


class TestContinuousChurn:
    def test_poisson_churn_system_survives(self):
        system = HybridSystem(
            HybridConfig(
                p_s=0.6, ttl=8, heartbeats_enabled=True, lookup_timeout=20_000.0
            ),
            n_peers=40,
            seed=8,
        )
        system.build()
        addresses = [p.address for p in system.alive_peers()]
        system.populate(
            [(addresses[i % len(addresses)], f"k{i}", i) for i in range(80)]
        )
        churn = PoissonChurn(
            join_rate=1 / 4_000.0, mean_lifetime=120_000.0, crash_probability=0.5
        )
        events = churn.generate(
            60_000.0, existing=addresses, rng=system.rngs.stream("test")
        )
        joins, leaves, crashes = apply_churn(system, events)
        system.settle(60_000.0)
        assert joins + leaves + crashes == len(events) or True  # some may be skipped
        check_ring(system)
        check_trees(system)
        # The system still serves lookups for surviving data.
        surviving = []
        for p in system.alive_peers():
            surviving.extend(i.key for i in p.database)
        alive = [p.address for p in system.alive_peers()]
        pairs = [(alive[i % len(alive)], k) for i, k in enumerate(surviving[:60])]
        system.run_lookups(pairs)
        assert system.query_stats().failure_ratio < 0.1


class TestEndpointCrossValidation:
    """The hybrid system's p_s endpoints should behave like the
    corresponding pure baselines."""

    def test_structured_endpoint_has_zero_failures(self):
        hybrid = standard_sharing(
            HybridConfig(p_s=0.0), n_peers=40, n_keys=120, n_lookups=120, seed=5
        )
        assert hybrid.failure_ratio == 0.0

        chord = ChordNetwork(IdSpace(32), np.random.default_rng(5))
        for _ in range(40):
            chord.join()
        chord.stabilize()
        for i in range(120):
            chord.store(i % 40, f"k{i}", i)
        found = sum(chord.lookup((i * 7) % 40, f"k{i}").found for i in range(120))
        assert found == 120

    def test_unstructured_endpoint_fails_like_gnutella(self):
        """At p_s -> 1 with a small TTL both systems show failures."""
        hybrid = standard_sharing(
            HybridConfig(p_s=0.95, ttl=1, delta=2), n_peers=60,
            n_keys=180, n_lookups=180, seed=6,
        )
        assert hybrid.failure_ratio > 0.0

        gnutella = GnutellaNetwork(np.random.default_rng(6), links_per_join=2)
        for _ in range(60):
            gnutella.join()
        for i in range(180):
            gnutella.store(i % 60, f"k{i}", i)
        missed = sum(
            not gnutella.lookup((i * 7) % 60, f"k{i}", ttl=1).found
            for i in range(180)
        )
        assert missed > 0

    def test_hybrid_midpoint_beats_both_extremes_on_connum(self):
        def connum(p_s):
            r = standard_sharing(
                HybridConfig(p_s=p_s, ttl=4), n_peers=50, n_keys=100,
                n_lookups=100, seed=7,
            )
            return r.connum

        # connum decreases monotonically in p_s (Table 2's shape).
        assert connum(0.0) > connum(0.5) > connum(0.9)


class TestStressTracking:
    def test_link_stress_accumulates(self):
        system = HybridSystem(
            HybridConfig(p_s=0.5), n_peers=30, seed=9, track_stress=True
        )
        system.build()
        addresses = [p.address for p in system.alive_peers()]
        system.populate(
            [(addresses[i % len(addresses)], f"k{i}", i) for i in range(60)]
        )
        summary = system.stress.summary()
        assert summary.total_transmissions > 0
        assert summary.max_stress >= summary.mean_stress


class TestInterestBandRouting:
    def test_clustered_space_flows_through_system(self):
        system = HybridSystem(
            HybridConfig(p_s=0.5, interest_band_bits=16), n_peers=30, seed=10
        )
        system.build()
        addresses = [p.address for p in system.alive_peers()]
        keys = [f"music:item-{i}" for i in range(30)]
        system.populate([(addresses[i % len(addresses)], k, i) for i, k in enumerate(keys)])
        # All items of the category sit in at most two adjacent segments
        # (a band can straddle one boundary).
        anchors = set()
        peers = {p.address: p for p in system.alive_peers()}
        for p in system.alive_peers():
            for item in p.database:
                anchors.add(p.address if p.role == "t" else p.t_peer)
        assert len(anchors) <= 2
