"""Tests for the TraceBus -> MetricsRegistry bridge.

Synthetic-event tests pin the category -> instrument mapping; the
integration test attaches a bridge to a real simulated system and
checks the run populates the same catalogue a live node serves.
"""

from __future__ import annotations

import pytest

from repro.obs import MEMBERSHIP_CATEGORIES, MetricsRegistry, TraceBridge
from repro.sim import TraceBus

from .conftest import build_system


@pytest.fixture
def bus():
    return TraceBus()


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestMapping:
    def test_transport_send_counts_tx_frames_by_type(self, bus, reg):
        TraceBridge(bus, reg)
        bus.publish(1.0, "transport.send", src=1, dst=2, kind="LookupRequest")
        bus.publish(2.0, "transport.send", src=1, dst=2, kind="LookupRequest")
        bus.publish(3.0, "transport.send", src=2, dst=3, kind="Hello")
        fam = reg.get("repro_frames_total")
        assert fam.labels("tx", "LookupRequest").value == 2.0
        assert fam.labels("tx", "Hello").value == 1.0

    def test_lookup_done_feeds_status_and_histograms(self, bus, reg):
        TraceBridge(bus, reg)
        bus.publish(
            5.0, "lookup.done", query_id=1, span=9, hops=3, contacts=4, latency=120.0
        )
        assert reg.get("repro_lookups_total").labels("success").value == 1.0
        assert reg.get("repro_lookup_hops").labels().count == 1
        assert reg.get("repro_lookup_hops").labels().sum == 3.0
        assert reg.get("repro_lookup_contacts").labels().sum == 4.0
        assert reg.get("repro_lookup_latency_ms").labels().sum == 120.0

    def test_lookup_failed_counts_failure(self, bus, reg):
        TraceBridge(bus, reg)
        bus.publish(5.0, "lookup.failed", query_id=1, key="k")
        assert reg.get("repro_lookups_total").labels("failure").value == 1.0

    def test_hop_events_by_kind(self, bus, reg):
        TraceBridge(bus, reg)
        for kind in ("ring", "ring", "flood", "walk", "bt"):
            bus.publish(1.0, "lookup.hop", span=1, query_id=1, hop=1, kind=kind)
        fam = reg.get("repro_lookup_hop_events_total")
        assert fam.labels("ring").value == 2.0
        assert fam.labels("flood").value == 1.0
        assert fam.labels("walk").value == 1.0
        assert fam.labels("bt").value == 1.0

    def test_fanout_and_stored(self, bus, reg):
        TraceBridge(bus, reg)
        bus.publish(1.0, "flood.fanout", query_id=1, span=1, fanout=3)
        bus.publish(2.0, "data.stored", key="k")
        assert reg.get("repro_flood_fanout").labels().sum == 3.0
        assert reg.get("repro_items_stored_total").labels().value == 1.0

    def test_membership_categories_fold_into_one_counter(self, bus, reg):
        TraceBridge(bus, reg)
        for cat in MEMBERSHIP_CATEGORIES:
            bus.publish(1.0, cat)
        fam = reg.get("repro_peer_events_total")
        for cat in MEMBERSHIP_CATEGORIES:
            assert fam.labels(cat).value == 1.0


class TestLifecycle:
    def test_attach_makes_bus_want_bridged_categories(self, bus, reg):
        assert not bus.wants("lookup.done")
        bridge = TraceBridge(bus, reg)
        assert bus.wants("lookup.done")
        assert bus.wants("transport.send")
        bridge.detach()
        assert not bus.wants("lookup.done")
        assert not bus.active  # no-listener fast path restored

    def test_detach_stops_counting(self, bus, reg):
        bridge = TraceBridge(bus, reg)
        bus.publish(1.0, "data.stored")
        bridge.detach()
        bus.publish(2.0, "data.stored")
        assert reg.get("repro_items_stored_total").labels().value == 1.0

    def test_two_bridges_one_registry_is_allowed(self, reg):
        # Idempotent declaration: e.g. live transport + bridge share names.
        b1 = TraceBridge(TraceBus(), reg)
        b2 = TraceBridge(TraceBus(), reg)
        b1.bus.publish(1.0, "data.stored")
        b2.bus.publish(1.0, "data.stored")
        assert reg.get("repro_items_stored_total").labels().value == 2.0


class TestSimIntegration:
    def test_simulated_run_populates_live_catalogue(self):
        system = build_system(p_s=0.5, n_peers=20, heartbeats_enabled=False)
        reg = MetricsRegistry()
        bridge = TraceBridge(system.trace, reg)

        peers = [p.address for p in system.alive_peers()]
        system.populate(
            [(peers[i % len(peers)], f"key-{i}", i) for i in range(30)]
        )
        system.run_lookups(
            [(peers[(i + 7) % len(peers)], f"key-{i}") for i in range(30)]
        )
        bridge.detach()

        assert reg.get("repro_lookups_total").labels("success").value == 30.0
        hops = reg.get("repro_lookup_hops").labels()
        assert hops.count == 30
        assert reg.get("repro_lookup_contacts").labels().count == 30
        assert reg.get("repro_lookup_latency_ms").labels().sum > 0
        assert reg.get("repro_items_stored_total").labels().value >= 30.0
        assert reg.get("repro_frames_total").labels(
            "tx", "LookupRequest"
        ).value > 0
        # Remote lookups actually travelled: some hop events were traced
        # and the hop histogram has mass above zero hops.
        hop_events = reg.get("repro_lookup_hop_events_total")
        total_hop_events = sum(
            child.value for _, child in hop_events.children()
        )
        assert total_hop_events > 0
        assert hops.sum > 0
