"""Facade-level tests for HybridSystem (API contracts and accessors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system


class TestConstructionValidation:
    def test_zero_peers_rejected(self):
        with pytest.raises(ValueError):
            HybridSystem(HybridConfig(), n_peers=0)

    def test_invalid_config_rejected_early(self):
        with pytest.raises(ValueError):
            HybridSystem(HybridConfig(p_s=2.0), n_peers=10)

    def test_interests_length_checked(self):
        system = HybridSystem(HybridConfig(), n_peers=5)
        with pytest.raises(ValueError, match="one entry per peer"):
            system.build(interests=["music"])

    def test_peers_get_distinct_hosts(self, small_system):
        hosts = [p.host for p in small_system.alive_peers()]
        assert len(hosts) == len(set(hosts))
        assert small_system.server_host not in hosts


class TestAccessors:
    def test_snetwork_sizes_account_everyone(self, small_system):
        sizes = small_system.snetwork_sizes()
        assert sum(sizes.values()) == len(small_system.s_peers())
        assert set(sizes) == {p.address for p in small_system.t_peers()}

    def test_data_distribution_matches_totals(self, small_system):
        peers = [p.address for p in small_system.alive_peers()]
        small_system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(50)])
        dist = small_system.data_distribution()
        assert dist.sum() == small_system.total_items() == 50
        assert len(dist) == len(small_system.alive_peers())

    def test_ring_order_empty_without_tpeers(self):
        system = HybridSystem(HybridConfig(), n_peers=3)
        assert system.ring_order() == []  # not built yet

    def test_join_latencies_shapes(self, small_system):
        lat = small_system.join_latencies()
        assert set(lat) == {"t", "s"}
        assert isinstance(lat["t"], np.ndarray)


class TestChurnDriving:
    def test_crash_fraction_validation(self, small_system):
        with pytest.raises(ValueError):
            small_system.crash_random_fraction(1.5)

    def test_crash_fraction_zero_is_noop(self, small_system):
        assert small_system.crash_random_fraction(0.0) == []

    def test_crash_peers_skips_dead_and_unknown(self, small_system):
        victim = small_system.s_peers()[0].address
        assert small_system.crash_peers([victim, victim, 99999]) == 1

    def test_leave_peers_waits_for_completion(self):
        system = build_system(p_s=0.5, n_peers=20)
        victims = [system.t_peers()[0].address, system.s_peers()[0].address]
        system.leave_peers(victims, wait=True)
        for addr in victims:
            assert not system.peers[addr].alive

    def test_settle_advances_clock(self, small_system):
        t0 = small_system.engine.now
        small_system.settle(1234.0)
        assert small_system.engine.now == pytest.approx(t0 + 1234.0)


class TestPopulate:
    def test_populate_counts(self, small_system):
        peers = [p.address for p in small_system.alive_peers()]
        n = small_system.populate([(peers[0], f"x{i}", i) for i in range(7)])
        assert n == 7
        assert small_system.total_items() == 7

    def test_populate_without_drain(self, small_system):
        peers = [p.address for p in small_system.alive_peers()]
        small_system.populate([(peers[0], "undrained", 1)], drain=False)
        # The engine has not run: remote items may still be in flight,
        # but draining afterwards lands everything.
        small_system.engine.run()
        assert small_system.total_items() == 1

    def test_store_from_unknown_origin_raises(self, small_system):
        with pytest.raises(KeyError):
            small_system.store_from(99999, "k", 1)


class TestStressTracking:
    def test_stress_disabled_by_default(self, small_system):
        assert small_system.stress is None

    def test_stress_reset_isolates_phases(self):
        system = HybridSystem(HybridConfig(p_s=0.5), n_peers=20, seed=3, track_stress=True)
        system.build()
        build_tx = system.stress.summary().total_transmissions
        assert build_tx > 0
        system.stress.reset()
        assert system.stress.summary().total_transmissions == 0
