"""Tests for the link-stress and sustained-churn extension experiments."""

from __future__ import annotations

import pytest

from repro.experiments import ext_churn, ext_stress


class TestLinkStress:
    @pytest.fixture(scope="class")
    def cells(self):
        return ext_stress.run(
            n_peers=60, n_keys=150, n_lookups=150, ps_values=(0.8,), seed=2
        )

    def test_both_variants_measured(self, cells):
        assert set(cells) == {(0.8, "base"), (0.8, "binned")}
        for cell in cells.values():
            assert cell.summary.total_transmissions > 0
            assert cell.transmissions_per_lookup > 0

    def test_binning_relieves_links_at_high_ps(self, cells):
        base = cells[(0.8, "base")].summary
        binned = cells[(0.8, "binned")].summary
        assert binned.total_transmissions < base.total_transmissions

    def test_main_renders(self):
        out = ext_stress.main(n_peers=50, ps_values=(0.8,))
        assert "hottest link" in out


class TestSustainedChurn:
    def test_harsher_churn_more_failures(self):
        cells = ext_churn.run(
            n_peers=50,
            n_keys=120,
            n_lookups=120,
            lifetimes=(600_000.0, 90_000.0),
            seed=3,
        )
        gentle = cells[600_000.0]
        harsh = cells[90_000.0]
        assert harsh.departures > gentle.departures
        assert harsh.failure_ratio >= gentle.failure_ratio
        # The system keeps functioning under the harsh regime.
        assert harsh.failure_ratio < 0.6

    def test_graceful_only_churn_loses_nothing(self):
        """With crash_probability=0 every departure hands its data over:
        the failure ratio must stay ~zero regardless of churn rate."""
        cells = ext_churn.run(
            n_peers=50,
            n_keys=120,
            n_lookups=120,
            lifetimes=(120_000.0,),
            crash_probability=0.0,
            seed=4,
        )
        assert cells[120_000.0].failure_ratio < 0.05

    def test_main_renders(self):
        out = ext_churn.main(n_peers=40)
        assert "mean lifetime" in out
