"""Unit tests for the dependency-free metrics registry."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    DEFAULT_HOP_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", "help")
        assert fam.labels().value == 0.0
        fam.inc()
        fam.inc(2.5)
        assert fam.labels().value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", "help")
        with pytest.raises(ValueError):
            fam.inc(-1)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("f_total", "help", labelnames=("dir", "type"))
        fam.labels("tx", "Hello").inc(3)
        fam.labels("rx", "Hello").inc(1)
        assert fam.labels("tx", "Hello").value == 3.0
        assert fam.labels("rx", "Hello").value == 1.0
        # Same label values return the cached child.
        assert fam.labels("tx", "Hello") is fam.labels("tx", "Hello")

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        fam = reg.counter("f_total", "help", labelnames=("dir",))
        with pytest.raises(ValueError):
            fam.labels("tx", "extra")
        with pytest.raises(ValueError):
            fam.labels()  # declared with labels: bare access is ambiguous


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "help").labels()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.read() == 13.0

    def test_function_gauge_reads_live(self):
        reg = MetricsRegistry()
        box = {"v": 1.0}
        reg.gauge("g", "help").set_function(lambda: box["v"])
        assert reg.get("g").labels().read() == 1.0
        box["v"] = 7.0
        assert reg.get("g").labels().read() == 7.0


class TestHistogram:
    def test_counts_are_per_bucket_not_cumulative(self):
        h = Histogram((1, 5, 10))
        for v in (0.5, 3, 3, 7, 100):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # <=1, <=5, <=10, +Inf
        assert h.count == 5
        assert h.sum == pytest.approx(113.5)

    def test_cumulative_view(self):
        h = Histogram((1, 5, 10))
        for v in (0.5, 3, 3, 7, 100):
            h.observe(v)
        assert h.cumulative() == [1, 3, 4, 5]

    def test_quantile_interpolates(self):
        h = Histogram((0, 1, 2, 3, 4, 5))
        for hops in (1, 2, 2, 3, 3, 3, 4):
            h.observe(hops)
        q50 = h.quantile(0.5)
        assert 2.0 <= q50 <= 3.0
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(0.99)

    def test_quantile_empty_is_nan(self):
        h = Histogram((1, 2))
        assert math.isnan(h.quantile(0.5))

    def test_quantile_overflow_clamps_to_highest_finite_bound(self):
        h = Histogram((1, 2))
        h.observe(1000)
        assert h.quantile(0.99) == 2.0

    def test_boundary_value_lands_in_le_bucket(self):
        h = Histogram((1, 5))
        h.observe(1)  # le="1" is inclusive, Prometheus-style
        assert h.counts[0] == 1


class TestRegistry:
    def test_idempotent_declaration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", labelnames=("k",))
        b = reg.counter("x_total", "other help ignored", labelnames=("k",))
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "help")
        with pytest.raises(ValueError):
            reg.gauge("x", "help")

    def test_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "help", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x", "help", labelnames=("b",))

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz", "help")
        reg.counter("aaa", "help")
        assert [f.name for f in reg.families()] == ["aaa", "zzz"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c help", labelnames=("k",)).labels("v").inc(2)
        reg.gauge("g", "g help").set(4)
        reg.histogram("h", "h help", buckets=DEFAULT_HOP_BUCKETS).observe(3)
        snap = reg.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["samples"][0] == {
            "labels": {"k": "v"},
            "value": 2.0,
        }
        assert snap["g"]["samples"][0]["value"] == 4.0
        hist = snap["h"]["samples"][0]
        assert hist["count"] == 1
        assert hist["sum"] == 3.0
        assert list(hist["buckets"]) == list(DEFAULT_HOP_BUCKETS)
        assert sum(hist["counts"]) == 1
        # Snapshot must be JSON-able as-is (the /metrics.json contract).
        import json

        json.dumps(snap)
