"""Unit + property tests for ID-space arithmetic (the protocol's core
invariants live here, so this file leans on hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.idspace import ClusteredIdSpace, IdSpace

SPACE = IdSpace(16)  # small space makes edge cases reachable
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestHashing:
    def test_hash_key_deterministic(self):
        s = IdSpace(32)
        assert s.hash_key("abc") == s.hash_key("abc")

    def test_hash_key_in_range(self):
        s = IdSpace(8)
        for key in ("a", "b", "longer-key", ""):
            assert 0 <= s.hash_key(key) < 256

    def test_hash_address_in_range(self):
        s = IdSpace(8)
        assert 0 <= s.hash_address(123456789) < 256

    def test_pinned_hash_value(self):
        # Stability guard: experiments' data placement must not shift
        # between releases.
        assert IdSpace(32).hash_key("pinned") == IdSpace(32).hash_key("pinned")

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(200)


class TestIntervals:
    def test_plain_interval(self):
        assert SPACE.in_interval(5, 1, 10)
        assert not SPACE.in_interval(1, 1, 10)
        assert not SPACE.in_interval(10, 1, 10)
        assert SPACE.in_interval(10, 1, 10, closed_right=True)
        assert SPACE.in_interval(1, 1, 10, closed_left=True)

    def test_wrapping_interval(self):
        hi = SPACE.size - 5
        assert SPACE.in_interval(2, hi, 10)
        assert SPACE.in_interval(hi + 1, hi, 10)
        assert not SPACE.in_interval(100, hi, 10)

    def test_degenerate_interval_is_whole_circle(self):
        # Single-member-ring semantics: (x, x] covers everything else.
        assert SPACE.in_interval(5, 9, 9)
        assert not SPACE.in_interval(9, 9, 9)
        assert SPACE.in_interval(9, 9, 9, closed_right=True)

    @given(x=ids, left=ids, right=ids)
    @settings(max_examples=300)
    def test_interval_partition(self, x, left, right):
        """Every point is in exactly one of (l, r] and (r, l] -- the
        segments of two adjacent ring members partition the circle."""
        if left == right:
            return
        a = SPACE.in_interval(x, left, right, closed_right=True)
        b = SPACE.in_interval(x, right, left, closed_right=True)
        assert a != b

    @given(x=ids, left=ids, right=ids)
    @settings(max_examples=300)
    def test_open_vs_closed_consistency(self, x, left, right):
        open_ = SPACE.in_interval(x, left, right)
        closed = SPACE.in_interval(
            x, left, right, closed_left=True, closed_right=True
        )
        if open_:
            assert closed

    @given(a=ids, b=ids)
    @settings(max_examples=300)
    def test_distance_antisymmetry(self, a, b):
        d1 = SPACE.distance_cw(a, b)
        d2 = SPACE.distance_cw(b, a)
        if a == b:
            assert d1 == d2 == 0
        else:
            assert d1 + d2 == SPACE.size

    @given(a=ids, b=ids)
    @settings(max_examples=300)
    def test_midpoint_lies_in_arc(self, a, b):
        m = SPACE.midpoint_cw(a, b)
        if SPACE.distance_cw(a, b) >= 2:
            assert SPACE.in_interval(m, a, b) or m == a

    @given(pid=ids, k=st.integers(min_value=0, max_value=15))
    @settings(max_examples=200)
    def test_finger_start_distance(self, pid, k):
        start = SPACE.finger_start(pid, k)
        assert SPACE.distance_cw(pid, start) == (1 << k) % SPACE.size

    def test_finger_start_out_of_range(self):
        with pytest.raises(ValueError):
            SPACE.finger_start(0, 16)


class TestOwnerSegments:
    def test_owner_segment_closed_right(self):
        assert SPACE.owner_segment_contains(10, 5, 10)
        assert not SPACE.owner_segment_contains(5, 5, 10)
        assert SPACE.owner_segment_contains(7, 5, 10)

    @given(d=ids, boundaries=st.lists(ids, min_size=2, max_size=8, unique=True))
    @settings(max_examples=200)
    def test_exactly_one_owner(self, d, boundaries):
        """A set of ring members partitions the id space: every d_id has
        exactly one owner."""
        members = sorted(boundaries)
        owners = 0
        for i, pid in enumerate(members):
            pred = members[i - 1]
            if SPACE.owner_segment_contains(d, pred, pid):
                owners += 1
        assert owners == 1


class TestClusteredIdSpace:
    def test_category_keys_share_band(self):
        cs = ClusteredIdSpace(32, 16)
        ids_ = [cs.hash_key(f"music:item-{i}") for i in range(50)]
        bands = {i >> 16 for i in ids_}
        assert len(bands) == 1

    def test_band_matches_anchor(self):
        cs = ClusteredIdSpace(32, 16)
        anchor = cs.category_anchor("music")
        assert anchor >> 16 == cs.hash_key("music:x") >> 16

    def test_different_categories_usually_differ(self):
        cs = ClusteredIdSpace(32, 16)
        assert cs.hash_key("music:a") >> 16 != cs.hash_key("video:a") >> 16

    def test_plain_keys_hash_uniformly(self):
        cs = ClusteredIdSpace(32, 16)
        plain = IdSpace(32)
        assert cs.hash_key("no-category-here") == plain.hash_key("no-category-here")

    def test_band_bits_validation(self):
        with pytest.raises(ValueError):
            ClusteredIdSpace(16, 16)
        with pytest.raises(ValueError):
            ClusteredIdSpace(16, 0)
