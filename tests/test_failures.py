"""Crash detection and recovery tests (Section 3.2.2).

Heartbeats, neighbor timers, subtree rejoin, t-peer replacement
elections at the server, ring repair, and the failure-ratio behaviour
of Fig. 5b.
"""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem
from repro.metrics import MembershipLog

from .conftest import build_system, check_ring, check_trees

HB = dict(heartbeats_enabled=True, lookup_timeout=20_000.0)


def settle(system, ms=30_000.0):
    system.engine.run_until(system.engine.now + ms)


class TestDetection:
    def test_crashed_speer_removed_from_parent(self):
        system = build_system(p_s=0.8, n_peers=30, **HB)
        leaf = next(p for p in system.s_peers() if not p.children)
        cp = system.peers[leaf.cp]
        leaf.crash()
        settle(system, 10_000)
        assert leaf.address not in cp.children

    def test_orphan_rejoins_after_cp_crash(self):
        system = build_system(p_s=0.9, n_peers=40, delta=2, seed=6, **HB)
        interior = next(
            p for p in system.s_peers() if p.children and p.cp != p.t_peer
        )
        log = MembershipLog(system.trace)
        interior.crash()
        settle(system, 20_000)
        check_trees(system)
        assert log.count("crash.detected") >= 1

    def test_detection_latency_bounded_by_timeout(self):
        system = build_system(p_s=0.8, n_peers=20, **HB)
        log = MembershipLog(system.trace)
        victim = system.s_peers()[0]
        t0 = system.engine.now
        victim.crash()
        settle(system, 10_000)
        detections = [r for r in log.of("crash.detected")
                      if r.payload["suspect"] == victim.address]
        assert detections
        # Timeout 3.5s plus one hello period of slack.
        assert all(r.time - t0 < 6_000.0 for r in detections)

    def test_no_false_positives_without_crashes(self):
        system = build_system(p_s=0.7, n_peers=30, **HB)
        log = MembershipLog(system.trace)
        settle(system, 20_000)
        assert log.count("crash.detected") == 0


class TestTPeerReplacement:
    def test_election_promotes_s_child(self):
        system = build_system(p_s=0.7, n_peers=30, seed=9, **HB)
        victim = next(p for p in system.t_peers() if p.children)
        pid = victim.p_id
        t_before = len(system.t_peers())
        log = MembershipLog(system.trace)
        victim.crash()
        settle(system, 30_000)
        assert log.count("t.promotion") == 1
        assert len(system.t_peers()) == t_before  # substitution
        promoted = next(p for p in system.t_peers() if p.p_id == pid)
        assert promoted.address != victim.address
        check_ring(system)
        check_trees(system)

    def test_ring_excised_when_no_replacement_exists(self):
        system = build_system(p_s=0.0, n_peers=10, **HB)
        victim = system.t_peers()[4]
        log = MembershipLog(system.trace)
        victim.crash()
        settle(system, 30_000)
        assert log.count("server.excise") == 1
        check_ring(system)
        assert len(system.ring_order()) == 9

    def test_crashed_tpeer_data_is_lost(self):
        system = build_system(p_s=0.7, n_peers=30, seed=9, **HB)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(90)])
        victim = max(system.t_peers(), key=lambda p: len(p.database))
        lost = len(victim.database)
        total = system.total_items()
        victim.crash()
        settle(system, 30_000)
        assert system.total_items() == total - lost

    def test_multiple_simultaneous_tpeer_crashes(self):
        system = build_system(p_s=0.6, n_peers=40, seed=10, **HB)
        victims = [p for p in system.t_peers() if p.children][:3]
        for v in victims:
            v.crash()
        settle(system, 60_000)
        check_ring(system)
        check_trees(system)

    def test_mixed_crash_storm(self):
        """Crash a fifth of everything at once; system must re-stabilize."""
        system = build_system(p_s=0.7, n_peers=50, seed=11, **HB)
        system.crash_random_fraction(0.2)
        settle(system, 60_000)
        check_ring(system)
        check_trees(system)


class TestFailureRatioUnderCrash:
    def test_failure_tracks_data_loss(self):
        """Fig. 5b: failure ratio ~ fraction of items lost, not more."""
        system = build_system(p_s=0.6, n_peers=60, ttl=6, seed=12, **HB)
        peers = [p.address for p in system.alive_peers()]
        n = 180
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(n)])
        system.crash_random_fraction(0.15)
        settle(system, 40_000)
        surviving = set()
        for p in system.alive_peers():
            surviving.update(i.key for i in p.database)
        lost_fraction = 1 - len(surviving) / n
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 7) % len(alive)], f"k{i}") for i in range(n)])
        stats = system.query_stats()
        assert stats.failure_ratio == pytest.approx(lost_fraction, abs=0.05)

    def test_zero_crash_zero_failures(self):
        system = build_system(p_s=0.6, n_peers=40, ttl=6, **HB)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(80)])
        settle(system, 20_000)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 3) % len(alive)], f"k{i}") for i in range(80)])
        assert system.query_stats().failure_ratio == 0.0


class TestHeartbeatEconomy:
    def test_acks_suppress_hellos(self):
        """Query acknowledgments should replace scheduled HELLOs
        (Section 3.2.2's bandwidth optimisation)."""
        system = build_system(p_s=0.8, n_peers=20, ack_suppress=200.0, **HB)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(40)])

        hellos = {"n": 0}
        acks = {"n": 0}

        def count(record):
            if record.payload.get("kind") == "Hello":
                hellos["n"] += 1
            elif record.payload.get("kind") == "Ack":
                acks["n"] += 1

        system.trace.subscribe("transport.send", count)
        alive = [p.address for p in system.alive_peers()]
        # A heavy continuous query load.
        system.run_lookups(
            [(alive[(i * 3) % len(alive)], f"k{i % 40}") for i in range(200)],
            wave_size=20,
        )
        assert acks["n"] > 0

    def test_heartbeats_disabled_means_no_hello_traffic(self):
        system = build_system(p_s=0.8, n_peers=20)  # heartbeats off
        seen = {"hello": 0}
        system.trace.subscribe(
            "transport.send",
            lambda r: seen.__setitem__(
                "hello", seen["hello"] + (r.payload.get("kind") == "Hello")
            ),
        )
        settle(system, 10_000)
        assert seen["hello"] == 0


class TestAckSuppressBoundary:
    """The suppress timer at its *exact* expiry instant.

    ``note_query_activity`` compares ``engine.now >= ack_suppress_until``
    -- the boundary is inclusive, so a query landing at precisely the
    expiry tick must behave like an unsuppressed one: acknowledgment
    sent, neighbor timer reset, and the next scheduled HELLO to that
    neighbor deferred.
    """

    def test_query_at_exact_expiry_acks_resets_and_defers(self):
        system = build_system(p_s=0.0, n_peers=8, ack_suppress=500.0, **HB)
        a = system.t_peers()[0]
        b = a.successor
        sent = {"acks": 0}
        system.trace.subscribe(
            "transport.send",
            lambda r: sent.__setitem__(
                "acks", sent["acks"] + (r.payload.get("kind") == "Ack")
            ),
        )

        # First query opens the suppress window.
        a.note_query_activity(b, query_id=1)
        assert sent["acks"] == 1
        opened_until = a.ack_suppress_until
        assert opened_until == system.engine.now + 500.0

        # Strictly inside the window: suppressed.
        a.note_query_activity(b, query_id=2)
        assert sent["acks"] == 1

        # Land the clock at exactly the expiry instant.
        system.engine.run_until(opened_until)
        assert system.engine.now == opened_until
        timer = a.neighbor_timers[b]
        acks_before = sent["acks"]

        a.note_query_activity(b, query_id=3)

        # Boundary is inclusive: the acknowledgment goes out ...
        assert sent["acks"] == acks_before + 1
        # ... a fresh window opens from the expiry instant ...
        assert a.ack_suppress_until == opened_until + 500.0
        # ... the neighbor timer restarts its full countdown from now ...
        assert timer.running
        assert timer.deadline == system.engine.now + a.config.neighbor_timeout
        # ... and the ack stands in for b's next scheduled HELLO.
        assert a._last_liveness_sent[b] == system.engine.now
        targets = []
        original = a.send_many
        a.send_many = lambda addrs, msg: (targets.extend(addrs), original(addrs, msg))
        try:
            a._send_hellos()
        finally:
            a.send_many = original
        assert b not in targets

    def test_query_one_tick_before_expiry_stays_suppressed(self):
        system = build_system(p_s=0.0, n_peers=8, ack_suppress=500.0, **HB)
        a = system.t_peers()[0]
        b = a.successor
        sent = {"acks": 0}
        system.trace.subscribe(
            "transport.send",
            lambda r: sent.__setitem__(
                "acks", sent["acks"] + (r.payload.get("kind") == "Ack")
            ),
        )
        a.note_query_activity(b, query_id=1)
        assert sent["acks"] == 1
        until = a.ack_suppress_until
        system.engine.run_until(until - 1e-6)
        a.note_query_activity(b, query_id=2)
        assert sent["acks"] == 1  # still inside the window
        assert a.ack_suppress_until == until  # window not re-opened
