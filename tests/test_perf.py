"""Tests for the perf instrumentation (repro.perf)."""

from __future__ import annotations

import io

from repro.overlay.idspace import IdSpace
from repro.overlay.messages import Hello
from repro.overlay.peer import BasePeer
from repro.overlay.transport import Transport
from repro.perf import PROFILE_ENV, PerfReport, maybe_profile, measure, profiling_enabled
from repro.sim import Engine


class SinkPeer(BasePeer):
    def on_Hello(self, msg: Hello) -> None:
        pass


def _wired():
    engine = Engine()
    transport = Transport(engine)
    a = SinkPeer(1, 0, engine, transport, IdSpace(bits=16))
    b = SinkPeer(2, 0, engine, transport, IdSpace(bits=16))
    transport.register(a)
    transport.register(b)
    return engine, transport, a, b


class TestMeasure:
    def test_counters_are_deltas(self):
        engine, transport, a, b = _wired()
        a.send(2, Hello())
        engine.run()  # pre-existing traffic must not leak into the report
        with measure(engine, transport) as report:
            for _ in range(5):
                a.send(2, Hello())
            engine.run()
        assert report.events_executed == 5
        assert report.messages_sent == 5
        assert report.messages_delivered == 5
        assert report.messages_dropped == 0
        assert report.wall_seconds > 0.0
        assert report.events_per_second > 0.0

    def test_type_counts_enabled_for_block_only(self):
        engine, transport, a, b = _wired()
        with measure(engine, transport, count_types=True) as report:
            a.send(2, Hello())
            a.send_many([2], Hello())
            engine.run()
        assert report.message_type_counts == {"Hello": 2}
        a.send(2, Hello())  # after the block: accounting switched off again
        assert transport.message_type_counts.get("Hello") == 2

    def test_as_dict_is_json_ready(self):
        report = PerfReport(wall_seconds=2.0, events_executed=10)
        d = report.as_dict()
        assert d["events_per_second"] == 5.0
        assert d["message_type_counts"] == {}

    def test_zero_wall_guard(self):
        assert PerfReport().events_per_second == 0.0


class TestMaybeProfile:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()
        with maybe_profile() as profiler:
            assert profiler is None

    def test_enabled_prints_stats(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled()
        out = io.StringIO()
        with maybe_profile(limit=5, stream=out) as profiler:
            assert profiler is not None
            sum(range(1000))
        assert "function calls" in out.getvalue()
