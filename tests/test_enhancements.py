"""Section 5 enhancement tests: link heterogeneity (5.1), landmark
binning (5.2), interest-based s-networks (5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridConfig, HybridSystem
from repro.enhance import assign_roles, choose_landmarks, coordinate_of, link_usage, prefix_similarity
from repro.net import Router, TransitStubConfig, generate_transit_stub
from repro.workloads import interest_sharing

from .conftest import build_system, check_trees


class TestRoleAssignment:
    def test_exact_split(self, rng):
        roles = assign_roles([1.0] * 100, 0.7, rng, heterogeneity_aware=False)
        assert roles.count("t") == 30
        assert roles.count("s") == 70

    def test_at_least_one_tpeer(self, rng):
        roles = assign_roles([1.0] * 10, 1.0, rng, heterogeneity_aware=False)
        assert roles.count("t") == 1

    def test_hetero_gives_t_to_fastest(self, rng):
        caps = [1.0] * 50 + [10.0] * 50
        roles = assign_roles(caps, 0.5, rng, heterogeneity_aware=True)
        fast_roles = roles[50:]
        assert fast_roles.count("t") == 50  # every fast peer is a t-peer

    def test_random_assignment_mixes(self, rng):
        caps = [1.0] * 50 + [10.0] * 50
        roles = assign_roles(caps, 0.5, rng, heterogeneity_aware=False)
        assert 0 < roles[50:].count("t") < 50

    def test_empty_population(self, rng):
        assert assign_roles([], 0.5, rng, True) == []

    def test_link_usage_metric(self):
        assert link_usage(4, 2.0) == 2.0
        with pytest.raises(ValueError):
            link_usage(1, 0.0)


class TestHeterogeneitySystem:
    def test_tpeers_are_fast_when_aware(self):
        system = build_system(p_s=0.7, n_peers=60, heterogeneity_aware=True)
        t_caps = [p.capacity for p in system.t_peers()]
        s_caps = [p.capacity for p in system.s_peers()]
        assert min(t_caps) >= max(
            c for c in s_caps if c <= min(t_caps)
        ) or np.mean(t_caps) > np.mean(s_caps)

    def test_awareness_lowers_latency(self):
        """Fig. 6a's claim at a small scale: heterogeneity-aware role
        assignment shortens mean lookup latency."""

        def latency(aware: bool) -> float:
            system = build_system(
                p_s=0.7, n_peers=60, seed=21,
                heterogeneity_aware=aware,
                connect_policy="link_usage" if aware else "degree",
            )
            peers = [p.address for p in system.alive_peers()]
            system.populate(
                [(peers[i % len(peers)], f"k{i}", i) for i in range(150)]
            )
            alive = [p.address for p in system.alive_peers()]
            system.run_lookups(
                [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(150)]
            )
            stats = system.query_stats()
            assert stats.failure_ratio == 0.0
            return stats.mean_latency

        assert latency(True) < latency(False)


class TestBinning:
    @pytest.fixture
    def router(self, rng):
        topo = generate_transit_stub(TransitStubConfig(), rng)
        return Router(topo)

    def test_landmarks_are_spread(self, router, rng):
        landmarks = choose_landmarks(router, 6, rng)
        assert len(set(landmarks)) == 6
        # No two landmarks should be near-coincident.
        for i, a in enumerate(landmarks):
            for b in landmarks[i + 1:]:
                assert router.latency(a, b) > 0

    def test_coordinate_is_permutation(self, router, rng):
        landmarks = choose_landmarks(router, 5, rng)
        coord = coordinate_of(router, 3, landmarks)
        assert sorted(coord) == list(range(5))

    def test_same_stub_domain_same_coordinate(self, router, rng):
        """Physically adjacent hosts should bin together -- the property
        the whole enhancement rests on."""
        topo = router.topology
        landmarks = choose_landmarks(router, 4, rng)
        by_domain = {}
        for node in topo.stub_nodes:
            by_domain.setdefault(topo.domain[node], []).append(node)
        domain_nodes = next(v for v in by_domain.values() if len(v) >= 3)
        coords = [coordinate_of(router, n, landmarks) for n in domain_nodes[:3]]
        sims = [
            prefix_similarity(coords[0], c) for c in coords[1:]
        ]
        assert all(s >= 1 for s in sims)

    def test_prefix_similarity(self):
        assert prefix_similarity((1, 2, 3), (1, 2, 4)) == 2
        assert prefix_similarity((0,), (1,)) == 0
        assert prefix_similarity((1, 2), (1, 2)) == 2

    def test_invalid_landmark_count(self, router, rng):
        with pytest.raises(ValueError):
            choose_landmarks(router, 0, rng)

    def test_binned_system_clusters_snetworks(self):
        """Under binned assignment, s-peers should be physically closer
        to their t-peer than under balanced assignment."""

        def mean_anchor_distance(assignment: str, n_landmarks: int) -> float:
            system = build_system(
                p_s=0.8, n_peers=60, seed=17,
                assignment=assignment, n_landmarks=n_landmarks,
            )
            total, count = 0.0, 0
            peers = {p.address: p for p in system.alive_peers()}
            for p in system.s_peers():
                anchor = peers[p.t_peer]
                total += system.router.latency(p.host, anchor.host)
                count += 1
            return total / count

        binned = mean_anchor_distance("binned", 8)
        balanced = mean_anchor_distance("balanced", 0)
        assert binned < balanced


class TestInterest:
    def test_interest_scenario_keeps_lookups_local(self):
        from repro.core import HybridConfig

        result = interest_sharing(
            HybridConfig(p_s=0.8, ttl=8),
            n_peers=60,
            categories=["music", "video", "books"],
            keys_per_category=40,
            n_lookups=150,
            seed=19,
            locality=0.9,
        )
        assert result.stats.failure_ratio < 0.05
        # Most lookups should have been local to the origin's s-network.
        assert result.stats.local_fraction > 0.4

    def test_interest_data_lands_in_interest_network(self):
        result = interest_sharing(
            HybridConfig(p_s=0.8, ttl=8),
            n_peers=60,
            categories=["music", "video"],
            keys_per_category=30,
            n_lookups=30,
            seed=23,
            locality=1.0,
        )
        system = result.system
        anchors = dict(system.server.interest_map)
        peers = {p.address: p for p in system.alive_peers()}
        misplaced = 0
        total = 0
        for p in system.alive_peers():
            for item in p.database:
                cat = item.key.partition(":")[0]
                if cat not in anchors:
                    continue
                total += 1
                anchor_addr = anchors[cat]
                holder_anchor = p.address if p.role == "t" else p.t_peer
                if holder_anchor != anchor_addr:
                    misplaced += 1
        assert total > 0
        # Category bands may straddle one segment boundary; the vast
        # majority must land in the category's own s-network.
        assert misplaced / total < 0.2
