"""Sharded execution must be bit-identical to single-process execution.

The whole admissibility argument of :mod:`repro.shard` is the one the
golden determinism test makes for the engine rewrite: a cell run over
N worker shards under conservative (null-message) synchronization is
*the same computation* -- same event order per peer, same floating-point
arithmetic, same metric bundle -- as the single-process run.  These
tests compare full :class:`CellResult` values with ``==`` (exact float
equality) across shard counts, backends, and configurations, and pin
down the :class:`NullMessageSync` window logic the guarantee rests on.
"""

from __future__ import annotations

import logging
import os

import pytest

from repro.core.hybrid import HybridConfig
from repro.exec.pool import CellExecutionError
from repro.experiments.common import Scale, run_cell
from repro.shard import (
    NullMessageSync,
    ShardWorker,
    check_shardable,
    resolve_shards,
    run_cell_sharded,
)
from repro.shard.ipc import RING_BYTES_ENV


@pytest.fixture(scope="module")
def quick_single():
    """The single-process reference result at Scale.quick()."""
    return run_cell(HybridConfig(p_s=0.3), Scale.quick())


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_fork_matches_single_process(self, quick_single, shards):
        sharded = run_cell(
            HybridConfig(p_s=0.3), Scale.quick(), shards=shards
        )
        assert sharded == quick_single

    def test_inline_backend_matches(self, quick_single):
        sharded = run_cell_sharded(
            HybridConfig(p_s=0.3), Scale.quick(), shards=2, mode="inline"
        )
        assert sharded == quick_single

    def test_crash_cell_matches(self):
        config = HybridConfig(p_s=0.5)
        single = run_cell(config, Scale.quick(), crash_fraction=0.3)
        sharded = run_cell(
            config, Scale.quick(), crash_fraction=0.3, shards=2
        )
        assert sharded == single

    def test_enhancements_cell_matches(self):
        config = HybridConfig(
            p_s=0.6, bypass_links=True, cache_enabled=True,
        )
        single = run_cell(config, Scale.quick())
        sharded = run_cell(config, Scale.quick(), shards=3)
        assert sharded == single

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_shm_backend_matches_single_process(self, quick_single, shards):
        info = {}
        sharded = run_cell_sharded(
            HybridConfig(p_s=0.3), Scale.quick(), shards=shards,
            backend="shm", info_out=info,
        )
        assert sharded == quick_single
        # In fork mode the transport really was the shm rings; inline
        # (fork-less platforms) is still bit-identical, just not shm.
        if info["mode"] == "fork":
            assert info["backend"] == "shm"
            assert info["ipc"]["data_frames"] > 0
            assert info["ipc"]["pickled_fallbacks"] == 0

    def test_shm_crash_cell_matches(self):
        config = HybridConfig(p_s=0.5)
        single = run_cell(config, Scale.quick(), crash_fraction=0.3)
        sharded = run_cell_sharded(
            config, Scale.quick(), crash_fraction=0.3, shards=2,
            backend="shm",
        )
        assert sharded == single

    def test_shm_enhancements_cell_matches(self):
        config = HybridConfig(
            p_s=0.6, bypass_links=True, cache_enabled=True,
        )
        single = run_cell(config, Scale.quick())
        sharded = run_cell_sharded(
            config, Scale.quick(), shards=3, backend="shm"
        )
        assert sharded == single

    def test_shm_spill_path_matches(self, quick_single, monkeypatch):
        # Shrink the data rings until windows overflow into the control
        # path: the spilled frames must reorder into the exact same
        # (time, origin, seq) delivery schedule.
        monkeypatch.setenv(RING_BYTES_ENV, "512")
        info = {}
        sharded = run_cell_sharded(
            HybridConfig(p_s=0.3), Scale.quick(), shards=2,
            backend="shm", info_out=info,
        )
        assert sharded == quick_single
        if info["mode"] == "fork":
            assert info["ipc"]["spilled_frames"] > 0

    def test_diagnostics_reported(self, quick_single):
        info = {}
        sharded = run_cell_sharded(
            HybridConfig(p_s=0.3), Scale.quick(), shards=2, info_out=info
        )
        assert sharded == quick_single
        assert info["shards"] == 2
        assert info["lookahead_ms"] > 0.0
        assert info["waves"] == -(-Scale.quick().n_lookups // Scale.quick().wave_size)
        # Every shard owns a non-trivial share of the population.
        assert len(info["shard_loads"]) == 2
        assert all(peers > 0 for peers, _items in info["shard_loads"])
        assert info["events_total"] > info["build_events"]


class TestCheckShardable:
    def test_default_config_accepted(self):
        check_shardable(HybridConfig(p_s=0.3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replication_factor": 2},
            {"heartbeats_enabled": True},
            {"search_mode": "walk"},
            {"snetwork_style": "bittorrent"},
        ],
    )
    def test_unsupported_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            check_shardable(HybridConfig(p_s=0.3, **kwargs))

    def test_run_cell_falls_back_for_unshardable_config(self):
        # Sweep-wide --shards / REPRO_SHARDS must not break cells the
        # sharded substrate rejects (e.g. fig5's heartbeat cells):
        # run_cell silently runs them single-process instead.
        config = HybridConfig(p_s=0.3, heartbeats_enabled=True)
        single = run_cell(config, Scale.quick())
        fallback = run_cell(config, Scale.quick(), shards=2)
        assert fallback == single

    def test_run_cell_sharded_rejects_early(self):
        with pytest.raises(ValueError):
            run_cell_sharded(
                HybridConfig(p_s=0.3, replication_factor=2),
                Scale.quick(),
                shards=2,
            )

    def test_fallback_warning_names_offending_fields(self, caplog):
        config = HybridConfig(p_s=0.3, heartbeats_enabled=True)
        with caplog.at_level(logging.WARNING, logger="repro.shard"):
            run_cell(config, Scale.quick(), shards=2)
        assert any(
            "heartbeats_enabled" in r.getMessage()
            and "falling back" in r.getMessage()
            for r in caplog.records
        )

    def test_strict_flag_forbids_fallback(self):
        config = HybridConfig(p_s=0.3, heartbeats_enabled=True)
        with pytest.raises(ValueError, match="heartbeats_enabled"):
            run_cell(config, Scale.quick(), shards=2, shards_strict=True)

    def test_strict_env_forbids_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS_STRICT", "1")
        config = HybridConfig(p_s=0.3, search_mode="walk")
        with pytest.raises(ValueError, match="walk"):
            run_cell(config, Scale.quick(), shards=2)

    def test_explicit_false_overrides_strict_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS_STRICT", "1")
        config = HybridConfig(p_s=0.3, heartbeats_enabled=True)
        single = run_cell(config, Scale.quick())
        assert run_cell(
            config, Scale.quick(), shards=2, shards_strict=False
        ) == single


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
class TestWorkerDeath:
    """A dying shard process must fail the cell loudly, naming the shard."""

    @pytest.fixture(autouse=True)
    def _kill_shard_one(self, monkeypatch):
        original = ShardWorker.issue

        def dying_issue(self, *args, **kwargs):
            if self.shard_index == 1:
                os._exit(42)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ShardWorker, "issue", dying_issue)

    @pytest.mark.parametrize("backend", ["pipe", "shm"])
    def test_dead_worker_raises_with_shard_named(self, backend):
        with pytest.raises(CellExecutionError, match="shard 1"):
            run_cell_sharded(
                HybridConfig(p_s=0.3), Scale.quick(), shards=2,
                mode="fork", backend=backend,
            )


class TestResolveShards:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert resolve_shards(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(None) == 4

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_shards(0)


class TestNullMessageSync:
    """The conservative-sync floor/window logic, in isolation."""

    def test_floor_is_min_over_shards(self):
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, 100.0)
        sync.note_state(1, 40.0)
        assert sync.floor() == 40.0
        assert sync.window_end() == 45.0

    def test_idle_shard_does_not_deadlock(self):
        # A shard with no local events must not drag the floor to
        # None/infinity: the other shard's clock defines progress.
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, 100.0)
        sync.note_state(1, None)
        assert sync.floor() == 100.0
        assert sync.window_end() == 105.0

    def test_all_idle_with_no_messages_is_terminal(self):
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, None)
        sync.note_state(1, None)
        assert sync.floor() is None
        assert sync.window_end() is None

    def test_pending_message_bounds_floor(self):
        # An in-flight cross-shard message is a future event of its
        # destination: the floor may not pass its delivery time.
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, None)
        sync.note_state(1, None)
        sync.add_messages(0, [(30.0, 1, 7, object())])
        assert sync.floor() == 30.0
        assert sync.window_end() == 35.0
        assert sync.in_flight == 1

    def test_floor_jumps_over_empty_time(self):
        # Nothing scheduled between 10 and 5000 (e.g. everyone waiting
        # on a lookup timeout): the next window must start at 5000, not
        # crawl there lookahead by lookahead.
        sync = NullMessageSync(2, lookahead=2.0)
        sync.note_state(0, 5000.0)
        sync.note_state(1, 6000.0)
        assert sync.window_end() == 5002.0

    def test_inbox_sorted_and_drained(self):
        sync = NullMessageSync(2, lookahead=5.0)
        m1, m2, m3 = object(), object(), object()
        sync.add_messages(0, [(20.0, 1, 9, m2), (10.0, 1, 3, m1)])
        sync.add_messages(1, [(20.0, 0, 5, m3)])
        inbox = sync.take_inbox(1)
        assert [t for t, _dst, _m in inbox] == [10.0, 20.0]
        assert [m for _t, _dst, m in inbox] == [m1, m2]
        assert sync.take_inbox(1) == []  # drained
        assert sync.take_inbox(0) == [(20.0, 5, m3)]

    def test_delivery_ties_ordered_by_origin_then_sequence(self):
        # Equal-timestamp deliveries must replay in one deterministic
        # order no matter which shard reported first.
        sync = NullMessageSync(3, lookahead=1.0)
        a, b, c = object(), object(), object()
        sync.add_messages(2, [(50.0, 0, 1, c)])
        sync.add_messages(1, [(50.0, 0, 1, a), (50.0, 0, 2, b)])
        inbox = sync.take_inbox(0)
        assert [m for _t, _dst, m in inbox] == [a, b, c]
