"""Tests for the Section 4 closed-form models (Fig. 3 shapes)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    failure_ratio_model,
    fig3a_join_latency,
    fig3b_lookup_latency,
    join_latency,
    local_hit_probability,
    lookup_latency,
    mean_snetwork_size,
    out_of_range_peers,
    speer_join_hops,
    tpeer_join_hops,
)


class TestBuildingBlocks:
    def test_mean_snetwork_size(self):
        assert mean_snetwork_size(0.5) == pytest.approx(1.0)
        assert mean_snetwork_size(0.75) == pytest.approx(3.0)
        assert mean_snetwork_size(0.0) == 0.0
        assert math.isinf(mean_snetwork_size(1.0))

    def test_local_hit_probability(self):
        p = local_hit_probability(0.5, 1000)
        assert p == pytest.approx(1.0 / 1000)
        assert local_hit_probability(1.0, 1000) == 1.0
        assert local_hit_probability(0.0, 1000) == 0.0

    def test_tpeer_join_hops_shrinks_with_ps(self):
        assert tpeer_join_hops(0.0, 1000) > tpeer_join_hops(0.5, 1000)
        assert tpeer_join_hops(0.999, 1000) == 0.0  # clamp

    def test_speer_join_hops_grows_with_ps(self):
        assert speer_join_hops(0.9, 3) > speer_join_hops(0.6, 3)
        assert speer_join_hops(0.4, 3) == 0.0  # s-networks of size < 1

    def test_speer_join_hops_shrinks_with_delta(self):
        assert speer_join_hops(0.9, 5) < speer_join_hops(0.9, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            join_latency(-0.1, 1000, 3)
        with pytest.raises(ValueError):
            join_latency(0.5, 0, 3)
        with pytest.raises(ValueError):
            out_of_range_peers(0.5, 1, 2)
        with pytest.raises(ValueError):
            out_of_range_peers(0.5, 3, 0)


class TestEquation1:
    """Fig. 3a shapes."""

    def test_u_shape_with_interior_minimum(self):
        grid = np.linspace(0.01, 0.99, 99)
        hops = [join_latency(ps, 1000, 3) for ps in grid]
        i = int(np.argmin(hops))
        assert 0 < i < len(grid) - 1
        # Paper: "the join latency is minimized when p_s ranges from
        # 0.7 to 0.8" (delta-dependent; allow the analytic optimum band).
        assert 0.6 <= grid[i] <= 0.9

    def test_larger_delta_lower_curve(self):
        for ps in (0.6, 0.7, 0.8, 0.9):
            assert join_latency(ps, 1000, 5) <= join_latency(ps, 1000, 2)

    def test_hybrid_beats_pure_structured(self):
        pure = join_latency(0.01, 1000, 3)
        hybrid = join_latency(0.75, 1000, 3)
        assert hybrid < pure


class TestEquation2:
    """Out-of-range count and the failure-ratio model (Fig. 5a shapes)."""

    def test_increases_with_ps(self):
        assert out_of_range_peers(0.99, 2, 2) > out_of_range_peers(0.9, 2, 2)

    def test_decreases_with_ttl(self):
        assert out_of_range_peers(0.99, 2, 4) <= out_of_range_peers(0.99, 2, 1)

    def test_clamped_at_zero(self):
        assert out_of_range_peers(0.5, 3, 4) == 0.0

    def test_failure_ratio_bounds(self):
        for ps in (0.0, 0.5, 0.9, 0.99):
            r = failure_ratio_model(ps, 3, 2)
            assert 0.0 <= r <= 1.0

    def test_failure_ratio_zero_below_half(self):
        assert failure_ratio_model(0.4, 3, 1) == 0.0


class TestLookupLatency:
    """Fig. 3b shapes."""

    def test_flat_below_half(self):
        a = lookup_latency(0.2, 1000, 4, 2)
        b = lookup_latency(0.2, 1000, 4, 5)
        assert a == pytest.approx(b)

    def test_delta_matters_above_half(self):
        assert lookup_latency(0.9, 1000, 4, 5) < lookup_latency(0.9, 1000, 4, 2)

    def test_decreasing_in_ps(self):
        grid = [0.1, 0.3, 0.5, 0.7, 0.9]
        values = [lookup_latency(ps, 1000, 4, 3) for ps in grid]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_star_variant(self):
        v = lookup_latency(0.5, 1000, 4, None)
        assert v > 0


class TestCurves:
    def test_fig3a_curves_cover_deltas(self):
        curves = fig3a_join_latency(points=50)
        assert set(curves) == {2, 3, 4, 5}
        for c in curves.values():
            assert len(c.p_s) == 50 == len(c.hops)

    def test_fig3a_optima_in_paper_band(self):
        curves = fig3a_join_latency(points=99)
        for delta, curve in curves.items():
            ps_star, _ = curve.argmin()
            assert 0.6 <= ps_star <= 0.9

    def test_fig3b_monotone_decreasing(self):
        curves = fig3b_lookup_latency(points=50)
        for c in curves.values():
            assert c.hops[0] >= c.hops[-1]
