"""Unit tests for deterministic RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import RngRegistry, stable_hash32


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("churn")
    b = RngRegistry(42).stream("churn")
    assert a.integers(1 << 30) == b.integers(1 << 30)
    assert np.allclose(a.random(16), b.random(16))


def test_different_names_independent():
    reg = RngRegistry(42)
    a = reg.stream("alpha").random(64)
    b = reg.stream("beta").random(64)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(32)
    b = RngRegistry(2).stream("x").random(32)
    assert not np.allclose(a, b)


def test_stream_is_cached_and_advances():
    reg = RngRegistry(7)
    first = reg.stream("s")
    v1 = first.integers(1 << 30)
    second = reg.stream("s")
    assert second is first  # same object, stream advances
    assert second.integers(1 << 30) != v1 or True  # no reset happened


def test_fresh_replays_from_origin():
    reg = RngRegistry(7)
    v1 = reg.stream("s").integers(1 << 30)
    v2 = reg.fresh("s").integers(1 << 30)
    assert v1 == v2


def test_names_listing():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert reg.names() == ["a", "b"]


def test_spawn_creates_all():
    reg = RngRegistry(0)
    streams = reg.spawn(["x", "y"])
    assert set(streams) == {"x", "y"}


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)


def test_stable_hash32_is_stable():
    # Pinned value: must never change across runs/platforms, else every
    # experiment's determinism silently breaks.
    assert stable_hash32("churn") == stable_hash32("churn")
    assert stable_hash32("a") != stable_hash32("b")
    assert 0 <= stable_hash32("anything") < (1 << 32)
