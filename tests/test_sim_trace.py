"""Unit tests for the trace bus."""

from __future__ import annotations

import pytest

from repro.sim import TraceBus, TraceRecord


def test_inactive_bus_drops_records():
    bus = TraceBus()
    bus.publish(1.0, "x", a=1)
    assert bus.emitted == 0  # publish short-circuits with no listeners


def test_category_subscription():
    bus = TraceBus()
    got = []
    bus.subscribe("join", got.append)
    bus.publish(1.0, "join", peer=3)
    bus.publish(2.0, "leave", peer=4)
    assert len(got) == 1
    assert got[0] == TraceRecord(1.0, "join", {"peer": 3})


def test_wildcard_subscription():
    bus = TraceBus()
    got = []
    bus.subscribe("*", got.append)
    bus.publish(1.0, "a")
    bus.publish(2.0, "b")
    assert [r.category for r in got] == ["a", "b"]


def test_unsubscribe():
    bus = TraceBus()
    got = []
    bus.subscribe("a", got.append)
    bus.unsubscribe("a", got.append)
    bus.publish(1.0, "a")
    assert got == []
    with pytest.raises(ValueError):
        bus.unsubscribe("a", got.append)


def test_recording_buffer():
    bus = TraceBus()
    bus.start_recording()
    bus.publish(1.0, "a", k=1)
    bus.publish(2.0, "b")
    records = bus.stop_recording()
    assert [r.category for r in records] == ["a", "b"]
    # After stop, publishing with no listeners is inert again.
    bus.publish(3.0, "c")
    assert bus.records == []


def test_recording_with_category_filter():
    bus = TraceBus()
    bus.start_recording(categories=["keep"])
    bus.publish(1.0, "keep")
    bus.publish(2.0, "drop")
    assert [r.category for r in bus.stop_recording()] == ["keep"]


def test_multiple_subscribers_same_category():
    bus = TraceBus()
    a, b = [], []
    bus.subscribe("x", a.append)
    bus.subscribe("x", b.append)
    bus.publish(1.0, "x")
    assert len(a) == len(b) == 1
