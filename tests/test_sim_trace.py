"""Unit tests for the trace bus."""

from __future__ import annotations

import pytest

from repro.sim import TraceBus, TraceRecord


def test_inactive_bus_drops_records():
    bus = TraceBus()
    bus.publish(1.0, "x", a=1)
    assert bus.emitted == 0  # publish short-circuits with no listeners


def test_category_subscription():
    bus = TraceBus()
    got = []
    bus.subscribe("join", got.append)
    bus.publish(1.0, "join", peer=3)
    bus.publish(2.0, "leave", peer=4)
    assert len(got) == 1
    assert got[0] == TraceRecord(1.0, "join", {"peer": 3})


def test_wildcard_subscription():
    bus = TraceBus()
    got = []
    bus.subscribe("*", got.append)
    bus.publish(1.0, "a")
    bus.publish(2.0, "b")
    assert [r.category for r in got] == ["a", "b"]


def test_unsubscribe():
    bus = TraceBus()
    got = []
    bus.subscribe("a", got.append)
    bus.unsubscribe("a", got.append)
    bus.publish(1.0, "a")
    assert got == []
    with pytest.raises(ValueError):
        bus.unsubscribe("a", got.append)


def test_recording_buffer():
    bus = TraceBus()
    bus.start_recording()
    bus.publish(1.0, "a", k=1)
    bus.publish(2.0, "b")
    records = bus.stop_recording()
    assert [r.category for r in records] == ["a", "b"]
    # After stop, publishing with no listeners is inert again.
    bus.publish(3.0, "c")
    assert bus.records == []


def test_recording_with_category_filter():
    bus = TraceBus()
    bus.start_recording(categories=["keep"])
    bus.publish(1.0, "keep")
    bus.publish(2.0, "drop")
    assert [r.category for r in bus.stop_recording()] == ["keep"]


def test_multiple_subscribers_same_category():
    bus = TraceBus()
    a, b = [], []
    bus.subscribe("x", a.append)
    bus.subscribe("x", b.append)
    bus.publish(1.0, "x")
    assert len(a) == len(b) == 1


# ----------------------------------------------------------------------
# Edge paths: listener churn during publish, wants()/version caching
# ----------------------------------------------------------------------
def test_subscriber_can_unsubscribe_itself_during_publish():
    bus = TraceBus()
    got = []

    def once(rec):
        got.append(rec)
        bus.unsubscribe("x", once)

    bus.subscribe("x", once)
    bus.publish(1.0, "x")
    bus.publish(2.0, "x")
    assert len(got) == 1


def test_unsubscribe_during_publish_does_not_skip_later_subscribers():
    bus = TraceBus()
    got_a, got_b = [], []

    def a(rec):
        got_a.append(rec)
        bus.unsubscribe("x", a)

    bus.subscribe("x", a)
    bus.subscribe("x", got_b.append)
    # ``a`` removes itself mid-publish; with naive list iteration the
    # removal would shift ``b`` into the consumed slot and drop it.
    bus.publish(1.0, "x")
    assert len(got_a) == 1
    assert len(got_b) == 1


def test_wildcard_unsubscribe_during_publish_is_safe():
    bus = TraceBus()
    got = []

    def once(rec):
        got.append(rec)
        bus.unsubscribe("*", once)

    bus.subscribe("*", once)
    bus.subscribe("*", got.append)
    bus.publish(1.0, "anything")
    assert len(got) == 2  # both saw the record that triggered removal


def test_active_false_after_last_subscriber_leaves():
    bus = TraceBus()
    fn = lambda rec: None
    bus.subscribe("x", fn)
    assert bus.active and bus.wants("x")
    bus.unsubscribe("x", fn)
    assert not bus.active
    assert not bus.wants("x")
    bus.publish(1.0, "x")
    assert bus.emitted == 0  # back on the no-listener fast path


def test_version_bumps_on_every_listener_change():
    bus = TraceBus()
    fn = lambda rec: None
    v0 = bus.version
    bus.subscribe("x", fn)
    v1 = bus.version
    bus.unsubscribe("x", fn)
    v2 = bus.version
    bus.start_recording()
    v3 = bus.version
    bus.stop_recording()
    v4 = bus.version
    assert v0 < v1 < v2 < v3 < v4


def test_wants_is_per_category_but_recording_is_conservative():
    bus = TraceBus()
    bus.subscribe("a", lambda rec: None)
    assert bus.wants("a")
    assert not bus.wants("b")
    # A category-filtered recording still makes every category wanted:
    # wants() answers "could publishing cost anything", and the filter
    # is applied inside publish, not at the wants() gate.
    bus.start_recording(categories=["a"])
    assert bus.wants("b")
    bus.stop_recording()
    assert not bus.wants("b")


def test_filtered_recording_with_live_subscribers():
    bus = TraceBus()
    got = []
    bus.subscribe("drop", got.append)
    bus.start_recording(categories=["keep"])
    bus.publish(1.0, "keep")
    bus.publish(2.0, "drop")
    # The buffer honours the filter; the subscriber still gets its
    # category even though the recorder ignores it.
    assert [r.category for r in bus.stop_recording()] == ["keep"]
    assert [r.category for r in got] == ["drop"]
