"""Live failover: zero lost acknowledged writes across a t-peer crash.

The ISSUE's acceptance scenario, in-process: a real localnet at
``replication_factor=3, write_quorum=2``, a batch of quorum-acknowledged
puts, then an abrupt stop (no departure handshake -- the socket just
goes dead) of a t-peer that owns some of those keys.  Crash detection
must notice, the ring must repair, a successor must start serving the
crashed segment from its replica store, and **every** key the client
was told ``ok=True`` for must still be readable.  The promoted/absorbing
daemon's ``repro_failover_total`` must tick.

Slow by nature (real sockets, real heartbeat timers); marked ``live``
like the other runtime integration tests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import ClientConnection, ClientGet, ClientPut, LocalNet
from repro.runtime.localnet import fast_config

REPLICATED = dict(
    replication_factor=3,
    write_quorum=2,
    replica_ack_timeout=500.0,
    replica_write_retries=1,
    replica_sync_period=500.0,
    heartbeats_enabled=True,
)


def _failover_total(net: LocalNet) -> float:
    total = 0.0
    for snapshot in net.metrics_snapshots().values():
        fam = snapshot.get("repro_failover_total")
        if fam:
            total += sum(s.get("value", 0.0) for s in fam.get("samples", ()))
    return total


async def _get_with_grace(
    conn: ClientConnection, key: str, deadline: float
) -> object:
    """Read ``key``, re-asking while the failover window is still open."""
    loop = asyncio.get_running_loop()
    while True:
        reply = await conn.request(ClientGet(key=key), timeout=8.0)
        if reply.ok:
            return reply.payload["value"]
        if loop.time() > deadline:
            return None
        await asyncio.sleep(0.5)


def test_acked_writes_survive_tpeer_crash() -> None:
    async def scenario() -> None:
        net = LocalNet(
            t_peers=4, s_peers=2, seed=21,
            config=fast_config(**REPLICATED),
        )
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conn = None
        try:
            t_nodes = [n for n in net.nodes if n.peer.role == "t"]
            victim = t_nodes[0]
            survivor = next(n for n in net.nodes if n is not victim)
            conn = await ClientConnection(
                survivor.host, survivor.port, retry=True
            ).connect()

            acked = {}
            for i in range(30):
                key, value = f"durable-{i}", f"payload-{i}"
                reply = await conn.request(
                    ClientPut(key=key, value=value), timeout=10.0
                )
                assert reply.ok, reply.error
                assert reply.payload.get("replicated") is True
                assert reply.payload.get("quorum", 0) >= 2
                acked[key] = value
            # The crash must actually take acknowledged data with it.
            owned = [
                k for k in acked
                if victim.peer.owns_locally(victim.peer.idspace.hash_key(k))
            ]
            assert owned, "victim owns none of the acked keys; reseed"

            failovers_before = _failover_total(net)
            # Abrupt stop: no TLeave/SLeave handshake, the listener and
            # every socket just die -- the wire-visible shape of SIGKILL.
            await victim.stop()

            # Let detection + ring repair + segment handoff play out
            # (heartbeat 100ms / neighbor timeout 350ms under fast_config).
            await asyncio.sleep(3.0)

            deadline = asyncio.get_running_loop().time() + 20.0
            lost = []
            for key, value in acked.items():
                got = await _get_with_grace(conn, key, deadline)
                if got != value:
                    lost.append((key, got))
            assert not lost, f"lost acknowledged writes: {lost}"

            assert _failover_total(net) > failovers_before
        finally:
            if conn is not None:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())


def test_client_retry_survives_connection_loss() -> None:
    """Satellite: ``retry=True`` transparently re-runs an idempotent op
    after its connection dies mid-session; a put never retries."""

    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=5, config=fast_config())
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conn = None
        try:
            node = net.nodes[0]
            conn = await ClientConnection(
                node.host, node.port, retry=True
            ).connect()
            reply = await conn.request(
                ClientPut(key="r1", value="v1"), timeout=10.0
            )
            assert reply.ok
            await asyncio.sleep(0.3)

            # Kill the client's inbound connection server-side.
            for writer in list(node._inbound.values()):
                writer.transport.abort()
            await asyncio.sleep(0.1)

            # The get fails over the dead socket, reconnects, retries.
            reply = await conn.request(ClientGet(key="r1"), timeout=10.0)
            assert reply.ok and reply.payload["value"] == "v1"

            # A put on a freshly-killed connection must NOT auto-retry.
            for writer in list(node._inbound.values()):
                writer.transport.abort()
            await asyncio.sleep(0.1)
            with pytest.raises(ConnectionError):
                await conn.request(ClientPut(key="r2", value="v2"), timeout=10.0)

            # The connection object is still usable for retried verbs.
            reply = await conn.request(ClientGet(key="r1"), timeout=10.0)
            assert reply.ok and reply.payload["value"] == "v1"

            # After an explicit close, retry never resurrects the socket.
            await conn.aclose()
            with pytest.raises(ConnectionError):
                await conn.request(ClientGet(key="r1"), timeout=5.0)
        finally:
            if conn is not None:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())


def test_get_served_from_replica_store_during_window() -> None:
    """A read that lands on the owner inside the failover window -- key
    present only in ``peer.replicas``, not yet promoted into the
    database -- is served from the replica copy instead of failing."""

    async def scenario() -> None:
        net = LocalNet(
            t_peers=3, s_peers=2, seed=13,
            config=fast_config(**REPLICATED),
        )
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conn = None
        try:
            gateway = next(n for n in net.nodes if n.peer.role == "s")
            conn = await ClientConnection(gateway.host, gateway.port).connect()

            # Write through the normal quorum path, then find the owner.
            reply = await conn.request(
                ClientPut(key="windowed", value="survives"), timeout=10.0
            )
            assert reply.ok, reply.error
            owner = next(
                n for n in net.nodes
                if n.peer.owns_locally(n.peer.idspace.hash_key("windowed"))
            )
            assert owner.peer.database.get("windowed") is not None

            # Stage the failover window on the owner: the primary copy
            # is gone (as after an ownership handoff whose repair pull
            # has not landed) but the replica copy is present.
            item = owner.peer.database.get("windowed")
            owner.peer.database.delete("windowed")
            owner.peer.replicas.insert_item(item)

            reply = await conn.request(ClientGet(key="windowed"), timeout=10.0)
            assert reply.ok, reply.error
            assert reply.payload["value"] == "survives"
        finally:
            if conn is not None:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())


def test_daemon_get_falls_back_to_replicas() -> None:
    """NodeDaemon._do_get's last-resort read: lookup resolved but no
    DataFound value arrived and the database misses -- the daemon must
    serve the value from ``peer.replicas`` rather than erroring."""

    async def scenario() -> None:
        net = LocalNet(
            t_peers=2, s_peers=1, seed=17,
            config=fast_config(**REPLICATED),
        )
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        try:
            from repro.runtime import ClientGet as _Get

            daemon = net.nodes[0]
            peer = daemon.peer
            peer.replicas.insert("ghost", "replica-only")

            # Emulate a lookup that succeeded remotely but whose value
            # frame never arrived (the exact shape of the failover
            # window the fallback exists for).
            real_lookup = peer.lookup

            def resolved_lookup(key: str) -> int:
                d_id = peer.idspace.hash_key(key)
                rec = peer.queries.start(
                    peer.address, key, d_id, peer.engine.now, True
                )
                peer.queries.succeed(
                    rec.query_id, peer.engine.now, holder=peer.address + 1
                )
                return rec.query_id

            peer.lookup = resolved_lookup
            try:
                reply = await daemon._do_get(_Get(key="ghost"))
            finally:
                peer.lookup = real_lookup
            assert reply.ok, reply.error
            assert reply.payload["value"] == "replica-only"
        finally:
            await net.stop()

    asyncio.run(scenario())
