"""Bypass-link tests (Section 5.4)."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system

BYP = dict(bypass_links=True, bypass_lifetime=500_000.0)


def populate_and_lookup(system, n=120, rounds=2):
    peers = [p.address for p in system.alive_peers()]
    system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(n)])
    alive = [p.address for p in system.alive_peers()]
    for _ in range(rounds):
        system.run_lookups([(alive[(i * 7) % len(alive)], f"k{i}") for i in range(n)])


class TestLinkCreation:
    def test_links_appear_after_cross_network_traffic(self):
        system = build_system(p_s=0.8, n_peers=40, **BYP)
        populate_and_lookup(system)
        assert any(p.bypass for p in system.alive_peers())

    def test_rule1_degree_budget_respected(self):
        system = build_system(p_s=0.8, n_peers=40, delta=3, **BYP)
        populate_and_lookup(system)
        for p in system.alive_peers():
            if p.bypass:
                assert p.tree_degree() + len(p.bypass) <= system.config.delta

    def test_no_links_within_own_snetwork(self):
        system = build_system(p_s=0.8, n_peers=40, **BYP)
        populate_and_lookup(system)
        peers = {p.address: p for p in system.alive_peers()}
        for p in system.alive_peers():
            for target in p.bypass:
                other = peers.get(target)
                if other is not None:
                    assert other.p_id != p.p_id, "bypass inside own s-network"

    def test_disabled_by_default(self):
        system = build_system(p_s=0.8, n_peers=30)
        populate_and_lookup(system, n=60, rounds=1)
        assert all(not p.bypass for p in system.alive_peers())


class TestExpiry:
    def test_idle_links_expire(self):
        system = build_system(
            p_s=0.8, n_peers=40, bypass_links=True, bypass_lifetime=5_000.0
        )
        populate_and_lookup(system, rounds=1)
        assert any(p.bypass for p in system.alive_peers())
        system.settle(20_000.0)
        # Lazy pruning: ask each peer for a target, which prunes.
        for p in system.alive_peers():
            p.bypass_target_for(0)
        assert all(not p.bypass for p in system.alive_peers())

    def test_use_refreshes_expiry(self, engine):
        from repro.enhance.bypass import BypassLink

        system = build_system(p_s=0.8, n_peers=20, **BYP)
        peer = system.s_peers()[0]
        peer.bypass[999] = BypassLink(0, 10, system.engine.now + 1_000.0)
        # Using the link pushes expiry forward.
        assert peer.bypass_target_for(5) == 999
        assert peer.bypass[999].expires_at > system.engine.now + 1_000.0 - 1e-9


class TestSemantics:
    def test_correctness_unchanged_with_bypass(self):
        """Bypass is an optimisation: same lookups must still succeed."""
        system = build_system(p_s=0.8, n_peers=40, ttl=8, **BYP)
        populate_and_lookup(system, n=120, rounds=2)
        assert system.query_stats().failure_ratio == 0.0

    def test_second_round_uses_bypass(self):
        system = build_system(p_s=0.8, n_peers=40, ttl=8, **BYP)
        populate_and_lookup(system, n=120, rounds=2)
        via_bypass = sum(1 for r in system.queries.records() if r.via_bypass)
        assert via_bypass > 0

    def test_bypass_reduces_ring_traffic(self):
        def contacts(bypass: bool):
            system = build_system(
                p_s=0.85, n_peers=40, ttl=8, seed=13,
                bypass_links=bypass, bypass_lifetime=500_000.0,
            )
            peers = [p.address for p in system.alive_peers()]
            system.populate(
                [(peers[i % len(peers)], f"k{i}", i) for i in range(60)]
            )
            alive = [p.address for p in system.alive_peers()]
            # Repeat the same remote lookups so links get reused.
            for _ in range(3):
                system.run_lookups(
                    [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(60)]
                )
            stats = system.query_stats()
            assert stats.failure_ratio == 0.0
            return stats.connum

        assert contacts(True) < contacts(False)

    def test_stale_bypass_retries_via_ring(self):
        """Kill a bypass target silently; the lookup must still resolve
        through the t-network retry."""
        system = build_system(p_s=0.8, n_peers=40, ttl=8,
                              lookup_timeout=5_000.0, **BYP)
        populate_and_lookup(system, n=100, rounds=1)
        linked = [p for p in system.alive_peers() if p.bypass]
        assert linked
        # Crash bypass targets that are *leaf* s-peers (no heartbeats, so
        # links stay stale; leaves keep the flood trees intact -- any
        # failure would be the bypass path not falling back).
        targets = {t for p in linked for t in p.bypass}
        leaves = {p.address for p in system.s_peers() if not p.children}
        system.crash_peers(targets & leaves)
        alive = [p.address for p in system.alive_peers()]
        surviving_keys = []
        for p in system.alive_peers():
            surviving_keys.extend(i.key for i in p.database)
        pairs = [(alive[i % len(alive)], k) for i, k in enumerate(surviving_keys)]
        system.run_lookups(pairs)
        stats = system.query_stats()
        assert stats.failure_ratio == 0.0
