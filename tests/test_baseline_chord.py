"""Tests for the standalone Chord baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import ChordNetwork
from repro.overlay.idspace import IdSpace


def make_ring(n: int, seed: int = 0, **kwargs) -> ChordNetwork:
    net = ChordNetwork(IdSpace(32), np.random.default_rng(seed), **kwargs)
    for _ in range(n):
        net.join()
    net.stabilize()
    return net


class TestMembership:
    def test_ring_consistent_after_joins(self):
        net = make_ring(40)
        assert net.ring_is_consistent()
        assert len(net) == 40

    def test_single_node_ring(self):
        net = make_ring(1)
        node = next(iter(net.nodes.values()))
        assert node.successor is node
        assert node.predecessor is node

    def test_leave_hands_over_data(self):
        net = make_ring(20)
        net.store(0, "key-a", 1)
        result = net.lookup(1, "key-a")
        owner = result.owner
        net.leave(owner)
        net.stabilize()
        after = net.lookup(1, "key-a")
        assert after.found
        assert after.value == 1
        assert net.ring_is_consistent()

    def test_crash_loses_data(self):
        net = make_ring(20)
        net.store(0, "key-a", 1)
        owner = net.lookup(1, "key-a").owner
        net.crash(owner)
        net.stabilize()
        assert not net.lookup(1, "key-a").found
        assert net.ring_is_consistent()


class TestRouting:
    def test_lookup_finds_stored_value(self):
        net = make_ring(30)
        for i in range(60):
            net.store(i % 30, f"k{i}", i)
        for i in range(60):
            result = net.lookup((i * 7) % 30, f"k{i}")
            assert result.found and result.value == i

    def test_zero_failure_for_present_keys(self):
        """Structured networks have no false negatives (Section 4.2)."""
        net = make_ring(50)
        for i in range(100):
            net.store(i % 50, f"k{i}", i)
        assert all(net.lookup((i * 3) % 50, f"k{i}").found for i in range(100))

    def test_hops_logarithmic(self):
        """Finger routing must do much better than N/2 linear scans."""
        net = make_ring(128, seed=3)
        for i in range(100):
            net.store(i % 128, f"k{i}", i)
        hops = [net.lookup((i * 11) % 128, f"k{i}").hops for i in range(100)]
        mean_hops = sum(hops) / len(hops)
        assert mean_hops <= 3 * math.log2(128)
        assert max(hops) < 64  # far below linear

    def test_owner_is_correct_per_segment(self):
        net = make_ring(25)
        space = net.idspace
        for i in range(50):
            key = f"k{i}"
            owner = net.nodes[net.lookup(0, key).owner]
            assert owner.owns(space.hash_key(key))

    def test_latency_uses_router_when_given(self, rng):
        from repro.net import Router, TransitStubConfig, generate_transit_stub

        topo = generate_transit_stub(TransitStubConfig(), rng)
        router = Router(topo)
        net = ChordNetwork(
            IdSpace(32),
            np.random.default_rng(1),
            router=router,
            hosts=list(range(topo.n)),
        )
        for _ in range(20):
            net.join()
        net.stabilize()
        net.store(0, "x", 1)
        result = net.lookup(5, "x")
        if result.hops > 0:
            assert result.latency > result.hops * 0.5  # real latencies


class TestStabilization:
    def test_fingers_repaired_after_churn(self):
        net = make_ring(40, seed=5)
        rng = np.random.default_rng(9)
        victims = rng.choice(list(net.nodes), size=10, replace=False)
        for v in victims[:5]:
            net.leave(int(v))
        for v in victims[5:]:
            net.crash(int(v))
        net.stabilize(rounds=2)
        assert net.ring_is_consistent()
        # Routing still terminates and is correct.
        alive = [n.node_id for n in net.nodes.values() if n.alive]
        for i in range(20):
            net.store(alive[i % len(alive)], f"post{i}", i)
            assert net.lookup(alive[(i + 3) % len(alive)], f"post{i}").found

    def test_successor_lists_populated(self):
        net = make_ring(10)
        for node in net.nodes.values():
            assert len(node.successor_list) == net.r

    def test_bad_successor_list_size(self):
        with pytest.raises(ValueError):
            ChordNetwork(IdSpace(32), np.random.default_rng(0), successor_list_size=0)
