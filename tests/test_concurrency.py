"""Concurrency-corner tests (Section 3.3 and the convergence machinery).

The paper devotes a whole section to concurrent joins/leaves; these
tests pin the exact interleavings the mutex triangles, deferred queues,
RingNotify assertions and retry timers exist for.
"""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system, check_ring, check_trees


def drain(system):
    system.engine.run()


class TestJoinLeaveInterleavings:
    def test_adjacent_leaves(self):
        """Two ring-adjacent t-peers leaving at once (triangle vs
        triangle: the deferred-leave queue must serialize them)."""
        system = build_system(p_s=0.0, n_peers=10, seed=6)
        order = system.ring_order()
        a, b = system.peers[order[3]], system.peers[order[4]]
        a.leave()
        b.leave()
        drain(system)
        assert not a.alive and not b.alive
        check_ring(system)
        assert len(system.ring_order()) == 8

    def test_three_adjacent_handoffs(self):
        """Three consecutive t-peers with s-networks hand off at once --
        the scenario that motivated RingNotify convergence."""
        system = build_system(p_s=0.6, n_peers=30, seed=8)
        order = system.ring_order()
        with_children = [a for a in order if system.peers[a].children]
        # Find three consecutive ring slots whose occupants have children.
        trio = None
        for i in range(len(order)):
            cand = [order[i], order[(i + 1) % len(order)], order[(i + 2) % len(order)]]
            if all(system.peers[a].children for a in cand):
                trio = cand
                break
        if trio is None:
            pytest.skip("no three adjacent anchored t-peers in this build")
        t_count = len(system.t_peers())
        for a in trio:
            system.peers[a].leave()
        drain(system)
        check_ring(system)
        check_trees(system)
        assert len(system.t_peers()) == t_count  # all substituted

    def test_leave_deferred_during_join(self):
        """A t-peer asked to leave while inserting a new peer must wait
        ("will not accept any leave requests including that from
        itself")."""
        system = build_system(p_s=0.0, n_peers=8, seed=3)
        pre = system.t_peers()[0]
        # Force the joining mutex and then request the leave.
        pre.joining = True
        pre.leave()
        assert pre.want_leave and pre.alive and not pre.leaving
        # Releasing the mutex (as the join ack would) lets the leave run.
        pre.joining = False
        pre._drain_control_queues()
        drain(system)
        assert not pre.alive
        check_ring(system)

    def test_join_queued_during_leave_lands_correctly(self):
        system = build_system(p_s=0.0, n_peers=8, seed=4)
        leaver = system.t_peers()[2]
        leaver.leave()
        newcomer = system.add_peer(wait=False)  # races the leave
        drain(system)
        assert newcomer.joined
        assert not leaver.alive
        check_ring(system)
        assert len(system.ring_order()) == 8  # -1 leaver +1 newcomer

    def test_concurrent_join_and_crash_storm(self):
        system = HybridSystem(
            HybridConfig(
                p_s=0.5, heartbeats_enabled=True, lookup_timeout=20_000.0
            ),
            n_peers=30,
            seed=9,
        )
        system.build()
        system.settle(2_000.0)
        newcomers = [system.add_peer(wait=False) for _ in range(5)]
        system.crash_random_fraction(0.1)
        system.settle(60_000.0)
        check_ring(system)
        check_trees(system)
        # Newcomers either joined or (rarely) are still retrying; none
        # may be wedged in a half-joined zombie state.
        for p in newcomers:
            if p.alive and p.joined and p.role == "s":
                assert p.cp != -1


class TestSegmentBookkeeping:
    def test_collectload_updates_member_segments(self):
        """A t-join must shrink the successor s-network's segment on
        every member (CollectLoad flood)."""
        system = build_system(p_s=0.7, n_peers=20, seed=5)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(60)])
        newcomer = system.add_peer()
        drain(system)
        if newcomer.role != "t":
            pytest.skip("newcomer joined as s-peer under this seed")
        anchors = {p.address: p for p in system.t_peers()}
        for s in system.s_peers():
            anchor = anchors[s.t_peer]
            assert s.segment_lo == anchor.predecessor_pid or (
                # stale-narrow is allowed, stale-wide is not
                system.idspace.in_interval(
                    s.segment_lo, anchor.predecessor_pid, anchor.p_id,
                    closed_left=True,
                )
            )

    def test_leave_grows_successor_segment(self):
        """A triangle leave merges the segment into the successor, and
        SegmentGrow widens the members' ownership test."""
        system = build_system(p_s=0.3, n_peers=16, seed=12)
        leaver = next(p for p in system.t_peers() if not p.children)
        suc = system.peers[leaver.successor]
        old_lo = leaver.predecessor_pid
        leaver.leave()
        drain(system)
        assert suc.predecessor_pid == old_lo
        for s in system.s_peers():
            if s.t_peer == suc.address:
                assert s.segment_lo == old_lo


class TestRingNotify:
    def test_notify_accepts_substitution_at_same_pid(self):
        from repro.overlay.messages import RingNotify

        system = build_system(p_s=0.0, n_peers=6, seed=2)
        peer = system.t_peers()[0]
        msg = RingNotify(p_id=peer.predecessor_pid, claim="pred")
        msg.sender = 999
        peer.on_RingNotify(msg)
        assert peer.predecessor == 999  # address swap at identical pid

    def test_notify_accepts_closer_neighbor(self):
        from repro.overlay.messages import RingNotify

        system = build_system(p_s=0.0, n_peers=6, seed=2)
        peer = system.t_peers()[0]
        closer = system.idspace.midpoint_cw(peer.predecessor_pid, peer.p_id)
        if closer in (peer.predecessor_pid, peer.p_id):
            pytest.skip("arc too small on this seed")
        msg = RingNotify(p_id=closer, claim="pred")
        msg.sender = 999
        peer.on_RingNotify(msg)
        assert peer.predecessor == 999
        assert peer.segment_lo == closer

    def test_notify_rejects_farther_claimant(self):
        from repro.overlay.messages import RingNotify

        system = build_system(p_s=0.0, n_peers=6, seed=2)
        peer = system.t_peers()[0]
        # A pid on the far side of the ring is not a better predecessor.
        far = system.idspace.normalize(peer.p_id + 1)
        if system.idspace.in_interval(far, peer.predecessor_pid, peer.p_id):
            pytest.skip("degenerate layout")
        before = peer.predecessor
        msg = RingNotify(p_id=far, claim="pred")
        msg.sender = 999
        peer.on_RingNotify(msg)
        assert peer.predecessor == before

    def test_notify_ignored_by_speers(self):
        from repro.overlay.messages import RingNotify

        system = build_system(p_s=0.8, n_peers=10, seed=2)
        s_peer = system.s_peers()[0]
        msg = RingNotify(p_id=1, claim="pred")
        msg.sender = 999
        s_peer.on_RingNotify(msg)  # must not raise or corrupt
        assert s_peer.role == "s"
