"""Unit tests for the bootstrap server's decision logic.

The full message flows are covered by the protocol/integration tests;
these exercise the server's pure decision functions and registry
handling directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridConfig, HybridSystem
from repro.overlay.messages import ServerUpdate

from .conftest import build_system


@pytest.fixture
def server():
    # A built system gives us a fully wired server cheaply.
    return build_system(p_s=0.5, n_peers=20).server


class TestRoleDecision:
    def test_preassignment_wins(self, server):
        server.preassigned_roles[999] = "s"
        assert server.decide_role(10.0, 999) == "s"

    def test_preassigned_t_always_honored(self, server):
        server.preassigned_roles[999] = "t"
        assert server.decide_role(0.01, 999) == "t"

    def test_tracks_ps_target(self, server):
        # System at p_s=0.5 with 20 peers: 10 t / 10 s.  Adding one more
        # keeps the ratio: target_t = round(0.5*21) = 10..11.
        role = server.decide_role(1.0, 12345)
        assert role in ("t", "s")

    def test_ps_one_never_makes_tpeers(self):
        system = build_system(p_s=1.0, n_peers=10)
        assert system.server.decide_role(100.0, 999) == "s"


class TestSNetworkChoice:
    def test_balanced_picks_smallest(self, server):
        smallest = min(server.s_counts, key=lambda a: (server.s_counts[a], a))
        assert server.choose_snetwork(None, None) == smallest

    def test_interest_anchoring_is_sticky(self, server):
        first = server.choose_snetwork_for_test = None
        a = server._choose_by_interest("music")
        b = server._choose_by_interest("music")
        assert a == b
        assert server.interest_map["music"] == a

    def test_no_tpeers_raises(self):
        system = build_system(p_s=0.5, n_peers=20)
        system.server.s_counts.clear()
        with pytest.raises(LookupError):
            system.server.choose_snetwork(None, None)


class TestRegistryUpdates:
    def test_t_join_and_leave(self, server):
        n = len(server.ring)
        server.on_ServerUpdate(ServerUpdate(kind="t_join", address=777, p_id=42))
        assert 777 in server.ring and len(server.ring) == n + 1
        server.on_ServerUpdate(ServerUpdate(kind="t_leave", address=777, p_id=42))
        assert 777 not in server.ring and len(server.ring) == n

    def test_duplicate_t_join_idempotent(self, server):
        server.on_ServerUpdate(ServerUpdate(kind="t_join", address=777, p_id=42))
        n = len(server.ring)
        server.on_ServerUpdate(ServerUpdate(kind="t_join", address=777, p_id=42))
        assert len(server.ring) == n

    def test_handoff_substitutes(self, server):
        pid, addr = server.ring.members()[0]
        count = server.s_counts.get(addr, 0)
        server.on_ServerUpdate(
            ServerUpdate(kind="t_handoff", address=888, p_id=pid, extra=addr)
        )
        assert addr not in server.ring
        assert server.ring.pid_of(888) == pid
        assert server.s_counts[888] == max(0, count - 1)

    def test_unknown_kind_rejected(self, server):
        with pytest.raises(ValueError):
            server.on_ServerUpdate(ServerUpdate(kind="bogus", address=1))

    def test_s_leave_decrements(self, server):
        anchor = next(iter(server.s_counts))
        server.s_counts[anchor] = 5
        before_total = server.s_count
        server.on_ServerUpdate(ServerUpdate(kind="s_leave", address=1, extra=anchor))
        assert server.s_counts[anchor] == 4
        assert server.s_count == before_total - 1
