"""Tests for workload generators and churn schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    ChurnEvent,
    KeyWorkload,
    PoissonChurn,
    crash_fraction_schedule,
    interest_keys,
    zipf_weights,
)


class TestZipf:
    def test_uniform_when_s_zero(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_skewed_when_s_positive(self):
        w = zipf_weights(10, 1.2)
        assert w[0] > w[-1]
        assert w.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestKeyWorkload:
    def test_uniform_factory(self, rng):
        wl = KeyWorkload.uniform(100, [1, 2, 3], rng)
        assert len(wl) == 100
        assert len(set(wl.keys)) == 100
        assert set(wl.originators) <= {1, 2, 3}

    def test_store_plan_parallel(self, rng):
        wl = KeyWorkload.uniform(10, [5], rng)
        plan = wl.store_plan()
        assert len(plan) == 10
        assert all(origin == 5 for origin, _, _ in plan)

    def test_sample_lookups_respects_universe(self, rng):
        wl = KeyWorkload.uniform(20, [1, 2], rng)
        pairs = wl.sample_lookups(50, [7, 8, 9])
        assert len(pairs) == 50
        keys = set(wl.keys)
        for origin, key in pairs:
            assert origin in (7, 8, 9)
            assert key in keys

    def test_zipf_lookups_prefer_head(self, rng):
        wl = KeyWorkload.uniform(50, [1], rng, zipf_s=1.5)
        pairs = wl.sample_lookups(2000, [1])
        counts = {}
        for _, key in pairs:
            counts[key] = counts.get(key, 0) + 1
        head = counts.get(wl.keys[0], 0)
        tail = counts.get(wl.keys[-1], 0)
        assert head > tail

    def test_mismatched_lists_rejected(self, rng):
        with pytest.raises(ValueError):
            KeyWorkload(keys=["a"], originators=[1, 2], rng=rng)

    def test_interest_keys_format(self):
        keys = interest_keys("music", 3)
        assert keys == ["music:item-0", "music:item-1", "music:item-2"]
        with pytest.raises(ValueError):
            interest_keys("bad:cat", 2)

    def test_with_interests_locality(self, rng):
        peers = {"music": [1, 2], "video": [3, 4]}
        wl = KeyWorkload.with_interests(
            ["music", "video"], 50, peers, rng, locality=1.0
        )
        for origin, key in zip(wl.originators, wl.keys):
            cat = key.partition(":")[0]
            assert origin in peers[cat]


class TestChurnSchedules:
    def test_crash_fraction_counts(self, rng):
        events = crash_fraction_schedule(list(range(100)), 0.25, 10.0, rng)
        assert len(events) == 25
        assert all(e.kind == "crash" and e.time == 10.0 for e in events)
        assert len({e.target for e in events}) == 25

    def test_crash_fraction_zero(self, rng):
        assert crash_fraction_schedule([1, 2, 3], 0.0, 0.0, rng) == []

    def test_crash_fraction_validation(self, rng):
        with pytest.raises(ValueError):
            crash_fraction_schedule([1], 1.5, 0.0, rng)

    def test_poisson_generates_sorted_events(self, rng):
        churn = PoissonChurn(join_rate=0.01, mean_lifetime=5_000.0)
        events = churn.generate(20_000.0, existing=[1, 2, 3], rng=rng)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 20_000.0 for t in times)
        assert any(e.kind == "join" for e in events)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonChurn(join_rate=0.0, mean_lifetime=1.0)
        with pytest.raises(ValueError):
            PoissonChurn(join_rate=1.0, mean_lifetime=0.0)
        with pytest.raises(ValueError):
            PoissonChurn(join_rate=1.0, mean_lifetime=1.0, crash_probability=2.0)

    def test_crash_probability_extremes(self, rng):
        all_crash = PoissonChurn(0.01, 2_000.0, crash_probability=1.0)
        events = all_crash.generate(30_000.0, existing=[1, 2, 3, 4, 5], rng=rng)
        departures = [e for e in events if e.kind != "join"]
        assert departures and all(e.kind == "crash" for e in departures)
