"""Tests for the standalone Gnutella-style baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GnutellaNetwork


def make_net(n: int, seed: int = 0, **kwargs) -> GnutellaNetwork:
    net = GnutellaNetwork(np.random.default_rng(seed), **kwargs)
    for _ in range(n):
        net.join()
    return net


class TestMembership:
    def test_join_links_to_existing(self):
        net = make_net(30)
        for p in net.peers.values():
            if p.peer_id > 0:
                assert p.neighbors

    def test_first_peer_has_no_neighbors(self):
        net = make_net(1)
        assert net.peers[0].neighbors == set()

    def test_links_are_symmetric(self):
        net = make_net(40)
        for p in net.peers.values():
            for n in p.neighbors:
                assert p.peer_id in net.peers[n].neighbors

    def test_leave_unlinks(self):
        net = make_net(20)
        victim = net.peers[5]
        neighbors = set(victim.neighbors)
        net.leave(5)
        for n in neighbors:
            assert 5 not in net.peers[n].neighbors
        assert len(net) == 19

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            GnutellaNetwork(np.random.default_rng(0), links_per_join=0)


class TestFlooding:
    def test_local_hit_is_free(self):
        net = make_net(10)
        net.store(3, "k", 1)
        result = net.lookup(3, "k", ttl=0)
        assert result.found and result.contacts == 0

    def test_large_ttl_finds_everything(self):
        net = make_net(50, seed=2)
        for i in range(50):
            net.store(i, f"k{i}", i)
        for i in range(50):
            assert net.lookup((i * 7) % 50, f"k{i}", ttl=12).found

    def test_small_ttl_misses_distant_items(self):
        net = make_net(200, seed=3, links_per_join=2)
        for i in range(200):
            net.store(i, f"k{i}", i)
        misses = sum(
            not net.lookup((i * 71) % 200, f"k{i}", ttl=1).found
            for i in range(200)
        )
        assert misses > 0

    def test_higher_ttl_never_hurts(self):
        net = make_net(120, seed=4, links_per_join=2)
        for i in range(120):
            net.store(i, f"k{i}", i)
        for ttl_small, ttl_big in [(1, 3), (2, 5)]:
            small = sum(
                net.lookup((i * 13) % 120, f"k{i}", ttl=ttl_small).found
                for i in range(120)
            )
            big = sum(
                net.lookup((i * 13) % 120, f"k{i}", ttl=ttl_big).found
                for i in range(120)
            )
            assert big >= small

    def test_mesh_produces_duplicates(self):
        """The bandwidth cost the paper's tree design avoids."""
        net = make_net(60, seed=5, links_per_join=4)
        result = net.lookup(0, "missing", ttl=4)
        assert result.duplicates > 0

    def test_contacts_bounded_by_population(self):
        net = make_net(40, seed=6)
        result = net.lookup(0, "missing", ttl=10)
        assert result.contacts <= 39

    def test_crashed_peers_not_contacted(self):
        net = make_net(40, seed=7)
        net.store(20, "k", 1)
        net.crash(20)
        result = net.lookup(0, "k", ttl=10)
        assert not result.found

    def test_lookup_from_dead_origin_rejected(self):
        net = make_net(5)
        net.crash(0)
        with pytest.raises(ValueError):
            net.lookup(0, "k", ttl=2)

    def test_negative_ttl_rejected(self):
        net = make_net(5)
        with pytest.raises(ValueError):
            net.lookup(0, "k", ttl=-1)


class TestReachability:
    def test_reachable_grows_with_ttl(self):
        net = make_net(80, seed=8, links_per_join=2)
        r1 = net.reachable_within(0, 1)
        r3 = net.reachable_within(0, 3)
        r8 = net.reachable_within(0, 8)
        assert r1 <= r3 <= r8

    def test_ttl1_equals_degree(self):
        net = make_net(30, seed=9)
        assert net.reachable_within(4, 1) == len(net.peers[4].neighbors)
