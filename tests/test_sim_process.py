"""Unit tests for generator-based processes."""

from __future__ import annotations

import pytest

from repro.sim import Engine, Process


def test_process_runs_segments_at_yielded_delays(engine):
    log = []

    def script():
        log.append(("a", engine.now))
        yield 2.0
        log.append(("b", engine.now))
        yield 3.0
        log.append(("c", engine.now))

    p = Process(engine, script())
    engine.run()
    assert log == [("a", 0.0), ("b", 2.0), ("c", 5.0)]
    assert p.finished
    assert not p.alive


def test_yield_none_reschedules_immediately(engine):
    log = []

    def script():
        log.append(engine.now)
        yield None
        log.append(engine.now)

    Process(engine, script())
    engine.run()
    assert log == [0.0, 0.0]


def test_interrupt_stops_process(engine):
    log = []

    def script():
        log.append("start")
        yield 5.0
        log.append("never")

    p = Process(engine, script())
    engine.call_at(2.0, p.interrupt)
    engine.run()
    assert log == ["start"]
    assert p.finished


def test_deferred_start(engine):
    log = []

    def script():
        log.append(engine.now)
        yield 1.0

    p = Process(engine, script(), start=False)
    engine.run()
    assert log == []


def test_negative_delay_fails_loudly(engine):
    def script():
        yield -1.0

    p = Process(engine, script())
    with pytest.raises(ValueError):
        engine.run()
    assert p.failed is not None


def test_exception_in_script_surfaces(engine):
    def script():
        yield 1.0
        raise RuntimeError("script bug")

    p = Process(engine, script())
    with pytest.raises(RuntimeError, match="script bug"):
        engine.run()
    assert isinstance(p.failed, RuntimeError)


def test_two_processes_interleave(engine):
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            log.append((name, engine.now))

    Process(engine, ticker("fast", 1.0))
    Process(engine, ticker("slow", 2.5))
    engine.run()
    assert log == [
        ("fast", 1.0),
        ("fast", 2.0),
        ("slow", 2.5),
        ("fast", 3.0),
        ("slow", 5.0),
        ("slow", 7.5),
    ]
