"""Property-based tests over whole-system invariants.

These run the real protocol under randomly drawn configurations and
operation sequences (hypothesis chooses p_s, delta, churn victims,
workload sizes) and assert the structural invariants that must hold in
*every* reachable state:

* the t-network is one consistent sorted ring;
* every s-network is a degree-capped tree rooted at its t-peer;
* data placement conserves items and respects segment ownership;
* lookups for present keys succeed when the TTL covers the trees.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import HybridConfig, HybridSystem

from .conftest import check_ring, check_trees

# System builds take ~100 ms; keep example counts deliberate.
SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build(p_s: float, delta: int, seed: int, n_peers: int = 24, **kw) -> HybridSystem:
    system = HybridSystem(
        HybridConfig(p_s=p_s, delta=delta, **kw), n_peers=n_peers, seed=seed
    )
    system.build()
    system.engine.run()
    return system


@given(
    p_s=st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9]),
    delta=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SLOW
def test_build_invariants(p_s, delta, seed):
    system = build(p_s, delta, seed)
    check_ring(system)
    check_trees(system)


@given(
    p_s=st.sampled_from([0.4, 0.7, 0.9]),
    delta=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    n_items=st.integers(min_value=5, max_value=60),
)
@SLOW
def test_placement_conservation(p_s, delta, seed, n_items):
    """No store operation may lose or duplicate an item, and every item
    must sit inside the segment of its holder's s-network."""
    system = build(p_s, delta, seed)
    addresses = [p.address for p in system.alive_peers()]
    system.populate(
        [(addresses[i % len(addresses)], f"k{i}", i) for i in range(n_items)]
    )
    keys = []
    peers = {p.address: p for p in system.alive_peers()}
    for p in system.alive_peers():
        anchor = p if p.role == "t" else peers[p.t_peer]
        for item in p.database:
            keys.append(item.key)
            assert anchor.owns(item.d_id)
    assert sorted(keys) == [f"k{i}" for i in sorted(range(n_items), key=lambda x: f"k{x}")]


@given(
    p_s=st.sampled_from([0.5, 0.8]),
    seed=st.integers(min_value=0, max_value=10_000),
    victims=st.integers(min_value=1, max_value=6),
)
@SLOW
def test_graceful_churn_invariants(p_s, seed, victims):
    """Random graceful leaves never break ring or tree invariants."""
    system = build(p_s, 3, seed, n_peers=30)
    rng = system.rngs.stream("test-churn")
    alive = [p.address for p in system.alive_peers()]
    chosen = rng.choice(alive, size=min(victims, len(alive) - 2), replace=False)
    for addr in chosen:
        peer = system.peers[int(addr)]
        if peer.alive:
            peer.leave()
    system.engine.run()
    check_ring(system)
    check_trees(system)


@given(
    p_s=st.sampled_from([0.5, 0.8]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SLOW
def test_crash_recovery_invariants(p_s, seed):
    """Random crashes + detection/repair re-establish the invariants."""
    system = HybridSystem(
        HybridConfig(p_s=p_s, heartbeats_enabled=True, lookup_timeout=20_000.0),
        n_peers=30,
        seed=seed,
    )
    system.build()
    system.settle(2_000.0)
    system.crash_random_fraction(0.15)
    system.settle(40_000.0)
    check_ring(system)
    check_trees(system)


@given(
    p_s=st.sampled_from([0.3, 0.6, 0.9]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SLOW
def test_present_keys_always_found_with_large_ttl(p_s, seed):
    system = build(p_s, 3, seed, n_peers=24, ttl=10)
    addresses = [p.address for p in system.alive_peers()]
    system.populate([(addresses[i % len(addresses)], f"k{i}", i) for i in range(30)])
    system.run_lookups(
        [(addresses[(i * 5) % len(addresses)], f"k{i}") for i in range(30)]
    )
    assert system.query_stats().failure_ratio == 0.0
