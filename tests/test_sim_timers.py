"""Unit tests for resettable and periodic timers."""

from __future__ import annotations

import pytest

from repro.sim import Engine, PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_timeout(self, engine):
        fired = []
        t = Timer(engine, 5.0, lambda: fired.append(engine.now))
        t.start()
        engine.run()
        assert fired == [5.0]
        assert t.expired

    def test_reset_pushes_deadline(self, engine):
        fired = []
        t = Timer(engine, 5.0, lambda: fired.append(engine.now))
        t.start()
        engine.call_at(3.0, t.reset)  # heartbeat arrives at t=3
        engine.run()
        assert fired == [8.0]

    def test_repeated_resets_keep_postponing(self, engine):
        fired = []
        t = Timer(engine, 4.0, lambda: fired.append(engine.now))
        t.start()
        for at in (2.0, 4.0, 6.0):
            engine.call_at(at, t.reset)
        engine.run()
        assert fired == [10.0]

    def test_cancel_prevents_firing(self, engine):
        fired = []
        t = Timer(engine, 5.0, lambda: fired.append(1))
        t.start()
        engine.call_at(2.0, t.cancel)
        engine.run()
        assert fired == []
        assert not t.expired

    def test_deadline_property(self, engine):
        t = Timer(engine, 5.0, lambda: None)
        assert t.deadline is None
        t.start()
        assert t.deadline == 5.0

    def test_restart_after_expiry(self, engine):
        fired = []
        t = Timer(engine, 2.0, lambda: fired.append(engine.now))
        t.start()
        engine.run()
        t.start()
        engine.run()
        assert fired == [2.0, 4.0]

    def test_invalid_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            Timer(engine, 0.0, lambda: None)

    def test_running_state(self, engine):
        t = Timer(engine, 1.0, lambda: None)
        assert not t.running
        t.start()
        assert t.running
        engine.run()
        assert not t.running


class TestPeriodicTimer:
    def test_ticks_every_period(self, engine):
        ticks = []
        t = PeriodicTimer(engine, 2.0, lambda: ticks.append(engine.now))
        t.start()
        engine.run_until(7.0)
        t.stop()
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop_ends_ticking(self, engine):
        ticks = []
        t = PeriodicTimer(engine, 1.0, lambda: ticks.append(engine.now))
        t.start()
        engine.call_at(2.5, t.stop)
        engine.run()
        assert ticks == [1.0, 2.0]

    def test_stop_from_within_callback(self, engine):
        t = PeriodicTimer(engine, 1.0, lambda: t.stop())
        t.start()
        engine.run()
        assert t.ticks == 1
        assert not t.running

    def test_defer_skips_scheduled_tick(self, engine):
        # The paper's HELLO suppression: an ack at t=1.5 defers the
        # HELLO scheduled for t=2 out to t=3.5.
        ticks = []
        t = PeriodicTimer(engine, 2.0, lambda: ticks.append(engine.now))
        t.start()
        engine.call_at(1.5, t.defer)
        engine.run_until(6.0)
        t.stop()
        assert ticks == [3.5, 5.5]

    def test_defer_when_stopped_is_noop(self, engine):
        t = PeriodicTimer(engine, 2.0, lambda: None)
        t.defer()
        assert not t.running
        assert engine.pending_count == 0

    def test_invalid_period_rejected(self, engine):
        with pytest.raises(ValueError):
            PeriodicTimer(engine, -1.0, lambda: None)

    def test_tick_counter(self, engine):
        t = PeriodicTimer(engine, 1.0, lambda: None)
        t.start()
        engine.run_until(4.5)
        t.stop()
        assert t.ticks == 4
