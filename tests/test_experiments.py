"""Smoke + shape tests for the experiment drivers.

Each paper table/figure driver runs at a tiny scale here; the
assertions check the *shapes* the paper reports, not absolute numbers
(those live in EXPERIMENTS.md at larger scale).
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale
from repro.experiments.common import run_cell
from repro.core import HybridConfig

TINY = Scale(n_peers=60, n_keys=180, n_lookups=180, seed=1)


class TestCommon:
    def test_run_cell_bundle(self):
        cell = run_cell(HybridConfig(p_s=0.5), TINY)
        assert cell.failure_ratio == 0.0
        assert cell.successes == 180
        assert cell.n_t_peers + cell.n_s_peers == 60

    def test_scales(self):
        assert Scale.paper().n_peers == 1000
        assert Scale.quick().n_peers < Scale.medium().n_peers
        assert Scale.quick().with_seed(9).seed == 9


class TestFig3:
    def test_shapes(self):
        from repro.experiments import fig3_analysis

        result = fig3_analysis.run(points=60)
        # 3a: optimum in the 0.6-0.9 band, larger delta never worse there.
        for delta in (2, 3, 4, 5):
            assert 0.6 <= result.optimal_ps(delta) <= 0.9
        j2, j5 = result.join[2], result.join[5]
        assert j5.argmin()[1] <= j2.argmin()[1]
        # 3b: decreasing overall.
        for c in result.lookup.values():
            assert c.hops[0] >= c.hops[-1]

    def test_main_renders(self):
        from repro.experiments import fig3_analysis

        out = fig3_analysis.main(points=6)
        assert "Fig. 3a" in out and "Fig. 3b" in out


class TestFig4:
    def test_direct_concentrates_spread_flattens(self):
        from repro.experiments import fig4_distribution

        cells = fig4_distribution.run(
            Scale(n_peers=80, n_keys=0, n_lookups=0, seed=2),
            ps_values=(0.9,),
            items_per_peer=10,
        )
        direct = cells[("direct", 0.9)].summary
        spread = cells[("spread", 0.9)].summary
        assert direct.gini > spread.gini
        assert direct.max > spread.max
        assert direct.fraction_zero > spread.fraction_zero
        assert direct.total_items == spread.total_items  # conservation

    def test_schemes_agree_at_ps_zero(self):
        from repro.experiments import fig4_distribution

        cells = fig4_distribution.run(
            Scale(n_peers=40, n_keys=0, n_lookups=0, seed=2),
            ps_values=(0.0,),
            items_per_peer=8,
        )
        d = cells[("direct", 0.0)].summary
        s = cells[("spread", 0.0)].summary
        # With no s-peers, spreading has nowhere to spread.
        assert d.gini == pytest.approx(s.gini)


class TestFig5:
    def test_5a_shapes(self):
        from repro.experiments import fig5_failure

        result = fig5_failure.run_5a(
            Scale(n_peers=80, n_keys=240, n_lookups=240, seed=3),
            ttls=(1, 4),
            ps_values=(0.3, 0.9),
            delta=2,
        )
        # ~0 below p_s = 0.5 regardless of TTL.
        assert result.failure(1, 0.3) < 0.02
        assert result.failure(4, 0.3) < 0.02
        # Rising with p_s at small TTL; falling with TTL.
        assert result.failure(1, 0.9) > result.failure(1, 0.3)
        assert result.failure(4, 0.9) <= result.failure(1, 0.9)

    def test_5b_failure_tracks_crash_fraction(self):
        from repro.experiments import fig5_failure

        result = fig5_failure.run_5b(
            Scale(n_peers=60, n_keys=180, n_lookups=180, seed=4),
            fractions=(0.0, 0.2),
            ps_values=(0.6,),
        )
        assert result.failure(0.6, 0.0) == pytest.approx(0.0, abs=0.02)
        assert 0.05 < result.failure(0.6, 0.2) < 0.4


class TestTable2:
    def test_connum_decreasing_in_ps(self):
        from repro.experiments import table2_connum

        result = table2_connum.run(
            Scale(n_peers=60, n_keys=180, n_lookups=180, seed=5),
            ps_values=(0.0, 0.5, 0.9),
            ttls=(1, 4),
        )
        assert result.connum(0.0, 4) > result.connum(0.5, 4) > result.connum(0.9, 4)
        # TTL irrelevant at p_s = 0 (no flooding at all).
        assert result.connum(0.0, 1) == result.connum(0.0, 4)
        # TTL grows connum only at high p_s.
        assert result.connum(0.9, 4) >= result.connum(0.9, 1)


@pytest.mark.slow
class TestFig6:
    def test_6a_heterogeneity_helps_at_high_ps(self):
        from repro.experiments import fig6_latency

        result = fig6_latency.run_6a(
            Scale(n_peers=60, n_keys=180, n_lookups=180, seed=21),
            ps_values=(0.7,),
        )
        assert result.latency("hetero", 0.7) < result.latency("base", 0.7)

    def test_6b_binning_helps_at_high_ps(self):
        """Topology awareness shows once a meaningful share of each
        lookup's path lies inside s-networks; average over seeds since
        the per-run effect (~5%) is close to workload noise."""
        from repro.experiments import fig6_latency

        base, binned = [], []
        for seed in (17, 18):
            result = fig6_latency.run_6b(
                Scale(n_peers=80, n_keys=240, n_lookups=240, seed=seed),
                ps_values=(0.7,),
                landmark_counts=(8,),
            )
            base.append(result.latency("base", 0.7))
            binned.append(result.latency("bin8", 0.7))
        assert sum(binned) < sum(base)
