"""Unit tests for shortest-path routing."""

from __future__ import annotations

import pytest

from repro.net import (
    NodeKind,
    PhysicalTopology,
    Router,
    TransitStubConfig,
    generate_transit_stub,
)


def tiny_topology() -> PhysicalTopology:
    """A 4-node diamond with a cheap bottom path: 0-1-3 costs 2,
    0-2-3 costs 10."""
    return PhysicalTopology(
        n=4,
        edges=[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 5.0)],
        kind=[NodeKind.TRANSIT] * 4,
        domain=[0, 0, 0, 0],
        transit_attachment=[0, 1, 2, 3],
    )


class TestRouter:
    def test_latency_is_shortest_path(self):
        r = Router(tiny_topology())
        assert r.latency(0, 3) == pytest.approx(2.0)
        assert r.latency(0, 2) == pytest.approx(5.0)

    def test_latency_symmetric(self):
        r = Router(tiny_topology())
        assert r.latency(1, 2) == r.latency(2, 1)

    def test_self_latency_zero(self):
        r = Router(tiny_topology())
        assert r.latency(2, 2) == 0.0

    def test_path_extraction(self):
        r = Router(tiny_topology())
        assert r.path(0, 3) == [0, 1, 3]
        assert r.path(3, 0) == [3, 1, 0]
        assert r.path(1, 1) == [1]

    def test_path_edges_sorted_pairs(self):
        r = Router(tiny_topology())
        assert r.path_edges(3, 0) == [(1, 3), (0, 1)]

    def test_hop_count(self):
        r = Router(tiny_topology())
        assert r.hop_count(0, 3) == 2
        assert r.hop_count(0, 0) == 0

    def test_disconnected_topology_rejected(self):
        topo = PhysicalTopology(
            n=4,
            edges=[(0, 1, 1.0), (2, 3, 1.0)],
            kind=[NodeKind.STUB] * 4,
            domain=[0, 0, 1, 1],
            transit_attachment=[0, 0, 2, 2],
        )
        with pytest.raises(ValueError, match="not connected"):
            Router(topo)

    def test_triangle_inequality_on_generated_topology(self, rng):
        topo = generate_transit_stub(TransitStubConfig(), rng)
        r = Router(topo)
        # Spot-check: d(a,c) <= d(a,b) + d(b,c) for a sample of triples.
        picks = rng.integers(0, topo.n, size=(30, 3))
        for a, b, c in picks:
            a, b, c = int(a), int(b), int(c)
            assert r.latency(a, c) <= r.latency(a, b) + r.latency(b, c) + 1e-9

    def test_path_latency_consistent_with_matrix(self, rng):
        topo = generate_transit_stub(TransitStubConfig(), rng)
        r = Router(topo)
        weights = {tuple(sorted((u, v))): lat for u, v, lat in topo.edges}
        for a, b in [(0, topo.n - 1), (3, 7), (1, topo.n // 2)]:
            total = sum(weights[e] for e in r.path_edges(a, b))
            assert total == pytest.approx(r.latency(a, b))
