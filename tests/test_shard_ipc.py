"""Shared-memory shard transport: rings, frames, and the struct codec.

The shm backend's correctness story has three independent layers, each
pinned here in isolation: the :class:`SpscRing` frame discipline
(wrap-around via PAD markers, publish-after-write, close semantics),
the struct-packed control/state frames (exact round-trips, malformed
input always raises), and :class:`ShardFrameCodec`'s delivery envelope
over wire codec v2 -- property-tested with the same annotation-derived
strategies as ``test_runtime_codec.py``, including the guarantee that
a truncated frame can never silently misparse.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple, Union, get_args, get_origin, get_type_hints

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.messages import FloodQuery, Message, wire_types
from repro.runtime.client import client_types
from repro.runtime.codec import CodecError
from repro.shard.ipc import (
    ENVELOPE,
    K_MSG,
    K_PMSG,
    RingClosed,
    ShardFrameCodec,
    SpscRing,
    decode_ctrl,
    decode_state,
    encode_finish,
    encode_issue,
    encode_state,
    encode_stop,
    encode_window,
)
from repro.shard.sync import NullMessageSync

# ----------------------------------------------------------------------
# SpscRing
# ----------------------------------------------------------------------
class TestSpscRing:
    def test_write_read_roundtrip(self):
        ring = SpscRing.over(1024)
        ring.write(K_MSG, b"hello")
        ring.write(K_PMSG, b"")
        kind, view = ring.read()
        assert (kind, bytes(view)) == (K_MSG, b"hello")
        kind, view = ring.read()
        assert (kind, bytes(view)) == (K_PMSG, b"")
        assert ring.try_read() is None
        assert ring.frames_written == ring.frames_read == 2

    def test_wraparound_preserves_frames(self):
        # Capacity chosen so frames repeatedly land on the seam and the
        # producer must emit PAD markers / skip short tails.
        ring = SpscRing.over(256)
        payloads = [bytes([i % 251]) * (i % 61) for i in range(500)]
        for i, payload in enumerate(payloads):
            ring.write(i % 7 + 1, payload)
            kind, view = ring.read()
            assert kind == i % 7 + 1
            assert bytes(view) == payload
        assert ring.frames_read == len(payloads)

    def test_interleaved_wraparound_batches(self):
        # Multiple frames in flight across the wrap point.
        ring = SpscRing.over(512)
        seq = 0
        for _round in range(100):
            batch = [bytes([seq + j & 0xFF]) * 40 for j in range(3)]
            seq += 3
            for p in batch:
                ring.write(2, p)
            for p in batch:
                kind, view = ring.read()
                assert (kind, bytes(view)) == (2, p)

    def test_try_write_full_ring_returns_false(self):
        ring = SpscRing.over(256)
        writes = 0
        while ring.try_write(1, b"x" * 32):
            writes += 1
        assert 0 < writes < 20
        # Draining one frame frees space again.
        ring.read()
        ring.read()  # releases the first frame's region
        assert ring.try_write(1, b"x" * 32)

    def test_oversized_frame_rejected(self):
        ring = SpscRing.over(256)
        assert not ring.try_write(1, b"y" * 512)
        with pytest.raises(ValueError):
            ring.write(1, b"y" * 512)

    def test_view_valid_until_next_read(self):
        ring = SpscRing.over(256)
        ring.write(1, b"first")
        ring.write(1, b"second")
        _, view1 = ring.read()
        assert bytes(view1) == b"first"
        _, view2 = ring.read()
        assert bytes(view2) == b"second"

    def test_producer_close_raises_after_drain(self):
        ring = SpscRing.over(256)
        ring.write(1, b"last")
        ring.close_producer()
        kind, view = ring.read()
        assert bytes(view) == b"last"
        with pytest.raises(RingClosed):
            ring.read()

    def test_shared_memory_ring_roundtrip(self):
        ring = SpscRing.create(1024)
        try:
            ring.write(3, b"over shm")
            kind, view = ring.read()
            assert (kind, bytes(view)) == (3, b"over shm")
            del view  # zero-copy views must be dropped before detach
        finally:
            ring.close()
            ring.unlink()

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            SpscRing.over(16)


# ----------------------------------------------------------------------
# Control / state frames
# ----------------------------------------------------------------------
class TestControlFrames:
    def test_issue_roundtrip(self):
        frame = encode_issue(1234.5, 10, 20, 99.25)
        assert decode_ctrl(frame) == ("issue", 1234.5, 10, 20, 99.25)

    def test_window_roundtrip(self):
        frame = encode_window(777.125, 2, [0, 3, 1])
        assert decode_ctrl(frame) == ("window", 777.125, 2, [0, 3, 1])
        assert decode_ctrl(encode_window(1.0, 0, [])) == ("window", 1.0, 0, [])

    def test_finish_and_stop_roundtrip(self):
        assert decode_ctrl(encode_finish(5.5)) == ("finish", 5.5)
        assert decode_ctrl(encode_stop()) == ("stop",)

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            bytes([99]),                 # unknown opcode
            encode_issue(1.0, 0, 1, 2.0)[:-1],
            encode_window(1.0, 0, [7])[:-2],  # torn owed list
            encode_finish(1.0) + b"x",
        ],
    )
    def test_malformed_ctrl_raises(self, payload):
        with pytest.raises(CodecError):
            decode_ctrl(payload)

    def test_state_roundtrip(self):
        frame = encode_state(42.5, 3, 99.0, [(1, 2, 10.5), (0, 0, float("inf"))])
        next_time, unresolved, max_end, summaries = decode_state(frame)
        assert (next_time, unresolved, max_end) == (42.5, 3, 99.0)
        assert summaries == [(1, 2, 10.5), (0, 0, float("inf"))]

    def test_state_idle_shard(self):
        next_time, unresolved, max_end, summaries = decode_state(
            encode_state(None, 0, 0.0, [])
        )
        assert next_time is None
        assert summaries == []

    def test_malformed_state_raises(self):
        good = encode_state(1.0, 0, 2.0, [(1, 1, 1.0)])
        for cut in (0, 5, len(good) - 3):
            with pytest.raises(CodecError):
                decode_state(good[:cut])


# ----------------------------------------------------------------------
# Delivery codec: property round-trips (same strategies as the wire
# codec suite, plus the envelope fields)
# ----------------------------------------------------------------------
ALL_CLASSES = tuple(wire_types()) + tuple(client_types())
_ints = st.integers(min_value=-(2**53), max_value=2**53)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_text = st.text(max_size=20)
_any_value = (
    st.none() | st.booleans() | _ints | _floats | _text | st.binary(max_size=32)
)


def _strategy_for(hint: Any) -> st.SearchStrategy:
    if hint is Any:
        return _any_value
    if hint is int:
        return _ints
    if hint is float:
        return _floats
    if hint is str:
        return _text
    if hint is bool:
        return st.booleans()
    if hint is bytes:
        return st.binary(max_size=32)
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=4).map(tuple)
        return st.tuples(*(_strategy_for(a) for a in args))
    if origin is Union:
        inner = [a for a in get_args(hint) if a is not type(None)]
        strategies = [_strategy_for(a) for a in inner]
        if type(None) in get_args(hint):
            strategies.append(st.none())
        return st.one_of(strategies)
    raise NotImplementedError(f"no strategy for annotation {hint!r}")


@st.composite
def messages(draw: st.DrawFn) -> Message:
    cls = draw(st.sampled_from(ALL_CLASSES))
    hints = get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.init:
            kwargs[f.name] = draw(_strategy_for(hints[f.name]))
    msg = cls(**kwargs)
    msg.sender = draw(_ints)
    msg.hop_count = draw(st.integers(min_value=0, max_value=64))
    return msg


envelopes = st.tuples(
    st.floats(allow_nan=False, allow_infinity=False),       # deliver_time
    st.integers(min_value=-(2**63), max_value=2**63 - 1),   # dst_address
    st.integers(min_value=0, max_value=2**64 - 1),          # seq
    st.integers(min_value=0, max_value=255),                # origin shard
)


@settings(max_examples=300, deadline=None)
@given(envelopes, messages())
def test_delivery_roundtrip_exact(env, msg):
    t, dst, seq, origin, codec = *env, ShardFrameCodec()
    kind, frame = codec.encode_delivery(t, dst, seq, origin, msg)
    t2, dst2, seq2, origin2, msg2 = codec.decode_delivery(kind, frame)
    assert (t2, dst2, seq2, origin2) == (t, dst, seq, origin)
    assert msg2 == msg
    assert msg2.sender == msg.sender
    assert msg2.hop_count == msg.hop_count
    assert codec.peek_destination(frame) == dst


@settings(max_examples=150, deadline=None)
@given(envelopes, messages())
def test_delivery_roundtrip_through_ring(env, msg):
    codec = ShardFrameCodec()
    ring = SpscRing.over(1 << 16)
    kind, frame = codec.encode_delivery(*env, msg)
    ring.write(kind, frame)
    kind2, view = ring.read()
    decoded = codec.decode_delivery(kind2, view)
    assert decoded[:4] == env
    assert decoded[4] == msg


@settings(max_examples=150, deadline=None)
@given(envelopes, messages())
def test_delivery_truncation_never_misparses(env, msg):
    """Every strict prefix of an encoded delivery raises CodecError."""
    codec = ShardFrameCodec()
    kind, frame = codec.encode_delivery(*env, msg)
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            codec.decode_delivery(kind, frame[:cut])


@dataclasses.dataclass(slots=True)
class OffWire(Message):
    """Unregistered message: must travel via the pickled fallback."""

    mapping: dict = dataclasses.field(default_factory=dict)


def test_pickled_fallback_counts_and_roundtrips():
    codec = ShardFrameCodec()
    msg = OffWire(mapping={"k": [1, 2]})
    kind, frame = codec.encode_delivery(7.0, 11, 0, 1, msg)
    assert kind == K_PMSG
    assert codec.pickled_fallbacks == 1
    decoded = codec.decode_delivery(kind, frame)
    assert decoded == (7.0, 11, 0, 1, msg)


def test_registered_messages_avoid_pickle():
    codec = ShardFrameCodec()
    kind, _ = codec.encode_delivery(1.0, 2, 3, 0, FloodQuery(key="k"))
    assert kind == K_MSG
    assert codec.pickled_fallbacks == 0


def test_non_delivery_kind_rejected():
    codec = ShardFrameCodec()
    _, frame = codec.encode_delivery(1.0, 2, 3, 0, FloodQuery(key="k"))
    with pytest.raises(CodecError):
        codec.decode_delivery(99, frame)


def test_envelope_is_fixed_size():
    # deliver_time f64 + dst i64 + seq u64 + origin u8
    assert ENVELOPE.size == 25


# ----------------------------------------------------------------------
# Summary-based LBTS accounting (the shm coordinator's view)
# ----------------------------------------------------------------------
class TestSummaryAccounting:
    def test_summary_bounds_floor_like_messages(self):
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, None)
        sync.note_state(1, None)
        sync.add_summary(1, count=3, min_time=30.0)
        assert sync.floor() == 30.0
        assert sync.window_end() == 35.0
        assert sync.in_flight == 3

    def test_empty_summary_ignored(self):
        sync = NullMessageSync(2, lookahead=5.0)
        sync.note_state(0, 50.0)
        sync.note_state(1, None)
        sync.add_summary(1, count=0, min_time=float("inf"))
        assert sync.floor() == 50.0
        assert sync.in_flight == 0

    def test_take_inbox_clears_destination_summaries(self):
        sync = NullMessageSync(2, lookahead=1.0)
        sync.add_summary(0, count=2, min_time=10.0)
        assert sync.in_flight == 2
        sync.take_inbox(0)
        assert sync.in_flight == 0

    def test_min_of_mins_matches_message_floor(self):
        # The summary floor must equal the floor the pipe backend
        # computes from the messages themselves.
        deliveries = [(12.0, 1), (7.5, 1), (9.0, 0)]
        by_msg = NullMessageSync(2, lookahead=1.0)
        by_msg.add_messages(0, [(t, d, 0, object()) for t, d in deliveries])
        by_sum = NullMessageSync(2, lookahead=1.0)
        by_sum.add_summary(1, 2, min(t for t, d in deliveries if d == 1))
        by_sum.add_summary(0, 1, min(t for t, d in deliveries if d == 0))
        assert by_msg.floor() == by_sum.floor() == 7.5
