"""t-network protocol tests: join/leave triangles, concurrency,
role handoff, load transfer (Sections 3.2.1, 3.3, Table 1)."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system, check_ring, check_trees


def drain(system):
    system.engine.run()


class TestSequentialJoin:
    def test_two_peer_ring(self):
        system = build_system(p_s=0.0, n_peers=2)
        a, b = system.t_peers()
        assert a.successor == b.address and a.predecessor == b.address
        assert b.successor == a.address and b.predecessor == a.address

    def test_join_transfers_load(self):
        """A new t-peer must receive the items in its segment."""
        system = build_system(p_s=0.0, n_peers=10)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % 10], f"k{i}", i) for i in range(100)])
        # Every t-peer owns exactly the items whose d_id is in its segment.
        newcomer = system.add_peer()
        drain(system)
        check_ring(system)
        for p in system.t_peers():
            for item in p.database:
                assert p.owns(item.d_id), (
                    f"{p.address} holds {item.key} outside its segment"
                )
        assert system.total_items() == 100  # conservation

    def test_pid_conflict_resolved_by_midpoint(self):
        """Forcing every p_id to collide exercises Table 1's check()."""
        cfg = HybridConfig(p_s=0.0, pid_strategy="hash")
        system = HybridSystem(cfg, n_peers=5, seed=3)
        # All peers share one host-address hash?  No -- hash of distinct
        # addresses differ.  Instead pin the server's generator.
        system.server.generate_pid = lambda address: 1000  # type: ignore[assignment]
        system.build()
        drain(system)
        pids = sorted(p.p_id for p in system.t_peers())
        assert len(set(pids)) == 5  # all conflicts re-assigned
        check_ring(system)


class TestConcurrentJoin:
    def test_simultaneous_joins_all_complete(self):
        """Fire many joins at once; the mutex queues must serialize them."""
        cfg = HybridConfig(p_s=0.0)
        system = HybridSystem(cfg, n_peers=1, seed=5)
        system.build()
        newcomers = [system.add_peer(wait=False) for _ in range(15)]
        drain(system)
        assert all(p.joined for p in newcomers)
        check_ring(system)
        assert len(system.ring_order()) == 16

    def test_concurrent_joins_many_entry_points(self):
        system = build_system(p_s=0.0, n_peers=10)
        newcomers = [system.add_peer(wait=False) for _ in range(10)]
        drain(system)
        assert all(p.joined for p in newcomers)
        check_ring(system)


class TestLeaveTriangle:
    def test_leave_without_snetwork_uses_triangle(self):
        system = build_system(p_s=0.0, n_peers=8)
        leaver = system.t_peers()[3]
        suc_addr = leaver.successor
        system.leave_peers([leaver.address])
        drain(system)
        assert not leaver.alive
        check_ring(system)
        assert len(system.ring_order()) == 7

    def test_leave_dumps_load_to_successor(self):
        system = build_system(p_s=0.0, n_peers=6)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[0], f"k{i}", i) for i in range(60)])
        leaver = system.t_peers()[2]
        n_held = len(leaver.database)
        suc = system.peers[leaver.successor]
        before = len(suc.database)
        system.leave_peers([leaver.address])
        drain(system)
        assert len(suc.database) == before + n_held
        assert system.total_items() == 60

    def test_simultaneous_leaves(self):
        system = build_system(p_s=0.0, n_peers=12)
        # Two non-adjacent t-peers leave at the same instant.
        order = system.ring_order()
        targets = [order[2], order[7]]
        for addr in targets:
            system.peers[addr].leave()
        drain(system)
        check_ring(system)
        assert len(system.ring_order()) == 10

    def test_last_peer_leaves(self):
        system = build_system(p_s=0.0, n_peers=1)
        only = system.t_peers()[0]
        only.leave()
        drain(system)
        assert not only.alive
        assert len(system.server.ring) == 0


class TestRoleHandoff:
    def test_handoff_promotes_child(self):
        """A leaving t-peer with an s-network hands its role to a child --
        the ring membership count must not change (the paper's headline
        maintenance saving)."""
        system = build_system(p_s=0.6, n_peers=20)
        t_before = len(system.t_peers())
        target = next(p for p in system.t_peers() if p.children)
        old_addr = target.address
        old_pid = target.p_id
        target.leave()
        drain(system)
        assert not target.alive
        assert len(system.t_peers()) == t_before  # substitution, not shrink
        check_ring(system)
        check_trees(system)
        promoted = next(p for p in system.t_peers() if p.p_id == old_pid)
        assert promoted.address != old_addr

    def test_handoff_moves_data(self):
        system = build_system(p_s=0.6, n_peers=20)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(80)])
        total = system.total_items()
        target = next(p for p in system.t_peers() if p.children)
        target.leave()
        drain(system)
        assert system.total_items() == total

    def test_handoff_updates_tpeer_pointers_in_tree(self):
        system = build_system(p_s=0.8, n_peers=25)
        target = max(system.t_peers(), key=lambda p: len(p.children))
        members = [p for p in system.s_peers() if p.t_peer == target.address]
        assert members
        old_pid = target.p_id
        target.leave()
        drain(system)
        promoted = next(p for p in system.t_peers() if p.p_id == old_pid)
        for m in members:
            if m.alive and m.address != promoted.address:
                assert m.t_peer == promoted.address
        check_trees(system)

    def test_repeated_handoffs_drain_snetwork(self):
        """Keep retiring the same ring slot until its s-network empties."""
        system = build_system(p_s=0.7, n_peers=15)
        pid = system.t_peers()[0].p_id
        for _ in range(10):
            holder = next(
                (p for p in system.t_peers() if p.p_id == pid), None
            )
            if holder is None:
                break
            holder.leave()
            drain(system)
            check_ring(system)
        # Either the slot finally dissolved (triangle leave) or the ring
        # is still consistent; both are valid ends.
        check_trees(system)


class TestFingerMaintenance:
    def test_finger_substitution_after_handoff(self):
        system = build_system(p_s=0.5, n_peers=20, ring_routing="finger")
        target = next(p for p in system.t_peers() if p.children)
        old_addr = target.address
        old_pid = target.p_id
        target.leave()
        drain(system)
        promoted = next(p for p in system.t_peers() if p.p_id == old_pid)
        for p in system.t_peers():
            finger_addrs = {a for _, a in p.fingers}
            assert old_addr not in finger_addrs, (
                f"{p.address} still points at departed {old_addr}"
            )

    def test_lookup_works_in_finger_mode_after_handoff(self):
        system = build_system(p_s=0.5, n_peers=20, ring_routing="finger")
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(40)])
        target = next(p for p in system.t_peers() if p.children)
        target.leave()
        drain(system)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 3) % len(alive)], f"k{i}") for i in range(40)])
        assert system.query_stats().failure_ratio == 0.0
