"""Tests for metrics: distributions, report rendering, collectors,
and the QueryRegistry's aggregation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import QueryRegistry
from repro.metrics import (
    EventCounter,
    JoinLatencyCollector,
    format_grid,
    format_series,
    format_table,
    gini,
    items_pdf,
    summarize_distribution,
)
from repro.sim import TraceBus


class TestDistributions:
    def test_pdf_integrates_to_one(self):
        counts = np.array([0, 0, 5, 10, 20, 20, 3])
        centers, density = items_pdf(counts, n_bins=10)
        width = centers[1] - centers[0]
        assert (density * width).sum() == pytest.approx(1.0)

    def test_pdf_rejects_empty(self):
        with pytest.raises(ValueError):
            items_pdf(np.array([]))

    def test_gini_even_load_is_zero(self):
        assert gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0)

    def test_gini_concentrated_load_near_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini(counts) > 0.9

    def test_gini_all_zero(self):
        assert gini(np.zeros(10)) == 0.0

    def test_summary_fields(self):
        counts = np.array([0, 0, 0, 10, 30])
        s = summarize_distribution(counts)
        assert s.n_peers == 5
        assert s.total_items == 40
        assert s.fraction_zero == pytest.approx(0.6)
        assert s.max == 30
        assert s.fraction_below_10 == pytest.approx(0.6)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("x", [1, 2], {"y": [10, 20], "z": [30, 40]})
        assert "10" in out and "40" in out

    def test_format_grid_missing_cells(self):
        out = format_grid("r", ["a"], "c", ["x", "y"], {"a": {"x": 1}})
        assert "-" in out  # missing (a, y)


class TestCollectors:
    def test_event_counter_all_categories(self):
        bus = TraceBus()
        counter = EventCounter(bus)
        bus.publish(1.0, "a")
        bus.publish(2.0, "b")
        bus.publish(3.0, "a")
        assert counter["a"] == 2 and counter["b"] == 1
        counter.detach()
        bus.publish(4.0, "a")
        assert counter["a"] == 2

    def test_event_counter_filtered(self):
        bus = TraceBus()
        counter = EventCounter(bus, ["a"])
        bus.publish(1.0, "a")
        bus.publish(1.0, "b")
        assert counter["a"] == 1 and counter["b"] == 0

    def test_join_latency_collector(self):
        bus = TraceBus()
        col = JoinLatencyCollector(bus)
        bus.publish(1.0, "join.complete", role="t", latency=10.0)
        bus.publish(2.0, "join.complete", role="s", latency=20.0)
        bus.publish(3.0, "join.complete", role="s", latency=40.0)
        assert col.mean("t") == 10.0
        assert col.mean("s") == 30.0
        assert col.overall_mean() == pytest.approx(70.0 / 3)
        assert math.isnan(col.mean("x"))


class TestQueryRegistry:
    def test_lifecycle(self):
        reg = QueryRegistry()
        rec = reg.start(origin=1, key="k", d_id=5, time=100.0, local=True)
        assert reg.unresolved == 1
        reg.contact(rec.query_id)
        reg.contact(rec.query_id, duplicate=True)
        assert reg.succeed(rec.query_id, 150.0, holder=9)
        assert reg.unresolved == 0
        assert rec.latency == pytest.approx(50.0)
        assert rec.contacts == 1 and rec.duplicate_contacts == 1

    def test_first_resolution_wins(self):
        reg = QueryRegistry()
        rec = reg.start(1, "k", 5, 0.0, False)
        assert reg.succeed(rec.query_id, 10.0, holder=2)
        assert not reg.succeed(rec.query_id, 20.0, holder=3)
        assert not reg.fail(rec.query_id, 30.0)
        assert rec.holder == 2

    def test_failure_stats(self):
        reg = QueryRegistry()
        a = reg.start(1, "a", 0, 0.0, False)
        b = reg.start(1, "b", 0, 0.0, False)
        reg.succeed(a.query_id, 5.0, holder=2)
        reg.fail(b.query_id, 100.0)
        stats = reg.stats()
        assert stats.total == 2
        assert stats.failure_ratio == pytest.approx(0.5)
        assert stats.mean_latency == pytest.approx(5.0)

    def test_contacts_after_resolution_still_counted(self):
        """connum includes flood packets that land after the answer."""
        reg = QueryRegistry()
        rec = reg.start(1, "k", 0, 0.0, False)
        reg.succeed(rec.query_id, 1.0, holder=2)
        reg.contact(rec.query_id)
        assert reg.stats().connum == 1

    def test_unknown_query_contact_is_noop(self):
        reg = QueryRegistry()
        reg.contact(999)  # must not raise

    def test_empty_stats(self):
        stats = QueryRegistry().stats()
        assert stats.total == 0
        assert stats.failure_ratio == 0.0
        assert math.isnan(stats.mean_latency)

    def test_reset_keeps_ids_monotone(self):
        reg = QueryRegistry()
        a = reg.start(1, "a", 0, 0.0, False)
        reg.reset()
        b = reg.start(1, "b", 0, 0.0, False)
        assert b.query_id > a.query_id
