"""Tests for the extension experiments (maintenance cost, comparison)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_comparison, ext_maintenance


class TestMaintenance:
    def test_cost_falls_from_structured_endpoint(self):
        cells = ext_maintenance.run(
            n_peers=60, churn_events=20, ps_values=(0.0, 0.6), seed=1
        )
        assert cells[0.0].per_event > cells[0.6].per_event
        assert cells[0.0].joins == cells[0.0].leaves == 10

    def test_main_renders(self):
        out = ext_maintenance.main(n_peers=50, churn_events=10, ps_values=(0.0, 0.8))
        assert "msgs/event" in out

    def test_events_counted(self):
        cells = ext_maintenance.run(
            n_peers=40, churn_events=8, ps_values=(0.5,), seed=2
        )
        cell = cells[0.5]
        assert cell.messages > 0
        assert cell.per_event == pytest.approx(cell.messages / 8)


class TestComparison:
    @pytest.fixture(scope="class")
    def scores(self):
        return ext_comparison.run(
            n_peers=60, n_keys=150, n_lookups=150, churn=10, seed=1
        )

    def test_three_systems_scored(self, scores):
        names = sorted(scores)
        assert names[0] == "chord"
        assert any(n.startswith("gnutella") for n in names)
        assert any(n.startswith("hybrid") for n in names)

    def test_chord_is_accurate_but_costly_to_maintain(self, scores):
        chord = scores["chord"]
        hybrid = next(s for n, s in scores.items() if n.startswith("hybrid"))
        assert chord.failure_ratio == 0.0
        assert chord.maintenance_per_event > hybrid.maintenance_per_event

    def test_gnutella_floods(self, scores):
        gnutella = next(s for n, s in scores.items() if n.startswith("gnutella"))
        hybrid = next(s for n, s in scores.items() if n.startswith("hybrid"))
        assert gnutella.contacts_per_lookup > hybrid.contacts_per_lookup

    def test_hybrid_is_accurate(self, scores):
        hybrid = next(s for n, s in scores.items() if n.startswith("hybrid"))
        assert hybrid.failure_ratio <= 0.02

    def test_main_renders(self):
        out = ext_comparison.main(n_peers=50)
        assert "chord" in out and "hybrid" in out
