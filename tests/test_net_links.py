"""Unit tests for the access-link capacity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import CapacityClass, CapacityModel, HeterogeneityConfig


class TestHeterogeneityConfig:
    def test_default_matches_paper(self):
        cfg = HeterogeneityConfig()
        cfg.validate()
        # "The highest link capacity is 10 times of the lowest."
        assert cfg.capacity_of(CapacityClass.HIGH) == pytest.approx(
            10.0 * cfg.capacity_of(CapacityClass.LOW)
        )
        # Medium sits at the geometric midpoint.
        assert cfg.capacity_of(CapacityClass.MEDIUM) == pytest.approx(
            cfg.unit_capacity * 10.0 ** 0.5
        )

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneityConfig(fractions=(0.5, 0.5, 0.5)).validate()

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneityConfig(ratio_high_to_low=0.5).validate()


class TestCapacityModel:
    def test_thirds_split(self, rng):
        model = CapacityModel(999, rng)
        classes = model.classes()
        for cls in CapacityClass:
            assert classes.count(cls) == 333

    def test_rounding_remainder_goes_to_high(self, rng):
        model = CapacityModel(1000, rng)
        classes = model.classes()
        assert sum(classes.count(c) for c in CapacityClass) == 1000

    def test_assignment_is_shuffled(self, rng):
        model = CapacityModel(300, rng)
        classes = model.classes()
        # Not all of the first hundred should share a class.
        assert len(set(classes[:100])) > 1

    def test_transfer_delay_bottleneck(self, rng):
        model = CapacityModel(30, rng)
        fast = next(i for i in range(30) if model.capacity_class(i) == CapacityClass.HIGH)
        slow = next(i for i in range(30) if model.capacity_class(i) == CapacityClass.LOW)
        size = 100.0
        # The slow endpoint bounds the transfer either way.
        assert model.transfer_delay(fast, slow, size) == pytest.approx(
            size / model.capacity(slow)
        )
        assert model.transfer_delay(slow, fast, size) == model.transfer_delay(
            fast, slow, size
        )

    def test_zero_size_transfer_is_free(self, rng):
        model = CapacityModel(10, rng)
        assert model.transfer_delay(0, 1, 0.0) == 0.0

    def test_negative_size_rejected(self, rng):
        model = CapacityModel(10, rng)
        with pytest.raises(ValueError):
            model.transfer_delay(0, 1, -1.0)

    def test_deterministic_given_rng(self):
        a = CapacityModel(50, np.random.default_rng(3)).classes()
        b = CapacityModel(50, np.random.default_rng(3)).classes()
        assert a == b
