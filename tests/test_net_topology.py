"""Unit tests for the transit-stub topology generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (
    LatencyRanges,
    NodeKind,
    TransitStubConfig,
    config_for_size,
    generate_transit_stub,
)


def _connected(n, edges) -> bool:
    adj = {i: [] for i in range(n)}
    for u, v, _ in edges:
        adj[u].append(v)
        adj[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        cur = stack.pop()
        for nxt in adj[cur]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return len(seen) == n


class TestGeneration:
    def test_node_count_matches_config(self, rng):
        cfg = TransitStubConfig(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit_node=2,
            stub_nodes_per_domain=4,
        )
        topo = generate_transit_stub(cfg, rng)
        assert topo.n == cfg.total_nodes == 6 + 6 * 2 * 4

    def test_connected(self, rng):
        cfg = TransitStubConfig()
        topo = generate_transit_stub(cfg, rng)
        assert _connected(topo.n, topo.edges)

    def test_node_kinds(self, rng):
        cfg = TransitStubConfig(transit_domains=2, transit_nodes_per_domain=4)
        topo = generate_transit_stub(cfg, rng)
        assert len(topo.transit_nodes) == 8
        assert len(topo.stub_nodes) == topo.n - 8
        assert all(topo.kind[i] is NodeKind.TRANSIT for i in topo.transit_nodes)

    def test_stub_attachment_points_to_transit(self, rng):
        topo = generate_transit_stub(TransitStubConfig(), rng)
        for node in topo.stub_nodes:
            anchor = topo.transit_attachment[node]
            assert topo.kind[anchor] is NodeKind.TRANSIT

    def test_latency_class_separation(self, rng):
        """Intra-stub links must be cheaper than inter-transit links --
        the property the topology-awareness experiment relies on."""
        cfg = TransitStubConfig()
        topo = generate_transit_stub(cfg, rng)
        intra_stub = []
        backbone = []
        for u, v, lat in topo.edges:
            if (
                topo.kind[u] is NodeKind.STUB
                and topo.kind[v] is NodeKind.STUB
                and topo.domain[u] == topo.domain[v]
            ):
                intra_stub.append(lat)
            elif topo.kind[u] is NodeKind.TRANSIT and topo.kind[v] is NodeKind.TRANSIT:
                backbone.append(lat)
        assert intra_stub and backbone
        assert max(intra_stub) <= cfg.latencies.intra_stub[1]
        assert min(backbone) >= cfg.latencies.intra_transit[0]

    def test_no_duplicate_edges(self, rng):
        topo = generate_transit_stub(TransitStubConfig(extra_edge_prob=0.8), rng)
        pairs = [(u, v) for u, v, _ in topo.edges]
        assert len(pairs) == len(set(pairs))

    def test_deterministic_for_same_rng_state(self):
        a = generate_transit_stub(TransitStubConfig(), np.random.default_rng(5))
        b = generate_transit_stub(TransitStubConfig(), np.random.default_rng(5))
        assert a.edges == b.edges

    def test_single_domain(self, rng):
        cfg = TransitStubConfig(transit_domains=1, transit_nodes_per_domain=2)
        topo = generate_transit_stub(cfg, rng)
        assert _connected(topo.n, topo.edges)


class TestValidation:
    def test_bad_latency_range(self):
        with pytest.raises(ValueError):
            TransitStubConfig(
                latencies=LatencyRanges(intra_stub=(5.0, 1.0))
            ).validate()

    def test_bad_edge_prob(self):
        with pytest.raises(ValueError):
            TransitStubConfig(extra_edge_prob=1.5).validate()

    def test_zero_transit_domains(self):
        with pytest.raises(ValueError):
            TransitStubConfig(transit_domains=0).validate()


class TestConfigForSize:
    @pytest.mark.parametrize("target", [10, 100, 500, 1001])
    def test_capacity_covers_target(self, target):
        cfg = config_for_size(target)
        assert cfg.total_nodes >= target

    def test_tiny_target_rejected(self):
        with pytest.raises(ValueError):
            config_for_size(1)
