"""System construction invariants.

Every one of these runs the *real* join protocol through the event
engine; the assertions are the structural invariants of Section 3.1:
one consistent ring, degree-capped trees, exact role split, segment
bookkeeping.
"""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system, check_ring, check_trees


class TestRoleSplit:
    @pytest.mark.parametrize("p_s", [0.0, 0.3, 0.5, 0.7, 0.9])
    def test_role_counts_match_ps(self, p_s):
        system = build_system(p_s=p_s, n_peers=40)
        expected_t = max(1, round((1.0 - p_s) * 40))
        assert len(system.t_peers()) == expected_t
        assert len(system.s_peers()) == 40 - expected_t

    def test_ps_one_keeps_single_anchor(self):
        # p_s = 1 degenerates to "pure Gnutella", but an s-network still
        # needs one anchor, so a single t-peer remains.
        system = build_system(p_s=1.0, n_peers=20)
        assert len(system.t_peers()) == 1
        assert len(system.s_peers()) == 19


class TestRingInvariants:
    @pytest.mark.parametrize("p_s", [0.0, 0.5, 0.9])
    def test_ring_consistent(self, p_s):
        system = build_system(p_s=p_s, n_peers=40)
        check_ring(system)

    def test_server_directory_matches_reality(self, small_system):
        actual = sorted((p.p_id, p.address) for p in small_system.t_peers())
        assert actual == sorted(small_system.server.ring.members())

    def test_pids_unique(self, small_system):
        pids = [p.p_id for p in small_system.t_peers()]
        assert len(pids) == len(set(pids))

    def test_segments_partition_id_space(self, small_system):
        """Every d_id must have exactly one owning t-peer."""
        idspace = small_system.idspace
        probes = [0, 1, 12345, idspace.size // 2, idspace.size - 1]
        probes += [p.p_id for p in small_system.t_peers()]
        for d in probes:
            owners = [p for p in small_system.t_peers() if p.owns(d)]
            assert len(owners) == 1, f"d_id {d} owned by {len(owners)} t-peers"

    def test_join_latencies_recorded(self, small_system):
        lat = small_system.join_latencies()
        assert len(lat["t"]) == len(small_system.t_peers())
        assert (lat["t"] > 0).all()
        assert (lat["s"] > 0).all()


class TestTreeInvariants:
    @pytest.mark.parametrize("delta", [1, 2, 3, 5])
    def test_degree_cap_respected(self, delta):
        system = build_system(p_s=0.8, n_peers=50, delta=delta)
        check_trees(system)
        for peer in system.s_peers():
            # cp consumes one slot of an s-peer's budget.
            assert len(peer.children) <= max(delta - 1, 1)
        for peer in system.t_peers():
            assert len(peer.children) <= max(
                delta, 1
            ) or system.config.p_s >= 1.0

    def test_star_policy_gives_depth_one(self):
        system = build_system(p_s=0.8, n_peers=30, connect_policy="star")
        for peer in system.s_peers():
            assert peer.cp == peer.t_peer  # directly under the t-peer

    def test_balanced_assignment(self):
        system = build_system(p_s=0.75, n_peers=40)
        sizes = list(system.snetwork_sizes().values())
        assert max(sizes) - min(sizes) <= 1  # "s-network with a smaller size"

    def test_speers_share_anchor_pid(self, small_system):
        peers = {p.address: p for p in small_system.alive_peers()}
        for p in small_system.s_peers():
            assert p.p_id == peers[p.t_peer].p_id

    def test_segment_lo_matches_anchor(self, small_system):
        peers = {p.address: p for p in small_system.alive_peers()}
        for p in small_system.s_peers():
            anchor = peers[p.t_peer]
            # May be stale-narrow after ring growth, never stale-wide.
            assert small_system.idspace.in_interval(
                p.segment_lo, anchor.predecessor_pid, anchor.p_id,
                closed_left=True, closed_right=True,
            ) or p.segment_lo == anchor.predecessor_pid


class TestDeterminism:
    def test_same_seed_same_system(self):
        a = build_system(p_s=0.6, n_peers=30, seed=11)
        b = build_system(p_s=0.6, n_peers=30, seed=11)
        assert [(p.address, p.role, p.p_id) for p in a.peers.values()] == [
            (p.address, p.role, p.p_id) for p in b.peers.values()
        ]

    def test_different_seed_differs(self):
        a = build_system(p_s=0.6, n_peers=30, seed=11)
        b = build_system(p_s=0.6, n_peers=30, seed=12)
        assert [p.p_id for p in a.t_peers()] != [p.p_id for p in b.t_peers()]


class TestConstruction:
    def test_build_twice_rejected(self, small_system):
        with pytest.raises(RuntimeError):
            small_system.build()

    def test_topology_too_small_rejected(self):
        from repro.net import TransitStubConfig, generate_transit_stub
        import numpy as np

        tiny = generate_transit_stub(
            TransitStubConfig(
                transit_domains=1,
                transit_nodes_per_domain=2,
                stub_domains_per_transit_node=1,
                stub_nodes_per_domain=2,
            ),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="hosts"):
            HybridSystem(HybridConfig(), n_peers=50, topology=tiny)

    def test_dynamic_add_peer(self, small_system):
        before = len(small_system.alive_peers())
        peer = small_system.add_peer()
        assert peer.joined
        assert len(small_system.alive_peers()) == before + 1
        check_ring(small_system)
        check_trees(small_system)

    def test_finger_mode_installs_fingers(self):
        system = build_system(p_s=0.3, n_peers=30, ring_routing="finger")
        for p in system.t_peers():
            assert p.fingers, "finger table empty"
            addrs = {a for _, a in p.fingers}
            assert p.address not in addrs
