"""Data-plane tests: store/lookup routing, both placement schemes,
flood semantics, refloods, connum accounting, BitTorrent mode
(Sections 3.4, 5.5)."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system


def populate(system, n_items, prefix="k"):
    peers = [p.address for p in system.alive_peers()]
    items = [(peers[i % len(peers)], f"{prefix}{i}", i) for i in range(n_items)]
    system.populate(items)
    return items


class TestStoreRouting:
    def test_items_land_in_owning_segment(self):
        system = build_system(p_s=0.6, n_peers=30)
        populate(system, 120)
        peers = {p.address: p for p in system.alive_peers()}
        for p in system.alive_peers():
            anchor = p if p.role == "t" else peers[p.t_peer]
            for item in p.database:
                assert anchor.owns(item.d_id), (
                    f"{item.key} stored at {p.address} outside segment of "
                    f"anchor {anchor.address}"
                )

    def test_no_item_lost_or_duplicated(self):
        system = build_system(p_s=0.6, n_peers=30)
        populate(system, 150)
        keys = []
        for p in system.alive_peers():
            keys.extend(i.key for i in p.database)
        assert len(keys) == 150
        assert len(set(keys)) == 150

    def test_direct_placement_concentrates_on_tpeers(self):
        system = build_system(p_s=0.8, n_peers=40, placement="direct", seed=8)
        populate(system, 200)
        t_items = sum(len(p.database) for p in system.t_peers())
        s_items = sum(len(p.database) for p in system.s_peers())
        # Remote inserts all end at t-peers; only locally-generated
        # items can sit on s-peers.
        assert t_items > s_items

    def test_spread_placement_reaches_speers(self):
        system = build_system(p_s=0.8, n_peers=40, placement="spread", seed=8)
        populate(system, 200)
        s_with_data = sum(1 for p in system.s_peers() if len(p.database) > 0)
        assert s_with_data > len(system.s_peers()) / 4

    def test_spread_flatter_than_direct(self):
        from repro.metrics import gini

        def build_and_gini(placement):
            system = build_system(p_s=0.8, n_peers=40, placement=placement, seed=8)
            populate(system, 300)
            return gini(system.data_distribution())

        assert build_and_gini("spread") < build_and_gini("direct")


class TestLookup:
    def test_all_lookups_succeed_with_ample_ttl(self):
        system = build_system(p_s=0.7, n_peers=30, ttl=8)
        populate(system, 90)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 11) % len(alive)], f"k{i}") for i in range(90)])
        stats = system.query_stats()
        assert stats.failure_ratio == 0.0
        assert stats.successes == 90

    def test_lookup_for_absent_key_fails(self):
        system = build_system(p_s=0.5, n_peers=20)
        populate(system, 10)
        origin = system.alive_peers()[0].address
        system.run_lookups([(origin, "no-such-key")])
        stats = system.query_stats()
        assert stats.failures == 1

    def test_small_ttl_misses_deep_items(self):
        """With ttl=1 and deep trees, some spread items are unreachable."""
        system = build_system(p_s=0.9, n_peers=40, ttl=1, delta=2, seed=3)
        populate(system, 200)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups(
            [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(200)]
        )
        assert system.query_stats().failure_ratio > 0.0

    def test_reflood_recovers_small_ttl_failures(self):
        base = dict(p_s=0.9, n_peers=40, delta=2, seed=3)
        no_retry = build_system(ttl=1, **base)
        populate(no_retry, 150)
        alive = [p.address for p in no_retry.alive_peers()]
        pairs = [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(150)]
        no_retry.run_lookups(pairs)
        base_fail = no_retry.query_stats().failure_ratio

        retry = build_system(
            ttl=1, max_refloods=3, reflood_ttl_step=2,
            lookup_timeout=5_000.0, **base,
        )
        populate(retry, 150)
        alive = [p.address for p in retry.alive_peers()]
        pairs = [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(150)]
        retry.run_lookups(pairs)
        retry_stats = retry.query_stats()
        assert retry_stats.failure_ratio < base_fail
        refloods = sum(r.refloods for r in retry.queries.records())
        assert refloods > 0

    def test_local_lookup_cheaper_than_remote(self):
        system = build_system(p_s=0.7, n_peers=30, ttl=6)
        populate(system, 120)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 5) % len(alive)], f"k{i}") for i in range(120)])
        recs = system.queries.records()
        local = [r.latency for r in recs if r.local and r.status == "success"]
        remote = [r.latency for r in recs if not r.local and r.status == "success"]
        if local and remote:
            assert sum(local) / len(local) < sum(remote) / len(remote)

    def test_tree_flood_contacts_each_peer_once(self):
        """The tree guarantees zero duplicate deliveries (Section 3.2.2)."""
        system = build_system(p_s=0.8, n_peers=40, ttl=8)
        populate(system, 100)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 3) % len(alive)], f"k{i}") for i in range(100)])
        assert system.query_stats().duplicate_contacts == 0

    def test_mesh_ablation_creates_duplicates(self):
        system = build_system(
            p_s=0.8, n_peers=40, ttl=8, mesh_extra_links=2, seed=5
        )
        populate(system, 100)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 3) % len(alive)], f"k{i}") for i in range(100)])
        assert system.query_stats().duplicate_contacts > 0

    def test_connum_grows_with_structured_share(self):
        def connum_at(p_s):
            system = build_system(p_s=p_s, n_peers=40, seed=4)
            populate(system, 80)
            alive = [p.address for p in system.alive_peers()]
            system.run_lookups(
                [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(80)]
            )
            return system.query_stats().connum

        assert connum_at(0.0) > connum_at(0.8)

    def test_finger_routing_reduces_contacts(self):
        def contacts(routing):
            system = build_system(p_s=0.2, n_peers=40, ring_routing=routing, seed=4)
            populate(system, 60)
            alive = [p.address for p in system.alive_peers()]
            system.run_lookups(
                [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(60)]
            )
            stats = system.query_stats()
            assert stats.failure_ratio == 0.0
            return stats.connum

        assert contacts("finger") < contacts("linear")


class TestBitTorrentMode:
    def test_bt_lookups_succeed_without_flooding(self):
        system = build_system(p_s=0.8, n_peers=30, snetwork_style="bittorrent")
        populate(system, 90)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 11) % len(alive)], f"k{i}") for i in range(90)])
        stats = system.query_stats()
        assert stats.failure_ratio == 0.0
        # Tracker-based resolution contacts far fewer peers than floods.
        gnutella = build_system(p_s=0.8, n_peers=30)
        populate(gnutella, 90)
        alive = [p.address for p in gnutella.alive_peers()]
        gnutella.run_lookups(
            [(alive[(i * 11) % len(alive)], f"k{i}") for i in range(90)]
        )
        assert stats.connum < gnutella.query_stats().connum

    def test_bt_tracker_index_covers_snetwork_items(self):
        system = build_system(p_s=0.8, n_peers=30, snetwork_style="bittorrent")
        populate(system, 90)
        peers = {p.address: p for p in system.alive_peers()}
        for t in system.t_peers():
            for key, holder in t.bt_index.items():
                assert key in peers[holder].database

    def test_bt_negative_reply_fails_fast(self):
        system = build_system(p_s=0.8, n_peers=20, snetwork_style="bittorrent")
        origin = system.s_peers()[0].address
        start = system.engine.now
        system.run_lookups([(origin, "missing:key")])
        stats = system.query_stats()
        assert stats.failures == 1
        # Resolved well before the lookup timeout would have fired.
        assert system.engine.now - start < system.config.lookup_timeout
