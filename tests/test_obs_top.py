"""Tests for the ``repro top`` snapshot diffing and rendering."""

from __future__ import annotations

import io

from repro.obs import MetricsRegistry, snapshot_delta
from repro.obs.bridge import declare_protocol_metrics
from repro.obs.top import render_top


def _snapshot(frames=0, hops=()):
    reg = MetricsRegistry()
    fams = declare_protocol_metrics(reg)
    reg.gauge("repro_uptime_seconds", "uptime").set(42.0)
    if frames:
        fams["frames"].labels("tx", "Hello").inc(frames)
    for h in hops:
        fams["hops"].observe(h)
    return reg.snapshot()


def test_rates_come_from_counter_deltas():
    prev = _snapshot(frames=10)
    cur = _snapshot(frames=30)
    rows = {r[0]: r for r in snapshot_delta(prev, cur, elapsed=2.0)}
    assert rows["frames"][1] == "10.0/s"  # (30-10)/2


def test_counter_rate_sums_across_label_children():
    reg = MetricsRegistry()
    fam = declare_protocol_metrics(reg)["frames"]
    fam.labels("tx", "Hello").inc(4)
    fam.labels("rx", "Hello").inc(6)
    rows = {r[0]: r for r in snapshot_delta(_snapshot(), reg.snapshot(), 1.0)}
    assert rows["frames"][1] == "10.0/s"


def test_histogram_rows_carry_quantiles():
    cur = _snapshot(hops=(1, 2, 2, 3, 8))
    rows = {r[0]: r for r in snapshot_delta(_snapshot(), cur, elapsed=1.0)}
    series, rate, p50, p99 = rows["lookup hops"]
    assert rate == "5.0/s"
    assert float(p50) <= float(p99)
    assert float(p99) <= 10.0  # inside the hop bucket ladder


def test_empty_histogram_renders_placeholder():
    rows = {r[0]: r for r in snapshot_delta(_snapshot(), _snapshot(), 1.0)}
    assert rows["lookup hops"] == ("lookup hops", "0.0/s", "-", "-")


def test_missing_families_do_not_crash():
    # A bootstrap node never declares lookup histograms; top must cope.
    rows = snapshot_delta({}, {}, elapsed=1.0)
    assert all(len(r) == 4 for r in rows)


def test_render_top_includes_endpoint_and_uptime():
    table = render_top("127.0.0.1", 4567, _snapshot(), _snapshot(frames=5), 1.0)
    assert "127.0.0.1:4567" in table
    assert "uptime 42s" in table
    assert "p99" in table


def test_run_top_renders_count_frames(monkeypatch):
    from repro.obs import top as top_mod

    snaps = iter([_snapshot(), _snapshot(frames=3), _snapshot(frames=9)])
    monkeypatch.setattr(
        top_mod, "fetch_snapshot", lambda host, port, timeout=5.0: next(snaps)
    )
    monkeypatch.setattr(top_mod.time, "sleep", lambda s: None)
    out = io.StringIO()
    top_mod.run_top("127.0.0.1", 1, interval=0.0, count=2, out=out)
    text = out.getvalue()
    assert text.count("repro top --") == 2
    assert "\x1b[2J" not in text  # no clear-screen on non-tty output
