"""Unit tests for the server's ring directory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RingDirectory


def make_ring() -> RingDirectory:
    ring = RingDirectory()
    for pid, addr in [(100, 1), (200, 2), (300, 3), (400, 4)]:
        ring.insert(pid, addr)
    return ring


class TestMembership:
    def test_insert_and_lookup(self):
        ring = make_ring()
        assert len(ring) == 4
        assert 2 in ring
        assert ring.pid_of(2) == 200
        assert ring.pid_of(99) is None

    def test_duplicate_address_rejected(self):
        ring = make_ring()
        with pytest.raises(ValueError):
            ring.insert(500, 2)

    def test_duplicate_pid_rejected(self):
        ring = make_ring()
        with pytest.raises(ValueError):
            ring.insert(200, 9)

    def test_remove(self):
        ring = make_ring()
        ring.remove(2)
        assert 2 not in ring
        assert len(ring) == 3
        ring.remove(2)  # idempotent

    def test_substitute_keeps_pid(self):
        ring = make_ring()
        ring.substitute(3, 30)
        assert 3 not in ring
        assert ring.pid_of(30) == 300
        assert len(ring) == 4

    def test_members_sorted(self):
        ring = RingDirectory()
        for pid, addr in [(300, 3), (100, 1), (200, 2)]:
            ring.insert(pid, addr)
        assert ring.members() == [(100, 1), (200, 2), (300, 3)]


class TestQueries:
    def test_owner_of(self):
        ring = make_ring()
        assert ring.owner_of(150) == (200, 2)
        assert ring.owner_of(200) == (200, 2)  # boundary: owner inclusive
        assert ring.owner_of(201) == (300, 3)
        assert ring.owner_of(450) == (100, 1)  # wraps
        assert ring.owner_of(50) == (100, 1)

    def test_successor_of_pid(self):
        ring = make_ring()
        assert ring.successor_of_pid(100) == (200, 2)
        assert ring.successor_of_pid(400) == (100, 1)  # wraps
        assert ring.successor_of_pid(150) == (200, 2)

    def test_neighbors_of(self):
        ring = make_ring()
        (pp, pa), (sp, sa) = ring.neighbors_of(2)
        assert (pp, pa) == (100, 1)
        assert (sp, sa) == (300, 3)
        (pp, pa), (sp, sa) = ring.neighbors_of(1)
        assert (pp, pa) == (400, 4)  # wraps backward

    def test_neighbors_of_missing_raises(self):
        with pytest.raises(LookupError):
            make_ring().neighbors_of(77)

    def test_empty_ring_queries_raise(self):
        ring = RingDirectory()
        with pytest.raises(LookupError):
            ring.owner_of(5)
        with pytest.raises(LookupError):
            ring.successor_of_pid(5)

    def test_single_member_self_neighbors(self):
        ring = RingDirectory()
        ring.insert(100, 1)
        (pp, pa), (sp, sa) = ring.neighbors_of(1)
        assert pa == sa == 1

    def test_random_member(self):
        ring = make_ring()
        rng = np.random.default_rng(0)
        seen = {ring.random_member(rng)[1] for _ in range(50)}
        assert seen <= {1, 2, 3, 4}
        assert len(seen) > 1
