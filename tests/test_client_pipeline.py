"""Pipelined client connections: correlation, ordering, leak safety.

The fake servers here speak the real wire codec but control *reply
order* deliberately: batching requests and answering newest-first
proves the connection matches replies by request id rather than
arrival order; closing mid-flight proves no future leaks.  The final
tests drive the real stack (localnet) through one pipelined connection
and cover the loadgen aggregation helpers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.lookup import QueryRegistry, SUCCESS
from repro.loadgen import (
    POLLING_ERA_GET_OPS,
    LoadResult,
    LoadSpec,
    VerbStats,
    smoke_result_ok,
)
from repro.runtime import (
    ClientConnection,
    ClientGet,
    ClientPut,
    ClientReply,
    LocalNet,
)
from repro.runtime.client import runtime_codec
from repro.runtime.localnet import fast_config
from repro.runtime.node import _query_id_block


# ----------------------------------------------------------------------
# Fake servers speaking the real codec with scripted reply behaviour
# ----------------------------------------------------------------------
class _FakeServer:
    """Accepts client verbs; subclasses decide when/how to reply."""

    def __init__(self) -> None:
        self.codec = runtime_codec()
        self.server: asyncio.AbstractServer | None = None
        self.host = "127.0.0.1"
        self.port = 0

    async def start(self) -> "_FakeServer":
        self.server = await asyncio.start_server(self._serve, self.host, 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        from repro.runtime.aio_transport import frame_stream

        try:
            await self.handle(frame_stream(reader), writer)
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def handle(self, frames, writer) -> None:
        raise NotImplementedError


class _ReverseBatchServer(_FakeServer):
    """Answers each batch of ``batch`` requests in *reverse* order."""

    def __init__(self, batch: int = 8) -> None:
        super().__init__()
        self.batch = batch

    async def handle(self, frames, writer) -> None:
        pending = []
        async for payload in frames:
            msg = self.codec.decode(payload)
            pending.append(msg)
            if len(pending) < self.batch:
                continue
            for req in reversed(pending):
                reply = ClientReply(
                    ok=True,
                    payload={"key": req.key, "rid": req.request_id},
                    request_id=req.request_id,
                )
                writer.write(self.codec.frame(reply))
            await writer.drain()
            pending.clear()


class _DropAfterServer(_FakeServer):
    """Replies to the first ``answer`` requests, then drops the link."""

    def __init__(self, answer: int, total: int) -> None:
        super().__init__()
        self.answer = answer
        self.total = total

    async def handle(self, frames, writer) -> None:
        seen = 0
        async for payload in frames:
            msg = self.codec.decode(payload)
            seen += 1
            if seen <= self.answer:
                reply = ClientReply(
                    ok=True, payload=msg.key, request_id=msg.request_id
                )
                writer.write(self.codec.frame(reply))
                await writer.drain()
            if seen == self.total:
                return  # close with (total - answer) requests unanswered


class _UncorrelatedServer(_FakeServer):
    """Pre-correlation node: answers in arrival order with request_id=0."""

    async def handle(self, frames, writer) -> None:
        async for payload in frames:
            msg = self.codec.decode(payload)
            writer.write(
                self.codec.frame(ClientReply(ok=True, payload=msg.key))
            )
            await writer.drain()


# ----------------------------------------------------------------------
def test_out_of_order_replies_match_their_requests() -> None:
    """64+ concurrent ops on one connection, replies forced out of order."""

    async def scenario() -> None:
        server = await _ReverseBatchServer(batch=8).start()
        try:
            async with ClientConnection(server.host, server.port) as conn:
                async def one(i: int) -> None:
                    key = f"k/{i}"
                    msg = ClientGet(key=key) if i % 2 else ClientPut(
                        key=key, value=f"v{i}"
                    )
                    reply = await conn.request(msg, timeout=10)
                    assert reply.ok
                    # The reply body names the request it answers; it
                    # must be *this* one even though the server answered
                    # each batch newest-first.
                    assert reply.payload["key"] == key
                    assert reply.payload["rid"] == reply.request_id == msg.request_id

                await asyncio.gather(*(one(i) for i in range(96)))
                assert conn.inflight == 0
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_connection_drop_fails_inflight_futures_without_leaks() -> None:
    async def scenario() -> None:
        server = await _DropAfterServer(answer=3, total=10).start()
        try:
            conn = await ClientConnection(server.host, server.port).connect()
            results = await asyncio.gather(
                *(conn.request(ClientGet(key=f"k/{i}"), timeout=10) for i in range(10)),
                return_exceptions=True,
            )
            replies = [r for r in results if isinstance(r, ClientReply)]
            failures = [r for r in results if isinstance(r, ConnectionError)]
            assert len(replies) == 3
            assert len(failures) == 7
            assert conn.inflight == 0, "futures leaked after connection drop"
            with pytest.raises(ConnectionError):
                await conn.request(ClientGet(key="late"))
            await conn.aclose()
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_uncorrelated_replies_fall_back_to_fifo() -> None:
    """request_id=0 replies (old server) match the oldest in-flight op."""

    async def scenario() -> None:
        server = await _UncorrelatedServer().start()
        try:
            async with ClientConnection(server.host, server.port) as conn:
                replies = await asyncio.gather(
                    *(conn.request(ClientGet(key=f"k/{i}"), timeout=10) for i in range(8))
                )
                # The server answers strictly in arrival order; FIFO
                # matching must give every waiter its own key back.
                assert [r.payload for r in replies] == [f"k/{i}" for i in range(8)]
        finally:
            await server.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
def test_pipelined_ops_against_real_localnet() -> None:
    """End to end: 64 interleaved put/get on one connection, real nodes."""

    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=13, config=fast_config())
        await net.start(join_timeout=20)
        await net.wait_converged(timeout=20)
        try:
            node = net.nodes[0]
            async with ClientConnection(node.host, node.port) as conn:
                puts = await asyncio.gather(
                    *(conn.request(ClientPut(key=f"p/{i}", value=i), timeout=15)
                      for i in range(32))
                )
                assert all(r.ok for r in puts)
                await asyncio.sleep(0.3)  # let StoreRequests settle
                mixed = await asyncio.gather(
                    *(conn.request(ClientGet(key=f"p/{i}"), timeout=15)
                      for i in range(32)),
                    *(conn.request(ClientPut(key=f"q/{i}", value=i), timeout=15)
                      for i in range(32)),
                )
                assert all(r.ok for r in mixed), [r.error for r in mixed if not r.ok]
                gets = mixed[:32]
                assert [r.payload["value"] for r in gets] == list(range(32))
                assert conn.inflight == 0
        finally:
            await net.stop()
        leftovers = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        assert not leftovers, f"leaked tasks: {leftovers}"

    asyncio.run(scenario())


def test_get_distinguishes_missing_value_from_stored_none() -> None:
    """Satellite: stored None is ok=True; holder-without-value is an error."""

    async def scenario() -> None:
        net = LocalNet(t_peers=1, s_peers=0, seed=3, config=fast_config())
        await net.start(join_timeout=20)
        await net.wait_converged(timeout=20)
        try:
            node = net.nodes[0]
            async with ClientConnection(node.host, node.port) as conn:
                reply = await conn.request(
                    ClientPut(key="none-key", value=None), timeout=15
                )
                assert reply.ok
                reply = await conn.request(ClientGet(key="none-key"), timeout=15)
                assert reply.ok, reply.error
                assert reply.payload["value"] is None

                # Forge the ambiguous case: the lookup resolves with a
                # holder, but no value ever lands (no DataFound payload,
                # nothing in the local database or cache).
                rec = node.queries.start(
                    origin=node.peer.address, key="ghost", d_id=1,
                    time=0.0, local=True,
                )
                node.queries.succeed(rec.query_id, 1.0, holder=424242)
                node.peer.lookup = lambda key: rec.query_id  # type: ignore[method-assign]
                reply = await conn.request(ClientGet(key="ghost"), timeout=15)
                assert not reply.ok
                assert "value missing" in (reply.error or "")
                assert "424242" in (reply.error or "")
        finally:
            await net.stop()

    asyncio.run(scenario())


def test_v1_json_client_against_v2_node() -> None:
    """Old client on the JSON wire format still completes put/get."""

    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=7, config=fast_config())
        await net.start(join_timeout=20)
        await net.wait_converged(timeout=20)
        try:
            from repro.runtime.codec import WIRE_V1

            node = net.nodes[0]
            old_codec = runtime_codec(version=WIRE_V1)
            async with ClientConnection(
                node.host, node.port, codec=old_codec
            ) as conn:
                reply = await conn.request(
                    ClientPut(key="mixed", value="ok"), timeout=15
                )
                assert reply.ok, reply.error
                reply = await conn.request(ClientGet(key="mixed"), timeout=15)
                assert reply.ok, reply.error
                assert reply.payload["value"] == "ok"
        finally:
            await net.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
def test_query_id_blocks_are_disjoint_and_rebase_guards() -> None:
    a = _query_id_block(0x0A00000100_1234)
    b = _query_id_block(0x0A00000200_1234)
    assert a != b
    assert 0 <= a < 2**63 and 0 <= b < 2**63

    reg = QueryRegistry()
    reg.rebase(a)
    rec = reg.start(origin=1, key="k", d_id=2, time=0.0, local=False)
    assert rec.query_id == a
    reg.contact(rec.query_id)
    assert rec.contacts == 1  # flat arrays index relative to the base
    reg.succeed(rec.query_id, 1.0, holder=7)
    assert rec.status == SUCCESS
    with pytest.raises(RuntimeError):
        reg.rebase(0)  # too late: ids already handed out


def test_registry_watch_fires_on_completion_and_immediately_when_done() -> None:
    reg = QueryRegistry()
    rec = reg.start(origin=1, key="k", d_id=2, time=0.0, local=False)
    fired: list = []
    assert reg.watch(rec.query_id, fired.append)
    assert not fired  # still pending
    reg.succeed(rec.query_id, 5.0, holder=9)
    assert fired == [rec]
    # Watching an already-completed query fires synchronously.
    late: list = []
    assert reg.watch(rec.query_id, late.append)
    assert late == [rec]
    assert not reg.watch(999_999, late.append)  # unknown id

    rec2 = reg.start(origin=1, key="k2", d_id=3, time=0.0, local=False)
    reg.watch(rec2.query_id, fired.append)
    reg.unwatch(rec2.query_id)
    reg.fail(rec2.query_id, 9.0)
    assert fired == [rec]  # unwatched: no callback


# ----------------------------------------------------------------------
def test_loadgen_stats_and_smoke_gate() -> None:
    stats = VerbStats()
    for ms in range(1, 1001):
        stats.record(float(ms))
    summary = stats.summary()
    assert summary["ops"] == 1000 and summary["errors"] == 0
    assert 495 <= summary["p50_ms"] <= 505
    assert 985 <= summary["p99_ms"] <= 995
    assert 998 <= summary["p999_ms"] <= 1000

    good = LoadResult(
        mode="closed", clients=1, pipeline=1, requested_rate=None,
        measured_seconds=2.0, put=VerbStats(), get=stats,
    )
    assert good.get_throughput_ops == 500.0
    assert smoke_result_ok(good, min_get_ops=10 * POLLING_ERA_GET_OPS) == []

    bad = LoadResult(
        mode="closed", clients=1, pipeline=1, requested_rate=None,
        measured_seconds=2.0, put=VerbStats(), get=VerbStats(),
    )
    bad.get.record_error("boom")
    problems = smoke_result_ok(bad, min_get_ops=10 * POLLING_ERA_GET_OPS)
    assert len(problems) >= 2  # errored ops + throughput floor

    with pytest.raises(ValueError):
        LoadSpec(endpoints=[])
    with pytest.raises(ValueError):
        LoadSpec(endpoints=[("h", 1)], get_fraction=1.5)
    with pytest.raises(ValueError):
        LoadSpec(endpoints=[("h", 1)], rate=0.0)
    round_trip = LoadResult(
        mode="open", clients=2, pipeline=4, requested_rate=100.0,
        measured_seconds=1.0, put=VerbStats(), get=stats, shed=3,
    ).to_dict()
    assert round_trip["shed"] == 3
    assert round_trip["get"]["ops"] == 1000
