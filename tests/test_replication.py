"""Tests for the repro.replica durability subsystem.

``replication_factor == 1`` must reproduce the paper exactly (single
copies, crash losses as in Fig. 5b); ``k > 1`` mirrors every segment
onto the next ``k-1`` ring successors, reports quorum verdicts for
tracked writes, and promotes replica copies on failover.
"""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system


def populate(system, n):
    peers = [p.address for p in system.alive_peers()]
    system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(n)])
    return peers


def ring_successor(system, peer):
    by_addr = {p.address: p for p in system.t_peers()}
    return by_addr[peer.successor]


class TestPlacement:
    def test_k1_is_paper_behavior(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=1)
        populate(system, 90)
        assert system.total_items() == 90  # single copies
        assert system.total_replicas() == 0

    def test_k2_mirrors_every_segment_once(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=2, seed=6)
        populate(system, 90)
        # Exactly one primary per item (owner t-peer) plus exactly one
        # replica copy (its ring successor).
        assert system.total_items() == 90
        assert system.total_replicas() == 90
        for owner in system.t_peers():
            suc = ring_successor(system, owner)
            for item in owner.database:
                copy = suc.replicas.get(item.key)
                assert copy is not None and copy.value == item.value

    def test_k3_uses_two_distinct_successors(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=3, seed=6)
        populate(system, 60)
        assert system.total_items() == 60
        assert system.total_replicas() == 120
        for owner in system.t_peers():
            suc1 = ring_successor(system, owner)
            suc2 = ring_successor(system, suc1)
            assert len({owner.address, suc1.address, suc2.address}) == 3
            for item in owner.database:
                assert suc1.replicas.get(item.key) is not None
                assert suc2.replicas.get(item.key) is not None

    def test_primaries_stay_at_owner_t_peer(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=2, seed=6)
        populate(system, 60)
        for p in system.alive_peers():
            if p.role == "s":
                assert len(p.database) == 0
            else:
                for item in p.database:
                    assert p.owns(item.d_id)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(replication_factor=0).validate()
        with pytest.raises(ValueError):
            HybridConfig(replication_factor=2, write_quorum=3).validate()
        with pytest.raises(ValueError):
            HybridConfig(write_quorum=0).validate()
        with pytest.raises(ValueError):
            HybridConfig(replica_ack_timeout=0.0).validate()


class TestQuorumWrites:
    def test_tracked_write_commits_at_quorum(self):
        system = build_system(
            p_s=0.7, n_peers=30, replication_factor=2, write_quorum=2, seed=6
        )
        origin = system.s_peers()[0]
        verdicts = []
        origin.store_durable("qkey", 42, lambda ok, lat: verdicts.append((ok, lat)))
        system.engine.run()
        assert len(verdicts) == 1
        ok, latency = verdicts[0]
        assert ok is True
        assert latency >= 0.0
        # The item landed at its owner and on the owner's successor.
        owner = next(p for p in system.t_peers() if p.database.get("qkey"))
        assert ring_successor(system, owner).replicas.get("qkey") is not None

    def test_quorum_one_commits_immediately(self):
        system = build_system(
            p_s=0.7, n_peers=30, replication_factor=3, write_quorum=1, seed=6
        )
        origin = system.t_peers()[0]
        verdicts = []
        origin.store_durable("qkey", 1, lambda ok, lat: verdicts.append(ok))
        system.engine.run()
        assert verdicts == [True]

    def test_unreachable_quorum_reports_failure(self):
        # A single-member ring has no successors: quorum 2 cannot exist.
        config = HybridConfig(p_s=0.0, replication_factor=2, write_quorum=2)
        system = HybridSystem(config, n_peers=1, seed=3)
        system.build()
        system.engine.run()
        only = system.t_peers()[0]
        verdicts = []
        only.store_durable("qkey", 1, lambda ok, lat: verdicts.append(ok))
        system.engine.run()
        assert verdicts == [False]
        # The primary copy still exists (durability failed, write landed).
        assert only.database.get("qkey") is not None


class TestAntiEntropy:
    def test_periodic_sync_restores_lost_replica(self):
        system = build_system(
            p_s=0.7, n_peers=30, replication_factor=2,
            replica_sync_period=5_000.0, seed=6,
        )
        populate(system, 60)
        owner = next(p for p in system.t_peers() if len(p.database) > 0)
        suc = ring_successor(system, owner)
        item = next(iter(owner.database))
        assert suc.replicas.get(item.key) is not None
        suc.replicas.delete(item.key)
        system.settle(12_000.0)  # > two sync periods
        restored = suc.replicas.get(item.key)
        assert restored is not None and restored.value == item.value

    def test_sync_lag_trace_emitted(self):
        records = []
        config = HybridConfig(
            p_s=0.7, replication_factor=2, replica_sync_period=5_000.0
        )
        system = HybridSystem(config, n_peers=30, seed=6)
        system.trace.subscribe("replica.lag", records.append)
        system.build()
        system.settle(2_000.0)
        populate(system, 30)
        suc = ring_successor(system, system.t_peers()[0])
        for key in list(suc.replicas.keys()):
            suc.replicas.delete(key)
        system.settle(6_000.0)
        assert any(r.payload.get("items", 0) > 0 for r in records)


class TestCrashFailover:
    def test_promotion_pulls_segment_from_replicas(self):
        records = []
        config = HybridConfig(
            p_s=0.7, ttl=8, heartbeats_enabled=True,
            lookup_timeout=20_000.0, replication_factor=2,
        )
        system = HybridSystem(config, n_peers=40, seed=7)
        system.trace.subscribe("replica.failover", records.append)
        system.build()
        system.settle(2_000.0)
        peers = populate(system, 120)
        victim = next(
            p for p in system.t_peers() if p.children and len(p.database) > 0
        )
        lost_keys = [item.key for item in victim.database]
        system.crash_peers([victim.address])
        system.settle(40_000.0)
        assert records, "no failover event emitted"
        # Every key of the crashed segment is owned (in a primary db)
        # by some live peer again.
        recovered = {
            item.key for p in system.alive_peers() for item in p.database
        }
        assert set(lost_keys) <= recovered
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups(
            [(alive[i % len(alive)], key) for i, key in enumerate(lost_keys)]
        )
        assert system.query_stats().failure_ratio == 0.0

    def _failure_after_crash(self, k: int) -> float:
        config = HybridConfig(
            p_s=0.7, ttl=8, heartbeats_enabled=True,
            lookup_timeout=20_000.0, replication_factor=k,
        )
        system = HybridSystem(config, n_peers=60, seed=7)
        system.build()
        populate(system, 180)
        system.crash_random_fraction(0.2)
        system.settle(40_000.0)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups(
            [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(180)]
        )
        return system.query_stats().failure_ratio

    def test_replication_cuts_crash_losses(self):
        single = self._failure_after_crash(1)
        double = self._failure_after_crash(2)
        assert double < 0.7 * single

    def test_no_crash_no_failures(self):
        system = build_system(p_s=0.7, n_peers=30, ttl=8, replication_factor=2)
        peers = populate(system, 90)
        system.run_lookups([(peers[(i * 3) % len(peers)], f"k{i}") for i in range(90)])
        assert system.query_stats().failure_ratio == 0.0
