"""Tests for the replication extension."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system


def populate(system, n):
    peers = [p.address for p in system.alive_peers()]
    system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(n)])
    return peers


class TestPlacement:
    def test_k1_is_paper_behavior(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=1)
        populate(system, 90)
        assert system.total_items() == 90  # single copies

    def test_k2_doubles_copies_for_remote_items(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=2, seed=6)
        populate(system, 90)
        # Every item has >= 1 copy; most have 2 (local inserts to a
        # t-peer with no children can't replicate further).
        total = system.total_items()
        assert 90 < total <= 180
        keys = {}
        for p in system.alive_peers():
            for item in p.database:
                keys.setdefault(item.key, []).append(p.address)
        assert all(len(v) <= 2 for v in keys.values())
        assert sum(1 for v in keys.values() if len(v) == 2) > 45

    def test_replicas_live_on_distinct_peers(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=2, seed=6)
        populate(system, 60)
        for p in system.alive_peers():
            keys = [i.key for i in p.database]
            assert len(keys) == len(set(keys))  # no double copy on one peer

    def test_replicas_stay_in_owner_segment(self):
        system = build_system(p_s=0.7, n_peers=30, replication_factor=3, seed=6)
        populate(system, 60)
        anchors = {p.address: p for p in system.t_peers()}
        for p in system.alive_peers():
            anchor = p if p.role == "t" else anchors[p.t_peer]
            for item in p.database:
                assert anchor.owns(item.d_id)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(replication_factor=0).validate()


class TestCrashResilience:
    def _failure_after_crash(self, k: int) -> float:
        config = HybridConfig(
            p_s=0.7, ttl=8, heartbeats_enabled=True,
            lookup_timeout=20_000.0, replication_factor=k,
        )
        system = HybridSystem(config, n_peers=60, seed=7)
        system.build()
        peers = populate(system, 180)
        system.crash_random_fraction(0.2)
        system.settle(40_000.0)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups(
            [(alive[(i * 7) % len(alive)], f"k{i}") for i in range(180)]
        )
        return system.query_stats().failure_ratio

    def test_replication_cuts_crash_losses(self):
        # Replicas share an s-network, so the gain is sub-quadratic at
        # small N; still a strong reduction.
        single = self._failure_after_crash(1)
        double = self._failure_after_crash(2)
        assert double < 0.7 * single

    def test_no_crash_no_failures(self):
        system = build_system(p_s=0.7, n_peers=30, ttl=8, replication_factor=2)
        peers = populate(system, 90)
        system.run_lookups([(peers[(i * 3) % len(peers)], f"k{i}") for i in range(90)])
        assert system.query_stats().failure_ratio == 0.0
