"""Live-runtime integration: a real 5-node localnet over TCP sockets.

These tests boot 1 bootstrap daemon + 2 t-peers + 2 s-peers as asyncio
tasks in this process, with every protocol frame crossing a real
localhost socket.  They assert the ISSUE's acceptance criteria:
convergence against the bootstrap directory, put/get for a key owned by
a *remote* segment, survival of an injected connection drop via the
transport's retry/backoff, and teardown with no leaked tasks.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import ClientGet, ClientPut, ClientStatus, LocalNet, acall
from repro.runtime.localnet import fast_config


async def _booted_net() -> LocalNet:
    net = LocalNet(t_peers=2, s_peers=2, seed=11)
    await net.start(join_timeout=20)
    await net.wait_converged(timeout=20)
    return net


async def _put_then_remote_get(net: LocalNet, key: str, value: str) -> None:
    putter = net.nodes[0]
    reply = await acall(putter.host, putter.port, ClientPut(key=key, value=value))
    assert reply.ok, reply.error
    # Read the key back from a node whose own segment does NOT hold it,
    # so the lookup must traverse the t-network over the sockets.
    remote = net.node_for_key(key, putter)
    await asyncio.sleep(0.3)  # let the StoreRequest reach the owner
    reply = await acall(remote.host, remote.port, ClientGet(key=key), timeout=15)
    assert reply.ok, reply.error
    assert reply.payload["value"] == value


def _assert_no_leftover_tasks() -> None:
    leftovers = [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]
    assert not leftovers, f"leaked tasks: {leftovers}"


def test_localnet_converges_and_serves_remote_get() -> None:
    async def scenario() -> None:
        net = await _booted_net()
        try:
            # Convergence re-checked against the directory verb too.
            status = await acall(
                net.bootstrap.host, net.bootstrap.port, ClientStatus()
            )
            assert status.ok
            assert status.payload["t_count"] == 2
            assert status.payload["s_count"] == 2
            ring_addrs = {addr for _pid, addr in status.payload["ring"]}
            live_t = {n.peer.address for n in net.nodes if n.peer.role == "t"}
            assert ring_addrs == live_t

            await _put_then_remote_get(net, "alpha.txt", "first value")

            # Every node answers the status verb over its own socket.
            for node in net.nodes:
                s = await acall(node.host, node.port, ClientStatus())
                assert s.ok and s.payload["joined"]
        finally:
            await net.stop()
        _assert_no_leftover_tasks()

    asyncio.run(scenario())


def test_localnet_survives_connection_drop() -> None:
    async def scenario() -> None:
        net = await _booted_net()
        try:
            await _put_then_remote_get(net, "beta.txt", "before the drop")

            # Inject the failure: hard-abort every established inbound
            # connection on every daemon.  All pooled outbound
            # connections in the net are now dead; the next send on each
            # must detect the closed transport and reconnect through the
            # retry/backoff path.
            dropped = 0
            for daemon in [net.bootstrap, *net.nodes]:
                for writer in list(daemon._inbound.values()):
                    writer.transport.abort()
                    dropped += 1
            assert dropped > 0, "expected live pooled connections to drop"
            await asyncio.sleep(0.1)

            await _put_then_remote_get(net, "gamma.txt", "after the drop")
            # The drop must not have poisoned reachability bookkeeping.
            for node in net.nodes:
                assert node.transport.is_reachable(net.bootstrap.address)
        finally:
            await net.stop()
        _assert_no_leftover_tasks()

    asyncio.run(scenario())


def test_localnet_clean_shutdown_is_idempotent() -> None:
    async def scenario() -> None:
        net = await _booted_net()
        await net.stop()
        await net.stop()  # second stop is a no-op, not an error
        _assert_no_leftover_tasks()
        assert net.nodes == [] and net.bootstrap is None

    asyncio.run(scenario())


def test_localnet_requires_a_t_peer() -> None:
    with pytest.raises(ValueError):
        LocalNet(t_peers=0, s_peers=3)


def test_fast_config_overrides() -> None:
    cfg = fast_config(lookup_timeout=123.0)
    assert cfg.lookup_timeout == 123.0
    assert cfg.hello_period == 100.0
