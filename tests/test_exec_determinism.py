"""Satellite: sweeps are bit-identical at any parallelism/cache setting.

The acceptance bar for the parallel executor is that it changes *when*
cells run, never *what* they produce: the same declared sweep must
yield the same ordered ``CellResult`` sequence whether cells run
inline, fanned out over worker processes, or replayed from the
content-addressed cache.
"""

from __future__ import annotations

from repro.core import HybridConfig
from repro.exec import CellCache, CellExecutor, CellSpec
from repro.experiments import Scale

TINY = Scale(n_peers=30, n_keys=60, n_lookups=60, seed=11)

# A representative mix: plain cells across p_s, one non-default config
# knob, and one crash cell (exercises the failure path end to end).
SWEEP = [
    CellSpec(HybridConfig(p_s=0.1), TINY),
    CellSpec(HybridConfig(p_s=0.5), TINY),
    CellSpec(HybridConfig(p_s=0.5, ttl=6), TINY),
    CellSpec(HybridConfig(p_s=0.9), TINY),
    CellSpec(HybridConfig(p_s=0.5), TINY, crash_fraction=0.3),
]


def test_jobs1_jobs4_and_warm_cache_are_bit_identical(tmp_path):
    serial = CellExecutor(jobs=1).map(SWEEP)

    pooled = CellExecutor(jobs=4, cache=CellCache(tmp_path)).map(SWEEP)

    warm_executor = CellExecutor(jobs=1, cache=CellCache(tmp_path))
    warm = warm_executor.map(SWEEP)

    # Dataclass equality on floats is exact, so == means bit-identical.
    assert pooled == serial
    assert warm == serial
    assert warm_executor.stats.cache_hits == len(SWEEP)
    assert warm_executor.stats.executed == 0
