"""Wire codec: every registered message round-trips exactly, twice over.

The property test derives a value strategy from each dataclass field's
type annotation -- the same annotations the codec derives its v1
revivers *and* v2 struct packers from -- so any annotation shape a
future message introduces that either body format cannot round-trip
shows up here as a failing example.  Every round-trip property runs
under both wire versions; cross-version tests pin down that a strict
decoder *rejects* a foreign frame with :class:`CodecError` rather than
misparsing it.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Optional, Tuple, Union, get_args, get_origin, get_type_hints

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.messages import (
    FloodQuery,
    Hello,
    Message,
    RoleHandoff,
    ServerJoin,
    ServerJoinReply,
    wire_types,
)
from repro.runtime.client import client_types, runtime_codec
from repro.runtime.codec import (
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSION,
    CodecError,
    default_codec,
    format_endpoint,
    pack_endpoint,
    unpack_endpoint,
)

CODEC = runtime_codec()  # encodes v2, decodes both
CODEC_V1 = runtime_codec(version=WIRE_V1)  # encodes v1, decodes both
ALL_CLASSES = tuple(wire_types()) + tuple(client_types())

# Boundary ids the protocol actually produces: the id space is 32-bit.
ID_BOUNDARIES = [0, 1, 2**31, 2**32 - 1]

_ints = st.integers(min_value=-(2**53), max_value=2**53) | st.sampled_from(
    ID_BOUNDARIES
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_text = st.text(max_size=20)
# ``Any`` fields carry stored values: anything JSON-able plus bytes.
_any_value = st.none() | st.booleans() | _ints | _floats | _text | st.binary(max_size=32)


def _strategy_for(hint: Any) -> st.SearchStrategy:
    if hint is Any:
        return _any_value
    if hint is int:
        return _ints
    if hint is float:
        return _floats
    if hint is str:
        return _text
    if hint is bool:
        return st.booleans()
    if hint is bytes:
        return st.binary(max_size=32)
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=4).map(tuple)
        return st.tuples(*(_strategy_for(a) for a in args))
    if origin is Union:
        inner = [a for a in get_args(hint) if a is not type(None)]
        strategies = [_strategy_for(a) for a in inner]
        if type(None) in get_args(hint):
            strategies.append(st.none())
        return st.one_of(strategies)
    raise NotImplementedError(f"no strategy for annotation {hint!r}")


@st.composite
def messages(draw: st.DrawFn) -> Message:
    cls = draw(st.sampled_from(ALL_CLASSES))
    hints = get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.init:
            kwargs[f.name] = draw(_strategy_for(hints[f.name]))
    msg = cls(**kwargs)
    msg.sender = draw(_ints)
    msg.hop_count = draw(st.integers(min_value=0, max_value=64))
    return msg


@settings(max_examples=300, deadline=None)
@given(messages())
def test_roundtrip_equals_v2(msg: Message) -> None:
    decoded = CODEC.decode(CODEC.encode(msg))
    assert decoded == msg
    assert decoded.sender == msg.sender
    assert decoded.hop_count == msg.hop_count


@settings(max_examples=300, deadline=None)
@given(messages())
def test_roundtrip_equals_v1(msg: Message) -> None:
    decoded = CODEC_V1.decode(CODEC_V1.encode(msg))
    assert decoded == msg
    assert decoded.sender == msg.sender
    assert decoded.hop_count == msg.hop_count


@settings(max_examples=100, deadline=None)
@given(messages())
def test_cross_version_interop(msg: Message) -> None:
    """A default codec decodes the other default codec's frames."""
    assert CODEC.decode(CODEC_V1.encode(msg)) == msg
    assert CODEC_V1.decode(CODEC.encode(msg)) == msg


@given(messages())
@settings(max_examples=50, deadline=None)
def test_frame_strips_to_payload(msg: Message) -> None:
    for codec in (CODEC, CODEC_V1):
        frame = codec.frame(msg)
        assert CODEC.decode(frame[4:]) == msg
        # decode takes any bytes-like; memoryview is the zero-copy path
        # the daemons actually use.
        assert CODEC.decode(memoryview(frame)[4:]) == msg


def test_every_class_roundtrips_empty() -> None:
    """Default-constructed ("empty payload") instances survive the wire."""
    for cls in ALL_CLASSES:
        msg = cls()
        assert CODEC.decode(CODEC.encode(msg)) == msg
        assert CODEC.decode(CODEC_V1.encode(msg)) == msg


def test_every_class_has_v2_layout() -> None:
    """Every *current* message compiles a struct plan (no JSON fallback).

    If a future message's annotations defeat the packer derivation it
    still ships (as v1) -- but it should be a deliberate choice, so
    this test forces the author to look.
    """
    for cls in ALL_CLASSES:
        assert CODEC.has_v2_layout(cls), f"{cls.__name__} fell back to v1"


def test_boundary_ids_roundtrip() -> None:
    for codec in (CODEC, CODEC_V1):
        for p_id in ID_BOUNDARIES:
            msg = ServerJoinReply(role="t", p_id=p_id, entry_peer=p_id)
            assert CODEC.decode(codec.encode(msg)).p_id == p_id
            q = FloodQuery(d_id=p_id, key="k", origin=3, query_id=p_id, ttl=1)
            assert CODEC.decode(codec.encode(q)).d_id == p_id


def test_nested_tuples_revive_as_tuples() -> None:
    msg = RoleHandoff(
        p_id=7,
        fingers=((1, 2), (3, 4)),
        items=(("k", b"v", 9),),
        s_neighbors=(5, 6),
    )
    for codec in (CODEC, CODEC_V1):
        decoded = CODEC.decode(codec.encode(msg))
        assert decoded == msg
        assert isinstance(decoded.fingers, tuple)
        assert all(isinstance(f, tuple) for f in decoded.fingers)
        assert decoded.items[0][1] == b"v"


def test_type_ids_stable() -> None:
    """Ids come from __all__ order: same table on every process."""
    a, b = default_codec(), default_codec()
    for cls in wire_types():
        assert a.type_id_of(cls) == b.type_id_of(cls)


# ----------------------------------------------------------------------
# Version handling: strict decoders reject, never misparse
# ----------------------------------------------------------------------
def test_default_encodes_v2() -> None:
    assert CODEC.version == WIRE_VERSION == WIRE_V2
    payload = CODEC.encode(Hello())
    assert payload[0] == WIRE_V2
    assert CODEC_V1.encode(Hello())[0] == WIRE_V1


@settings(max_examples=100, deadline=None)
@given(messages())
def test_strict_v2_rejects_v1_frames(msg: Message) -> None:
    strict = runtime_codec(accept=(WIRE_V2,))
    with pytest.raises(CodecError):
        strict.decode(CODEC_V1.encode(msg))
    # and it still decodes its own format
    assert strict.decode(CODEC.encode(msg)) == msg


@settings(max_examples=100, deadline=None)
@given(messages())
def test_strict_v1_rejects_v2_frames(msg: Message) -> None:
    strict = runtime_codec(version=WIRE_V1, accept=(WIRE_V1,))
    with pytest.raises(CodecError):
        strict.decode(CODEC.encode(msg))
    assert strict.decode(CODEC_V1.encode(msg)) == msg


def test_unknown_versions_rejected() -> None:
    with pytest.raises(CodecError):
        runtime_codec(version=3)
    with pytest.raises(CodecError):
        runtime_codec(accept=(1, 7))
    with pytest.raises(CodecError):
        runtime_codec(accept=())


def test_per_message_version_override() -> None:
    msg = Hello()
    assert CODEC.encode(msg, version=WIRE_V1)[0] == WIRE_V1
    assert CODEC_V1.encode(msg, version=WIRE_V2)[0] == WIRE_V2
    with pytest.raises(CodecError):
        CODEC.encode(msg, version=9)


# ----------------------------------------------------------------------
# v2 fallback cases: values the packed layout cannot carry
# ----------------------------------------------------------------------
def test_i64_overflow_falls_back_to_v1() -> None:
    """An int beyond 64 bits cannot ride `!q`; the frame ships as v1."""
    msg = ServerJoin(address=2**80, capacity=1.0)
    payload = CODEC.encode(msg)
    assert payload[0] == WIRE_V1
    assert CODEC.decode(payload).address == 2**80


def test_unknown_annotation_shape_falls_back_to_v1() -> None:
    """A class the plan compiler cannot derive still works -- via v1."""

    @dataclasses.dataclass(slots=True)
    class Odd(Message):
        table: Tuple[Tuple[str, ...], ...] = ()  # nested variadic: fine
        weird: Optional[Tuple[int, str]] = None

    @dataclasses.dataclass(slots=True)
    class Stranger(Message):
        # dict annotation: not derivable, whole class falls back
        mapping: dict = dataclasses.field(default_factory=dict)

    codec = runtime_codec()
    codec.register(Odd, 1000)
    codec.register(Stranger, 1001)
    assert codec.has_v2_layout(Odd)
    assert not codec.has_v2_layout(Stranger)
    odd = Odd(table=(("a", "b"), ()), weird=(3, "x"))
    assert codec.decode(codec.encode(odd)) == odd
    stranger = Stranger(mapping={"k": [1, 2]})
    payload = codec.encode(stranger)
    assert payload[0] == WIRE_V1  # v2 codec, but the class has no plan
    assert codec.decode(payload) == stranger


# ----------------------------------------------------------------------
# Corruption: truncations and garbage raise, never misparse
# ----------------------------------------------------------------------
def test_decode_rejects_garbage() -> None:
    with pytest.raises(CodecError):
        CODEC.decode(b"")
    with pytest.raises(CodecError):
        CODEC.decode(b"\x63" + b"\x00\x01" + b"[]")  # bad version
    with pytest.raises(CodecError):
        CODEC.decode(b"\x01" + b"\xff\xff" + b"[]")  # unknown type id
    good_v1 = CODEC_V1.encode(FloodQuery())
    with pytest.raises(CodecError):
        CODEC.decode(good_v1[:-2] + b"!!")  # corrupt JSON body
    good_v2 = CODEC.encode(FloodQuery())
    with pytest.raises(CodecError):
        CODEC.decode(good_v2 + b"xx")  # trailing bytes after the plan


def test_v2_truncations_never_misparse() -> None:
    """Every proper prefix of a v2 frame raises (variable fields
    bounds-check explicitly -- memoryview slicing would otherwise
    truncate silently)."""
    msg = RoleHandoff(
        p_id=7,
        fingers=((1, 2), (3, 4)),
        items=(("key", {"nested": [1, None]}, 9),),
        s_neighbors=(5, 6),
    )
    msg.sender = pack_endpoint("127.0.0.1", 4242)
    payload = CODEC.encode(msg)
    assert payload[0] == WIRE_V2
    for cut in range(len(payload)):
        with pytest.raises(CodecError):
            CODEC.decode(payload[:cut])


def test_v2_absurd_tuple_count_rejected() -> None:
    """A forged element count larger than the body cannot allocate."""
    msg = RoleHandoff(p_id=1, fingers=((1, 2),), s_neighbors=(9,))
    payload = bytearray(CODEC.encode(msg))
    # Layout: 3-byte head, 7 fixed i64s (sender..successor_pid), then
    # the fingers element count.
    count_at = 3 + 7 * 8
    payload[count_at : count_at + 4] = struct.pack("!I", 2**31)
    with pytest.raises(CodecError):
        CODEC.decode(bytes(payload))


def test_unregistered_class_rejected() -> None:
    @dataclasses.dataclass(slots=True)
    class Stray(Message):
        x: int = 0

    with pytest.raises(CodecError):
        CODEC.encode(Stray())


def test_endpoint_packing_roundtrip() -> None:
    for host, port in [("127.0.0.1", 1), ("10.0.0.1", 65535), ("192.168.1.17", 7401)]:
        addr = pack_endpoint(host, port)
        assert unpack_endpoint(addr) == (host, port)
        assert format_endpoint(addr) == f"{host}:{port}"
    with pytest.raises(ValueError):
        pack_endpoint("127.0.0.1", 0)
    with pytest.raises(ValueError):
        pack_endpoint("not-a-host", 80)
    with pytest.raises(ValueError):
        unpack_endpoint(80)  # too small to hold an endpoint


# ----------------------------------------------------------------------
# Frame size guard
# ----------------------------------------------------------------------
def test_decode_rejects_oversized_payload() -> None:
    """A peer announcing an absurd frame is cut off before allocation."""
    small = default_codec(max_frame_size=64)
    big = FloodQuery(key="x" * 200)
    payload = CODEC.frame(big)[4:]  # strip the length prefix
    with pytest.raises(CodecError, match="max_frame_size"):
        small.decode(payload)
    # The same payload is fine under the default 16 MiB ceiling.
    assert CODEC.decode(payload) == big


def test_frame_rejects_oversized_encode() -> None:
    small = default_codec(max_frame_size=64)
    with pytest.raises(CodecError, match="frame too large"):
        small.frame(FloodQuery(key="x" * 200))
    # Within the limit, framing works as usual.
    roomy = default_codec(max_frame_size=4096)
    tiny = FloodQuery(key="k")
    assert roomy.decode(roomy.frame(tiny)[4:]) == tiny


def test_max_frame_size_validates_floor() -> None:
    with pytest.raises(CodecError, match="max_frame_size"):
        default_codec(max_frame_size=1)
