"""Wire codec: every registered message round-trips exactly.

The property test derives a value strategy from each dataclass field's
type annotation -- the same annotations the codec derives its revivers
from -- so any annotation shape a future message introduces that the
codec cannot round-trip shows up here as a failing example.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple, Union, get_args, get_origin, get_type_hints

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.messages import (
    FloodQuery,
    Message,
    RoleHandoff,
    ServerJoinReply,
    wire_types,
)
from repro.runtime.client import client_types, runtime_codec
from repro.runtime.codec import (
    CodecError,
    default_codec,
    format_endpoint,
    pack_endpoint,
    unpack_endpoint,
)

CODEC = runtime_codec()
ALL_CLASSES = tuple(wire_types()) + tuple(client_types())

# Boundary ids the protocol actually produces: the id space is 32-bit.
ID_BOUNDARIES = [0, 1, 2**31, 2**32 - 1]

_ints = st.integers(min_value=-(2**53), max_value=2**53) | st.sampled_from(
    ID_BOUNDARIES
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_text = st.text(max_size=20)
# ``Any`` fields carry stored values: anything JSON-able plus bytes.
_any_value = st.none() | st.booleans() | _ints | _floats | _text | st.binary(max_size=32)


def _strategy_for(hint: Any) -> st.SearchStrategy:
    if hint is Any:
        return _any_value
    if hint is int:
        return _ints
    if hint is float:
        return _floats
    if hint is str:
        return _text
    if hint is bool:
        return st.booleans()
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=4).map(tuple)
        return st.tuples(*(_strategy_for(a) for a in args))
    if origin is Union:
        inner = [a for a in get_args(hint) if a is not type(None)]
        strategies = [_strategy_for(a) for a in inner]
        if type(None) in get_args(hint):
            strategies.append(st.none())
        return st.one_of(strategies)
    raise NotImplementedError(f"no strategy for annotation {hint!r}")


@st.composite
def messages(draw: st.DrawFn) -> Message:
    cls = draw(st.sampled_from(ALL_CLASSES))
    hints = get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.init:
            kwargs[f.name] = draw(_strategy_for(hints[f.name]))
    msg = cls(**kwargs)
    msg.sender = draw(_ints)
    msg.hop_count = draw(st.integers(min_value=0, max_value=64))
    return msg


@settings(max_examples=300, deadline=None)
@given(messages())
def test_roundtrip_equals(msg: Message) -> None:
    decoded = CODEC.decode(CODEC.encode(msg))
    assert decoded == msg
    assert decoded.sender == msg.sender
    assert decoded.hop_count == msg.hop_count


@given(messages())
@settings(max_examples=50, deadline=None)
def test_frame_strips_to_payload(msg: Message) -> None:
    frame = CODEC.frame(msg)
    assert CODEC.decode(frame[4:]) == msg


def test_every_class_roundtrips_empty() -> None:
    """Default-constructed ("empty payload") instances survive the wire."""
    for cls in ALL_CLASSES:
        msg = cls()
        assert CODEC.decode(CODEC.encode(msg)) == msg


def test_boundary_ids_roundtrip() -> None:
    for p_id in ID_BOUNDARIES:
        msg = ServerJoinReply(role="t", p_id=p_id, entry_peer=p_id)
        assert CODEC.decode(CODEC.encode(msg)).p_id == p_id
        q = FloodQuery(d_id=p_id, key="k", origin=3, query_id=p_id, ttl=1)
        assert CODEC.decode(CODEC.encode(q)).d_id == p_id


def test_nested_tuples_revive_as_tuples() -> None:
    msg = RoleHandoff(
        p_id=7,
        fingers=((1, 2), (3, 4)),
        items=(("k", b"v", 9),),
        s_neighbors=(5, 6),
    )
    decoded = CODEC.decode(CODEC.encode(msg))
    assert decoded == msg
    assert isinstance(decoded.fingers, tuple)
    assert all(isinstance(f, tuple) for f in decoded.fingers)
    assert decoded.items[0][1] == b"v"


def test_type_ids_stable() -> None:
    """Ids come from __all__ order: same table on every process."""
    a, b = default_codec(), default_codec()
    for cls in wire_types():
        assert a.type_id_of(cls) == b.type_id_of(cls)


def test_decode_rejects_garbage() -> None:
    with pytest.raises(CodecError):
        CODEC.decode(b"")
    with pytest.raises(CodecError):
        CODEC.decode(b"\x63" + b"\x00\x01" + b"[]")  # bad version
    with pytest.raises(CodecError):
        CODEC.decode(b"\x01" + b"\xff\xff" + b"[]")  # unknown type id
    good = CODEC.encode(FloodQuery())
    with pytest.raises(CodecError):
        CODEC.decode(good[:-2] + b"!!")  # corrupt JSON body


def test_unregistered_class_rejected() -> None:
    @dataclasses.dataclass(slots=True)
    class Stray(Message):
        x: int = 0

    with pytest.raises(CodecError):
        CODEC.encode(Stray())


def test_endpoint_packing_roundtrip() -> None:
    for host, port in [("127.0.0.1", 1), ("10.0.0.1", 65535), ("192.168.1.17", 7401)]:
        addr = pack_endpoint(host, port)
        assert unpack_endpoint(addr) == (host, port)
        assert format_endpoint(addr) == f"{host}:{port}"
    with pytest.raises(ValueError):
        pack_endpoint("127.0.0.1", 0)
    with pytest.raises(ValueError):
        pack_endpoint("not-a-host", 80)
    with pytest.raises(ValueError):
        unpack_endpoint(80)  # too small to hold an endpoint
