"""Tests for the popular-data caching scheme (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridConfig, HybridSystem
from repro.core.datastore import DataItem
from repro.enhance.caching import LruCache

from .conftest import build_system


class TestLruCache:
    def test_put_get(self):
        c = LruCache(capacity=4, ttl=100.0)
        c.put(DataItem("a", 1, 0), now=0.0)
        assert c.get("a", now=50.0).value == 1
        assert c.hits == 1

    def test_expiry(self):
        c = LruCache(capacity=4, ttl=100.0)
        c.put(DataItem("a", 1, 0), now=0.0)
        assert c.get("a", now=150.0) is None
        assert c.misses == 1
        assert len(c) == 0

    def test_hit_refreshes_ttl(self):
        c = LruCache(capacity=4, ttl=100.0)
        c.put(DataItem("a", 1, 0), now=0.0)
        c.get("a", now=90.0)  # refresh
        assert c.get("a", now=150.0) is not None

    def test_lru_eviction(self):
        c = LruCache(capacity=2, ttl=1e9)
        c.put(DataItem("a", 1, 0), now=0.0)
        c.put(DataItem("b", 2, 0), now=1.0)
        c.get("a", now=2.0)  # a is now most recent
        c.put(DataItem("c", 3, 0), now=3.0)  # evicts b
        assert c.get("b", now=4.0) is None
        assert c.get("a", now=4.0) is not None
        assert c.evictions == 1

    def test_invalidate(self):
        c = LruCache(capacity=2, ttl=1e9)
        c.put(DataItem("a", 1, 0), now=0.0)
        c.invalidate("a")
        assert c.get("a", now=1.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LruCache(0, 1.0)
        with pytest.raises(ValueError):
            LruCache(1, 0.0)


def hot_key_workload(system, n_background=60, hot_rounds=4):
    """One hot key + background keys; every peer repeatedly fetches the
    hot key."""
    peers = [p.address for p in system.alive_peers()]
    items = [(peers[i % len(peers)], f"bg{i}", i) for i in range(n_background)]
    items.append((peers[0], "hot", "hot-value"))
    system.populate(items)
    pairs = []
    for _ in range(hot_rounds):
        pairs.extend((addr, "hot") for addr in peers)
    system.run_lookups(pairs, wave_size=50)
    return system.query_stats()


class TestCachingSystem:
    def test_correctness_unchanged(self):
        system = build_system(p_s=0.7, n_peers=40, ttl=8, cache_enabled=True)
        stats = hot_key_workload(system)
        assert stats.failure_ratio == 0.0

    def test_cache_spreads_hot_key_load(self):
        """The future-work goal: "distribute the load among as many
        peers as possible so that no peer is overwhelmed"."""

        def max_load(cache: bool) -> int:
            system = build_system(
                p_s=0.7, n_peers=40, ttl=8, seed=15, cache_enabled=cache
            )
            hot_key_workload(system)
            return max(p.answers_served for p in system.alive_peers())

        assert max_load(True) < max_load(False)

    def test_repeat_lookups_hit_caches(self):
        system = build_system(p_s=0.7, n_peers=40, ttl=8, cache_enabled=True)
        hot_key_workload(system)
        hits = sum(p.cache.hits for p in system.alive_peers() if p.cache)
        assert hits > 0
        # Multiple distinct peers served the hot key.
        servers = sum(1 for p in system.alive_peers() if p.answers_served > 0)
        assert servers > 1

    def test_cache_reduces_connum_on_repeats(self):
        def connum(cache: bool) -> int:
            system = build_system(
                p_s=0.7, n_peers=40, ttl=8, seed=16, cache_enabled=cache
            )
            return hot_key_workload(system).connum

        assert connum(True) < connum(False)

    def test_cache_disabled_by_default(self, small_system):
        assert all(p.cache is None for p in small_system.alive_peers())

    def test_origin_cache_makes_repeat_free(self):
        system = build_system(p_s=0.7, n_peers=30, ttl=8, cache_enabled=True)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[0], "item", 1)])
        origin = system.s_peers()[-1]
        origin.lookup("item")
        system.engine.run_while(lambda: system.queries.unresolved > 0)
        qid = origin.lookup("item")  # second time: local cache hit
        system.engine.run_while(lambda: system.queries.unresolved > 0)
        rec = system.queries.get(qid)
        assert rec.status == "success"
        assert rec.holder == origin.address  # answered by itself
        assert rec.contacts == 0
