"""Tests for the base peer (reflective dispatch) and message taxonomy."""

from __future__ import annotations

import dataclasses

import pytest

import repro.overlay.messages as messages_mod
from repro.overlay.idspace import IdSpace
from repro.overlay.messages import (
    CONTROL_SIZE,
    ITEM_SIZE,
    DataFound,
    Hello,
    LoadTransfer,
    Message,
    RoleHandoff,
    StoreRequest,
)
from repro.overlay.peer import BasePeer
from repro.overlay.transport import Transport
from repro.sim import Engine


class EchoPeer(BasePeer):
    """Minimal peer with one handler, for dispatch tests."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.hellos = []

    def on_Hello(self, msg: Hello) -> None:
        self.hellos.append(msg)


@pytest.fixture
def wired(engine, idspace):
    transport = Transport(engine)
    a = EchoPeer(1, 0, engine, transport, idspace)
    b = EchoPeer(2, 0, engine, transport, idspace)
    transport.register(a)
    transport.register(b)
    return engine, transport, a, b


class TestDispatch:
    def test_handler_invoked(self, wired):
        engine, transport, a, b = wired
        a.send(2, Hello())
        engine.run()
        assert len(b.hellos) == 1
        assert b.messages_received == 1

    def test_unhandled_raises(self, wired):
        engine, transport, a, b = wired
        a.send(2, DataFound())
        with pytest.raises(NotImplementedError, match="DataFound"):
            engine.run()

    def test_dead_peer_ignores_messages(self, wired):
        engine, transport, a, b = wired
        a.send(2, Hello())
        b.alive = False  # dies while in flight: transport drops it
        engine.run()
        assert b.hellos == []

    def test_dispatch_table_cached_per_class(self, wired):
        engine, transport, a, b = wired
        # Reflection happens once per class; instances bind the shared
        # name -> method-name map to themselves.
        assert type(a)._dispatch_cache[type(a)] is type(b)._dispatch_cache[type(b)]
        assert a._dispatch.keys() == b._dispatch.keys()
        assert a._dispatch["Hello"].__self__ is a

    def test_emit_noop_without_listeners(self, wired):
        engine, transport, a, b = wired
        a.emit("anything", x=1)  # no trace bus: must not raise


class TestMessageSizes:
    def test_control_messages_are_small(self):
        assert Hello().size == CONTROL_SIZE

    def test_store_carries_item(self):
        assert StoreRequest().size == CONTROL_SIZE + ITEM_SIZE

    def test_bulk_transfer_scales_with_items(self):
        items = tuple((f"k{i}", i, 0) for i in range(5))
        assert LoadTransfer(items=items).size == CONTROL_SIZE + 5 * ITEM_SIZE
        assert LoadTransfer().size == CONTROL_SIZE

    def test_handoff_scales_with_items(self):
        items = tuple((f"k{i}", i, 0) for i in range(3))
        assert RoleHandoff(items=items).size == CONTROL_SIZE + 3 * ITEM_SIZE

    def test_sender_default_unset(self):
        assert Hello().sender == -1


class TestTaxonomyHygiene:
    def test_every_exported_message_is_a_dataclass_message(self):
        for name in messages_mod.__all__:
            obj = getattr(messages_mod, name)
            if isinstance(obj, type) and issubclass(obj, Message) and obj is not Message:
                assert dataclasses.is_dataclass(obj), name
                obj()  # constructible with defaults

    def test_message_names_match_handler_convention(self):
        """Every HybridPeer handler must name a real message class."""
        from repro.core.hybridpeer import HybridPeer

        message_names = {
            name
            for name in messages_mod.__all__
            if isinstance(getattr(messages_mod, name), type)
        }
        for attr in dir(HybridPeer):
            if attr.startswith("on_"):
                assert attr[3:] in message_names, f"{attr} has no message class"
