"""Live-node observability: /metrics over HTTP, status metrics, and the
cross-mode (live vs simulated) consistency acceptance check.

The acceptance test boots the same 5-node topology twice -- once as a
real localnet over TCP, once in the simulator with a
:class:`~repro.obs.TraceBridge` attached -- drives remote lookups
through both, and asserts the two modes expose the *same* metric
catalogue with overlapping lookup-hop distributions.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket

from repro.obs import CONTENT_TYPE_PROM, MetricsRegistry, TraceBridge
from repro.runtime import ClientGet, ClientPut, ClientStatus, LocalNet, acall
from repro.runtime.aio_transport import AioTransport
from repro.runtime.client import runtime_codec
from repro.runtime.codec import WIRE_VERSION, pack_endpoint

from .conftest import build_system


async def _http_get(host: str, port: int, path: str):
    """Minimal HTTP client: (status, headers, body) for one request."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = lines[0].split(" ", 1)[1]
    headers = dict(line.split(": ", 1) for line in lines[1:])
    return status, headers, body


def _counter_total(snapshot, name: str, **label_filter) -> float:
    fam = snapshot.get(name)
    if not fam:
        return 0.0
    total = 0.0
    for s in fam["samples"]:
        if all(s["labels"].get(k) == v for k, v in label_filter.items()):
            total += s["value"]
    return total


def _hop_support(snapshot) -> set:
    """Bucket upper bounds with non-zero mass in the hops histogram."""
    fam = snapshot.get("repro_lookup_hops")
    if not fam or not fam["samples"]:
        return set()
    support = set()
    for s in fam["samples"]:
        bounds = list(s["buckets"]) + [float("inf")]
        for bound, c in zip(bounds, s["counts"]):
            if c:
                support.add(bound)
    return support


async def _drive_remote_lookups(net: LocalNet, n_keys: int = 6) -> list:
    """Put keys, then read each back from a node that doesn't own it."""
    putter = net.nodes[0]
    origins = []
    for i in range(n_keys):
        key = f"xmode-{i}.dat"
        reply = await acall(
            putter.host, putter.port, ClientPut(key=key, value=f"v{i}")
        )
        assert reply.ok, reply.error
    await asyncio.sleep(0.3)  # let StoreRequests land on their owners
    for i in range(n_keys):
        key = f"xmode-{i}.dat"
        remote = net.node_for_key(key, putter)
        reply = await acall(remote.host, remote.port, ClientGet(key=key), timeout=15)
        assert reply.ok, reply.error
        assert reply.payload["value"] == f"v{i}"
        origins.append(remote)
    return origins


def _sim_registry_for_same_topology(n_keys: int = 6) -> MetricsRegistry:
    """The simulator's scrape for the live test's 2t+3s topology."""
    system = build_system(p_s=0.6, n_peers=5, heterogeneity_aware=False,
                          heartbeats_enabled=False)
    assert len(system.t_peers()) == 2 and len(system.s_peers()) == 3
    reg = MetricsRegistry()
    bridge = TraceBridge(system.trace, reg)
    peers = [p.address for p in system.alive_peers()]
    system.populate(
        [(peers[0], f"xmode-{i}.dat", f"v{i}") for i in range(n_keys)]
    )
    system.run_lookups(
        [(peers[(i % (len(peers) - 1)) + 1], f"xmode-{i}.dat") for i in range(n_keys)]
    )
    bridge.detach()
    return reg


def test_live_nodes_serve_metrics_and_match_simulator() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=3, seed=23)
        await net.start(join_timeout=20)
        await net.wait_converged(timeout=20)
        try:
            await _drive_remote_lookups(net)

            daemons = [net.bootstrap, *net.nodes]
            snapshots = []
            for daemon in daemons:
                # Prometheus text endpoint: well-formed, right content
                # type, and the frame counter moved on every daemon.
                status, headers, body = await _http_get(
                    daemon.host, daemon.port, "/metrics"
                )
                assert status == "200 OK"
                assert headers["Content-Type"] == CONTENT_TYPE_PROM
                text = body.decode("utf-8")
                assert "# TYPE repro_frames_total counter" in text
                assert 'repro_frames_total{' in text

                # JSON variant parses back to a registry snapshot.
                status, _, body = await _http_get(
                    daemon.host, daemon.port, "/metrics.json"
                )
                assert status == "200 OK"
                snap = json.loads(body)
                assert _counter_total(snap, "repro_frames_total") > 0
                assert _counter_total(snap, "repro_frames_total", direction="rx") > 0
                assert _counter_total(snap, "repro_frames_total", direction="tx") > 0
                assert snap["repro_uptime_seconds"]["samples"][0]["value"] > 0
                snapshots.append(snap)

                # Liveness endpoint.
                status, _, body = await _http_get(
                    daemon.host, daemon.port, "/healthz"
                )
                assert status == "200 OK"
                health = json.loads(body)
                assert health["ok"] is True
                assert health["codec_version"] == WIRE_VERSION
                assert health["uptime_s"] >= 0

            for node, snap in zip(net.nodes, snapshots[1:]):
                assert snap["repro_node_joined"]["samples"][0]["value"] == 1.0

            # The remote gets left lookup evidence: merged across peers,
            # completed lookups and their hop histogram are non-empty,
            # with every observed hop count above zero (they crossed
            # sockets to a different segment).
            merged_lookups = sum(
                _counter_total(s, "repro_lookups_total", status="success")
                for s in snapshots
            )
            assert merged_lookups >= 6
            live_support = set()
            for s in snapshots:
                live_support |= _hop_support(s)
            assert live_support, "no lookup hop observations on any node"
            assert max(live_support) >= 1  # at least one multi-hop lookup

            # HTTP scrapes must not have disturbed the framed protocol
            # sharing the same listen ports.
            reply = await acall(
                net.nodes[0].host, net.nodes[0].port, ClientStatus()
            )
            assert reply.ok and reply.payload["joined"]

            # Cross-mode: the simulator run of the same 2t+3s topology
            # produces the same catalogue and an overlapping hop
            # distribution.
            sim_reg = _sim_registry_for_same_topology()
            sim_snap = sim_reg.snapshot()
            live_names = set().union(*(set(s) for s in snapshots))
            missing = set(sim_snap) - live_names
            assert not missing, f"sim metrics absent from live nodes: {missing}"
            sim_support = _hop_support(sim_snap)
            assert sim_support, "simulator produced no hop observations"
            # Same bucket ladder on both sides, and the occupied ranges
            # overlap (a handful of lookups won't land in identical
            # buckets, but both modes must agree on the scale: a live
            # run measuring 1-2 hops is consistent with a sim run
            # measuring 0-3, not with one measuring 20+).
            assert min(live_support) <= max(sim_support)
            assert min(sim_support) <= max(live_support), (
                f"hop distributions do not overlap: "
                f"live={sorted(live_support)} sim={sorted(sim_support)}"
            )
        finally:
            await net.stop()

    asyncio.run(scenario())


def test_status_verb_carries_uptime_version_and_optional_metrics() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=1, s_peers=1, seed=31)
        await net.start(join_timeout=20)
        try:
            node = net.nodes[0]
            plain = await acall(node.host, node.port, ClientStatus())
            assert plain.ok
            assert plain.payload["codec_version"] == WIRE_VERSION
            assert plain.payload["uptime_s"] >= 0
            assert "metrics" not in plain.payload

            rich = await acall(
                node.host, node.port, ClientStatus(include_metrics=True)
            )
            assert rich.ok
            metrics = rich.payload["metrics"]
            assert _counter_total(metrics, "repro_frames_total") > 0

            boot = await acall(
                net.bootstrap.host,
                net.bootstrap.port,
                ClientStatus(include_metrics=True),
            )
            assert boot.ok
            assert boot.payload["codec_version"] == WIRE_VERSION
            assert "repro_frames_total" in boot.payload["metrics"]
        finally:
            await net.stop()

    asyncio.run(scenario())


def test_transport_drop_accounting_and_single_warning(caplog) -> None:
    caplog.set_level(logging.WARNING, logger="repro.runtime.transport")

    class _Origin:
        address = pack_endpoint("127.0.0.1", 65000)
        alive = True

        def receive(self, msg) -> None:  # pragma: no cover - never local
            pass

    # A port that is certainly closed: bind, read it, release it.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    dst = pack_endpoint("127.0.0.1", dead_port)

    async def scenario() -> None:
        reg = MetricsRegistry()
        transport = AioTransport(
            runtime_codec(),
            asyncio.get_running_loop(),
            op_timeout=2.0,
            max_retries=2,
            backoff_base=0.01,
            registry=reg,
        )
        origin = _Origin()
        try:
            for _ in range(3):
                transport.send(origin, dst, ClientGet(key="doomed"))
            deadline = asyncio.get_running_loop().time() + 10
            while transport.dropped_by_dest.get(dst, 0) < 3:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)

            # Destination is now marked failed: further sends drop
            # immediately and are counted, not logged again.
            assert transport.send(origin, dst, ClientGet(key="late")) is False
            assert transport.dropped_by_dest[dst] == 4
            assert not transport.is_reachable(dst)

            snap = reg.snapshot()
            endpoint = f"127.0.0.1:{dead_port}"
            assert (
                _counter_total(snap, "repro_frames_dropped_total", dest=endpoint)
                == 4.0
            )
        finally:
            await transport.aclose()

    asyncio.run(scenario())

    warnings = [
        r for r in caplog.records
        if r.levelno == logging.WARNING and "unreachable" in r.getMessage()
    ]
    assert len(warnings) == 1, [r.getMessage() for r in warnings]
    assert f"127.0.0.1:{dead_port}" in warnings[0].getMessage()


def test_transport_counts_reconnects_in_registry() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=37)
        await net.start(join_timeout=20)
        try:
            # Abort every pooled inbound connection; the next frame on
            # each outbound pool reconnects and must be counted.
            for daemon in [net.bootstrap, *net.nodes]:
                for writer in list(daemon._inbound.values()):
                    writer.transport.abort()
            await asyncio.sleep(0.1)
            putter = net.nodes[0]
            reply = await acall(
                putter.host, putter.port, ClientPut(key="rc", value="x")
            )
            assert reply.ok
            await asyncio.sleep(0.5)

            snaps = net.metrics_snapshots()
            total = sum(
                _counter_total(s, "repro_transport_reconnects_total")
                for s in snaps.values()
            )
            assert total > 0, "no reconnect was recorded anywhere"
            for daemon in [net.bootstrap, *net.nodes]:
                snap = snaps[f"{daemon.host}:{daemon.port}"]
                assert (
                    sum(daemon.transport.reconnects_by_dest.values())
                    == _counter_total(snap, "repro_transport_reconnects_total")
                )
        finally:
            await net.stop()

    asyncio.run(scenario())
