"""Unit tests for the overlay transport."""

from __future__ import annotations

import pytest

from repro.net import LinkStress, NodeKind, PhysicalTopology, Router
from repro.overlay.messages import Hello, LoadTransfer, Message
from repro.overlay.transport import Transport
from repro.sim import Engine


class StubActor:
    def __init__(self, address: int, host: int = 0) -> None:
        self.address = address
        self.host = host
        self.alive = True
        self.inbox = []

    def receive(self, msg: Message) -> None:
        self.inbox.append(msg)


def line_topology() -> PhysicalTopology:
    return PhysicalTopology(
        n=3,
        edges=[(0, 1, 10.0), (1, 2, 20.0)],
        kind=[NodeKind.TRANSIT] * 3,
        domain=[0] * 3,
        transit_attachment=[0, 1, 2],
    )


class TestDelivery:
    def test_basic_delivery(self, engine):
        tr = Transport(engine)
        a, b = StubActor(1), StubActor(2)
        tr.register(a)
        tr.register(b)
        assert tr.send(a, 2, Hello())
        engine.run()
        assert len(b.inbox) == 1
        assert b.inbox[0].sender == 1

    def test_delay_uses_router(self, engine):
        tr = Transport(engine, router=Router(line_topology()))
        a, b = StubActor(1, host=0), StubActor(2, host=2)
        tr.register(a)
        tr.register(b)
        tr.send(a, 2, Hello())
        engine.run()
        assert engine.now == pytest.approx(30.0)

    def test_capacity_adds_transfer_delay(self, engine):
        tr = Transport(
            engine,
            router=Router(line_topology()),
            capacity_of=lambda addr: 2.0 if addr == 1 else 0.5,
        )
        a, b = StubActor(1, host=0), StubActor(2, host=1)
        tr.register(a)
        tr.register(b)
        msg = LoadTransfer(items=(("k", "v", 0),))  # size = 1 + 10
        tr.send(a, 2, msg)
        engine.run()
        # 10 propagation + 11 / min(2.0, 0.5)
        assert engine.now == pytest.approx(10.0 + 22.0)

    def test_send_to_unknown_is_dropped(self, engine):
        tr = Transport(engine)
        a = StubActor(1)
        tr.register(a)
        assert not tr.send(a, 99, Hello())
        assert tr.messages_dropped == 1

    def test_send_to_dead_is_dropped(self, engine):
        tr = Transport(engine)
        a, b = StubActor(1), StubActor(2)
        tr.register(a)
        tr.register(b)
        b.alive = False
        assert not tr.send(a, 2, Hello())
        engine.run()
        assert b.inbox == []

    def test_crash_while_in_flight_suppresses_delivery(self, engine):
        tr = Transport(engine)
        a, b = StubActor(1), StubActor(2)
        tr.register(a)
        tr.register(b)
        tr.send(a, 2, Hello())
        b.alive = False  # dies before the message lands
        engine.run()
        assert b.inbox == []
        assert tr.messages_dropped == 1

    def test_duplicate_registration_rejected(self, engine):
        tr = Transport(engine)
        tr.register(StubActor(1))
        with pytest.raises(ValueError):
            tr.register(StubActor(1))

    def test_is_reachable(self, engine):
        tr = Transport(engine)
        a = StubActor(1)
        tr.register(a)
        assert tr.is_reachable(1)
        a.alive = False
        assert not tr.is_reachable(1)
        assert not tr.is_reachable(2)

    def test_min_latency_floor(self, engine):
        tr = Transport(engine, router=Router(line_topology()), min_latency=0.5)
        a, b = StubActor(1, host=1), StubActor(2, host=1)  # same host
        tr.register(a)
        tr.register(b)
        tr.send(a, 2, Hello())
        engine.run()
        assert engine.now == pytest.approx(0.5)

    def test_stress_recorded(self, engine):
        stress = LinkStress()
        tr = Transport(engine, router=Router(line_topology()), stress=stress)
        a, b = StubActor(1, host=0), StubActor(2, host=2)
        tr.register(a)
        tr.register(b)
        tr.send(a, 2, Hello())
        assert stress.stress(0, 1) == 1
        assert stress.stress(1, 2) == 1

    def test_counters(self, engine):
        tr = Transport(engine)
        a, b = StubActor(1), StubActor(2)
        tr.register(a)
        tr.register(b)
        tr.send(a, 2, Hello())
        tr.send(a, 7, Hello())
        engine.run()
        assert tr.messages_sent == 2
        assert tr.messages_delivered == 1
        assert tr.messages_dropped == 1
