"""Tests for the parallel cell executor (repro.exec.pool)."""

from __future__ import annotations

import io
import re

import pytest

from repro.core import HybridConfig
from repro.exec import (
    CellCache,
    CellExecutionError,
    CellExecutor,
    CellSpec,
    resolve_jobs,
)
from repro.experiments import Scale, run_cell
from repro.obs import MetricsRegistry

TINY = Scale(n_peers=30, n_keys=60, n_lookups=60, seed=7)

SPECS = [
    CellSpec(HybridConfig(p_s=0.2), TINY),
    CellSpec(HybridConfig(p_s=0.6), TINY),
    CellSpec(HybridConfig(p_s=0.9), TINY, crash_fraction=0.2),
]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_explicit_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


class TestMap:
    def test_serial_matches_direct_run_cell(self):
        direct = [
            run_cell(
                s.config,
                s.scale,
                crash_fraction=s.crash_fraction,
                settle_after_crash=s.settle_after_crash,
            )
            for s in SPECS
        ]
        assert CellExecutor.serial().map(SPECS) == direct

    def test_pooled_preserves_order_and_values(self):
        serial = CellExecutor.serial().map(SPECS)
        pooled = CellExecutor(jobs=2).map(SPECS)
        assert pooled == serial

    def test_cache_hits_counted_and_exact(self, tmp_path):
        cold = CellExecutor(jobs=1, cache=CellCache(tmp_path))
        first = cold.map(SPECS)
        assert (cold.stats.executed, cold.stats.cache_hits) == (3, 0)
        warm = CellExecutor(jobs=2, cache=CellCache(tmp_path))
        second = warm.map(SPECS)
        assert (warm.stats.executed, warm.stats.cache_hits) == (0, 3)
        assert second == first

    def test_empty_spec_list(self):
        executor = CellExecutor(jobs=2)
        assert executor.map([]) == []
        assert executor.stats.cells_total == 0


class TestSystemOut:
    def test_rejected_with_multiple_jobs(self):
        spec = CellSpec(HybridConfig(), TINY, system_out={})
        with pytest.raises(ValueError, match="system_out"):
            CellExecutor(jobs=2).map([spec])

    def test_works_inline(self):
        out = {}
        spec = CellSpec(HybridConfig(), TINY, system_out=out)
        CellExecutor(jobs=1).map([spec])
        assert "system" in out

    def test_inline_system_out_cells_are_not_cached(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = CellSpec(HybridConfig(), TINY, system_out={})
        CellExecutor(jobs=1, cache=cache).map([spec])
        assert cache.get(spec) is None


class TestErrors:
    # p_s=1.5 passes the dataclass but fails HybridConfig.validate(),
    # which HybridSystem.__init__ calls inside the worker.
    BAD = CellSpec(HybridConfig(p_s=1.5), TINY, tag="bad")

    def test_worker_failure_identifies_cell(self):
        with pytest.raises(CellExecutionError) as err:
            CellExecutor(jobs=2).map([SPECS[0], self.BAD])
        assert "bad" in str(err.value)
        assert "p_s must be in [0, 1]" in err.value.worker_traceback

    def test_serial_failure_raises_original(self):
        with pytest.raises(ValueError, match=r"p_s must be in \[0, 1\]"):
            CellExecutor(jobs=1).map([self.BAD])


class TestMapFn:
    def test_order_and_values(self):
        executor = CellExecutor(jobs=2)
        assert executor.map_fn(_square, [3, 1, 2], tag="sq") == [9, 1, 4]

    def test_fn_failure_labelled_by_index(self):
        with pytest.raises(CellExecutionError, match=r"boom\[1\]"):
            CellExecutor(jobs=2).map_fn(_flaky, [0, 1, 2], tag="boom")


def _square(x: int) -> int:
    return x * x


def _flaky(x: int) -> int:
    if x == 1:
        raise RuntimeError("worker exploded")
    return x


class TestObservability:
    def test_metrics_registered(self):
        registry = MetricsRegistry()
        executor = CellExecutor(jobs=1, registry=registry)
        executor.map(SPECS[:2])
        snap = registry.snapshot()
        cells = snap["repro_sweep_cells_total"]["samples"]
        by_status = {s["labels"]["status"]: s["value"] for s in cells}
        assert by_status["run"] == 2
        assert "repro_sweep_cell_seconds" in snap

    def test_summary_line_is_parseable(self):
        executor = CellExecutor(jobs=1)
        executor.map(SPECS[:1])
        match = re.fullmatch(
            r"(\d+) cells: (\d+) cache hits, (\d+) executed, "
            r"([0-9.]+)s wall \(jobs=(\d+)\)",
            executor.summary(),
        )
        assert match is not None
        assert match.group(1) == "1"

    def test_progress_stream(self):
        stream = io.StringIO()
        executor = CellExecutor(jobs=1, progress=True, stream=stream)
        executor.map(SPECS[:2])
        text = stream.getvalue()
        assert "2/2" in text
