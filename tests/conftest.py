"""Shared fixtures for the test suite.

Most protocol tests want a small, fully built hybrid system; building
one takes a couple hundred milliseconds, so commonly reused
configurations are session-scoped where mutation-free and
function-scoped where tests churn them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridConfig, HybridSystem
from repro.overlay.idspace import IdSpace
from repro.sim import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def idspace() -> IdSpace:
    return IdSpace(32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def build_system(
    p_s: float = 0.5,
    n_peers: int = 40,
    seed: int = 7,
    **config_kwargs,
) -> HybridSystem:
    """Build a small hybrid system with the full join protocol."""
    config = HybridConfig(p_s=p_s, **config_kwargs)
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    if config.heartbeats_enabled or config.replica_sync_period > 0:
        # The engine never empties while HELLO or anti-entropy timers
        # run; advance far enough for trailing control messages to land
        # instead.
        system.settle(2_000.0)
    else:
        system.engine.run()  # drain any trailing control messages
    return system


@pytest.fixture
def small_system() -> HybridSystem:
    """A 40-peer half-and-half system (fresh per test)."""
    return build_system()


def check_ring(system: HybridSystem) -> None:
    """Assert the t-network is one consistent, sorted ring."""
    t_peers = {p.address: p for p in system.t_peers()}
    assert t_peers, "no t-peers"
    walk = system.ring_order()
    assert len(walk) == len(t_peers), "ring is split or truncated"
    for addr, peer in t_peers.items():
        suc = t_peers[peer.successor]
        assert suc.predecessor == addr
        assert peer.successor_pid == suc.p_id
        assert suc.predecessor_pid == peer.p_id
    pids = [t_peers[a].p_id for a in walk]
    lo = pids.index(min(pids))
    rotated = pids[lo:] + pids[:lo]
    assert rotated == sorted(rotated), "ring not in p_id order"


def check_trees(system: HybridSystem) -> None:
    """Assert every s-network is a connected tree rooted at its t-peer."""
    peers = {p.address: p for p in system.alive_peers()}
    for p in system.s_peers():
        assert p.cp != -1, f"s-peer {p.address} disconnected"
        assert p.cp in peers, f"s-peer {p.address} cp points at dead peer"
        assert p.t_peer in peers
        assert peers[p.t_peer].role == "t"
        # Walking cp pointers must reach the t-peer without cycles.
        seen = set()
        cur = p
        while cur.role == "s":
            assert cur.address not in seen, "cycle in tree"
            seen.add(cur.address)
            assert cur.address in peers[cur.cp].children, (
                f"{cur.address} not registered as child of its cp {cur.cp}"
            )
            cur = peers[cur.cp]
        assert cur.address == p.t_peer
