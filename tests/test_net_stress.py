"""Unit tests for link-stress accounting."""

from __future__ import annotations

from repro.net import LinkStress


def test_record_path_counts_each_edge():
    s = LinkStress()
    s.record_path([(0, 1), (1, 2)])
    s.record_path([(1, 2)])
    assert s.stress(0, 1) == 1
    assert s.stress(1, 2) == 2
    assert s.stress(2, 1) == 2  # order-insensitive query
    assert s.total_transmissions == 3


def test_unused_link_is_zero():
    s = LinkStress()
    assert s.stress(5, 6) == 0


def test_summary():
    s = LinkStress()
    for _ in range(4):
        s.record_path([(0, 1)])
    s.record_path([(2, 3)])
    summary = s.summary()
    assert summary.total_transmissions == 5
    assert summary.links_used == 2
    assert summary.max_stress == 4
    assert summary.mean_stress == 2.5


def test_empty_summary():
    summary = LinkStress().summary()
    assert summary.total_transmissions == 0
    assert summary.links_used == 0


def test_reset():
    s = LinkStress()
    s.record_path([(0, 1)])
    s.reset()
    assert s.total_transmissions == 0
    assert s.stress(0, 1) == 0
    assert s.counts() == {}
