"""Golden determinism test for the simulation substrate.

The perf rewrite (tuple-heap engine, batched flood delivery, memoized
transport delays) is only admissible because it is *bit-identical* to
the straightforward implementation: same seed, same event order, same
floating-point arithmetic, same metrics.  This test pins the full
metric bundle of a Fig.-3-style cell at ``Scale.quick()`` to exact
values captured from the pre-rewrite tree -- every comparison is ``==``
on floats on purpose.  If an "optimisation" moves any of these by one
ulp, it reordered events or changed arithmetic and must be fixed, not
re-goldened.

``scripts/bench_perf.py`` checks the same invariants at whichever scale
it benches.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.hybrid import HybridConfig
from repro.experiments.common import Scale, run_cell

# Captured at commit 4dba637 (pre-rewrite engine), seed 0.
GOLDEN = {
    "p_s": 0.3,
    "failure_ratio": 0.0,
    "mean_latency": 3121.8109594982875,
    "median_latency": 3124.0968402879807,
    "connum": 17056,
    "mean_contacts": 42.64,
    "successes": 400,
    "failures": 0,
    "n_t_peers": 84,
    "n_s_peers": 36,
}
GOLDEN_EVENTS_EXECUTED = 37_040


@pytest.fixture(scope="module")
def quick_cell():
    out = {}
    result = run_cell(HybridConfig(p_s=0.3), Scale.quick(), system_out=out)
    return result, out["system"]


class TestGoldenQuickCell:
    def test_metrics_bit_identical(self, quick_cell):
        result, _system = quick_cell
        for field, expected in GOLDEN.items():
            assert getattr(result, field) == expected, field

    def test_event_count_exact(self, quick_cell):
        _result, system = quick_cell
        assert system.engine.events_executed == GOLDEN_EVENTS_EXECUTED
        # Every executed event in this workload is a message delivery.
        assert system.transport.messages_sent == GOLDEN_EVENTS_EXECUTED
        assert system.transport.messages_dropped == 0

    def test_rerun_reproduces_every_field(self, quick_cell):
        first, _system = quick_cell
        second = run_cell(HybridConfig(p_s=0.3), Scale.quick())
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
