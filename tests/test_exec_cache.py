"""Tests for the content-addressed cell cache (repro.exec.cache)."""

from __future__ import annotations

import json

import pytest

from repro.core import HybridConfig
from repro.exec import CellCache, CellSpec, cell_key, code_fingerprint
from repro.exec import cache as cache_mod
from repro.experiments import CellResult, Scale

TINY = Scale(n_peers=40, n_keys=80, n_lookups=80, seed=1)


def _spec(**changes) -> CellSpec:
    return CellSpec(HybridConfig(**changes), TINY)


def _result(**overrides) -> CellResult:
    base = dict(
        p_s=0.3,
        failure_ratio=0.1 + 0.2,  # deliberately non-representable exactly
        mean_latency=3121.8109594982875,
        median_latency=1e-17,
        connum=17056,
        mean_contacts=42.64,
        successes=400,
        failures=0,
        n_t_peers=84,
        n_s_peers=36,
    )
    base.update(overrides)
    return CellResult(**base)


class TestKey:
    def test_stable_across_calls(self):
        assert cell_key(_spec(p_s=0.4)) == cell_key(_spec(p_s=0.4))

    def test_sensitive_to_every_input(self):
        base = cell_key(_spec(p_s=0.4))
        assert cell_key(_spec(p_s=0.5)) != base
        assert cell_key(_spec(p_s=0.4, ttl=6)) != base
        assert cell_key(CellSpec(HybridConfig(p_s=0.4), TINY.with_seed(2))) != base
        assert (
            cell_key(CellSpec(HybridConfig(p_s=0.4), TINY, crash_fraction=0.1)) != base
        )
        assert (
            cell_key(CellSpec(HybridConfig(p_s=0.4), TINY, settle_after_crash=1.0))
            != base
        )

    def test_tag_and_system_out_are_not_identity(self):
        # Identical cells declared by different experiments must collide
        # (that is the dedup) regardless of labelling.
        assert cell_key(_spec(p_s=0.4)) == cell_key(
            CellSpec(HybridConfig(p_s=0.4), TINY, tag="fig5a", system_out={})
        )

    def test_code_fingerprint_is_part_of_the_key(self, monkeypatch):
        before = cell_key(_spec(p_s=0.4))
        monkeypatch.setattr(cache_mod, "_FINGERPRINT", "0" * 64)
        assert cell_key(_spec(p_s=0.4)) != before

    def test_fingerprint_shape(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # hex


class TestCellCache:
    def test_miss_then_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(p_s=0.3)
        assert cache.get(spec) is None
        result = _result()
        cache.put(spec, result)
        # Exact dataclass equality -- floats must survive bit-for-bit.
        assert cache.get(spec) == result

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put(_spec(p_s=0.3), _result())
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(p_s=0.3)
        cache.put(spec, _result())
        path = cache.path_for(spec)
        path.write_text("{ not json")
        assert cache.get(spec) is None
        assert not path.exists()

    def test_schema_drift_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(p_s=0.3)
        cache.put(spec, _result())
        path = cache.path_for(spec)
        payload = json.loads(path.read_text())
        payload["result"]["bogus_field"] = 1
        path.write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_env_override_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_CACHE", str(tmp_path / "elsewhere"))
        assert CellCache().root == tmp_path / "elsewhere"

    def test_default_root_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_CACHE", raising=False)
        root = CellCache().root
        assert root.name == "repro-cells"
        assert root.parent.name == ".cache"

    def test_entries_fan_out_by_key_prefix(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _spec(p_s=0.3)
        cache.put(spec, _result())
        path = cache.path_for(spec)
        assert path.parent.parent == tmp_path
        assert path.parent.name == path.stem[:2]


class TestCellResultRoundtrip:
    def test_exact_equality_through_json(self):
        result = _result()
        wire = json.loads(json.dumps(result.to_dict()))
        assert CellResult.from_dict(wire) == result

    def test_unknown_field_rejected(self):
        data = _result().to_dict()
        data["extra"] = 1
        with pytest.raises(ValueError, match="unknown"):
            CellResult.from_dict(data)

    def test_missing_field_rejected(self):
        data = _result().to_dict()
        del data["connum"]
        with pytest.raises(ValueError, match="missing"):
            CellResult.from_dict(data)
