"""AioTransport fast path: bounded queues, encode-once fan-out, and
post-coalescing byte accounting, plus the mixed-version localnet the
per-connection codec reporting exists for.
"""

from __future__ import annotations

import asyncio
import logging
import socket

from repro.obs.registry import MetricsRegistry
from repro.overlay.messages import FloodQuery, Hello
from repro.runtime import (
    WIRE_V1,
    WIRE_V2,
    AioTransport,
    ClientGet,
    ClientPut,
    ClientStatus,
    LocalNet,
    acall,
    pack_endpoint,
)
from repro.runtime.client import runtime_codec


class _Origin:
    address = pack_endpoint("127.0.0.1", 65001)
    alive = True

    def receive(self, msg) -> None:  # pragma: no cover - never local
        pass


def _dead_endpoint() -> int:
    """A localhost port that is certainly closed: bind, read, release."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return pack_endpoint("127.0.0.1", port)


def _counter_total(snapshot, name: str, **label_filter) -> float:
    fam = snapshot.get(name)
    if not fam:
        return 0.0
    return sum(
        s["value"]
        for s in fam["samples"]
        if all(s["labels"].get(k) == v for k, v in label_filter.items())
    )


def test_backpressure_drops_oldest_and_counts(caplog) -> None:
    """A full outbound queue sheds the oldest frame, synchronously.

    The destination never accepts, so nothing drains: every enqueue
    beyond ``max_queue`` must evict the queue head (not the new frame)
    and bump ``repro_tx_backpressure_total`` -- all before the event
    loop runs, since bounding happens in ``_enqueue`` itself.
    """
    caplog.set_level(logging.WARNING, logger="repro.runtime.transport")
    dst = _dead_endpoint()

    async def scenario() -> None:
        reg = MetricsRegistry()
        codec = runtime_codec()
        transport = AioTransport(
            codec,
            asyncio.get_running_loop(),
            max_retries=2,
            backoff_base=30.0,  # writer sleeps in backoff; queue is ours
            max_queue=4,
            registry=reg,
        )
        origin = _Origin()
        try:
            msgs = [FloodQuery(query_id=i, key=f"k{i}") for i in range(10)]
            for m in msgs:
                assert transport.send(origin, dst, m) is True
            # Synchronous assertions: no await since the first send.
            conn = transport._conns[dst]
            assert len(conn.queue) == 4
            assert transport.backpressure_by_dest[dst] == 6
            assert transport.tx_queue_depth() == 4
            # Drop-OLDEST: the survivors are the newest four frames.
            kept = [codec.decode(memoryview(f)[4:]).query_id for f in conn.queue]
            assert kept == [6, 7, 8, 9]
            # Nothing hit a socket, so post-coalescing tx bytes stay 0.
            assert transport.bytes_sent == 0

            snap = reg.snapshot()
            from repro.runtime import format_endpoint

            endpoint = format_endpoint(dst)
            assert (
                _counter_total(snap, "repro_tx_backpressure_total", dest=endpoint)
                == 6.0
            )
            assert _counter_total(snap, "repro_tx_queue_depth") == 4.0
            info = transport.connection_info()[endpoint]
            assert info["queue_depth"] == 4
            assert info["backpressure_drops"] == 6
            assert info["tx_codec_version"] == WIRE_V2
        finally:
            await transport.aclose()

    asyncio.run(scenario())
    warnings = [
        r
        for r in caplog.records
        if r.name == "repro.runtime.transport" and "queue" in r.getMessage()
    ]
    assert len(warnings) == 1  # once per destination, however many drops


def test_send_many_encodes_once_and_fans_out() -> None:
    """Broadcast enqueues the *same* frame object to every destination."""

    async def scenario() -> None:
        transport = AioTransport(
            runtime_codec(),
            asyncio.get_running_loop(),
            max_retries=1,
            backoff_base=30.0,
        )
        origin = _Origin()
        dests = [_dead_endpoint() for _ in range(3)]
        try:
            delivered = transport.send_many(origin, dests, Hello())
            assert delivered == 3
            frames = [transport._conns[d].queue[0] for d in dests]
            assert frames[0] is frames[1] is frames[2]
        finally:
            await transport.aclose()

    asyncio.run(scenario())


def test_tx_bytes_counted_after_coalescing() -> None:
    """``bytes_sent`` reflects drained socket writes, not enqueues."""

    async def scenario() -> None:
        received = bytearray()
        got_some = asyncio.Event()

        async def sink(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                received.extend(chunk)
                got_some.set()
            writer.close()

        server = await asyncio.start_server(sink, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        dst = pack_endpoint("127.0.0.1", port)
        reg = MetricsRegistry()
        codec = runtime_codec()
        transport = AioTransport(
            codec, asyncio.get_running_loop(), registry=reg
        )
        origin = _Origin()
        try:
            msgs = [FloodQuery(query_id=i, key="burst") for i in range(20)]
            expected = sum(len(codec.frame(m)) for m in msgs)
            for m in msgs:
                transport.send(origin, dst, m)
            deadline = asyncio.get_running_loop().time() + 10
            while len(received) < expected:
                assert asyncio.get_running_loop().time() < deadline
                await got_some.wait()
                got_some.clear()
            # The batch drained: accounting equals actual socket bytes.
            assert transport.bytes_sent == expected == len(received)
            snap = reg.snapshot()
            assert (
                _counter_total(snap, "repro_wire_bytes_total", direction="tx")
                == expected
            )
            assert transport.tx_queue_depth() == 0
        finally:
            await transport.aclose()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_mixed_version_localnet_interops_and_reports() -> None:
    """A v1 peer in a v2 localnet: traffic flows, status tells them apart."""

    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=23, codec_versions=[1, 2, 2])
        await net.start(join_timeout=20)
        try:
            await net.wait_converged(timeout=20)
            v1_node, v2_node = net.nodes[0], net.nodes[1]
            assert v1_node.codec.version == WIRE_V1
            assert v2_node.codec.version == WIRE_V2

            # Cross-version put/get: store through the v1 peer, read it
            # back through a v2 peer (or vice versa if segments align).
            reply = await acall(
                v1_node.host, v1_node.port, ClientPut(key="mix.txt", value="both ways")
            )
            assert reply.ok, reply.error
            remote = net.node_for_key("mix.txt", v1_node)
            await asyncio.sleep(0.3)
            reply = await acall(
                remote.host, remote.port, ClientGet(key="mix.txt"), timeout=15
            )
            assert reply.ok, reply.error
            assert reply.payload["value"] == "both ways"

            # The status verb reports the *per-connection* observed
            # versions, not just the configured constant.
            status = await acall(
                net.bootstrap.host, net.bootstrap.port, ClientStatus()
            )
            assert status.ok
            codec_info = status.payload["codec"]
            assert codec_info["version"] == WIRE_V2
            assert sorted(codec_info["accepts"]) == [WIRE_V1, WIRE_V2]
            rx = codec_info["rx_peer_versions"]
            v1_ep = f"{v1_node.host}:{v1_node.port}"
            v2_ep = f"{v2_node.host}:{v2_node.port}"
            assert rx.get(v1_ep) == WIRE_V1
            assert rx.get(v2_ep) == WIRE_V2
            # And per-node status reports what each encodes with.
            s1 = await acall(v1_node.host, v1_node.port, ClientStatus())
            assert s1.payload["codec_version"] == WIRE_V1
            tx = s1.payload["codec"]["tx_connections"]
            assert any(c["tx_codec_version"] == WIRE_V1 for c in tx.values())
        finally:
            await net.stop()

    asyncio.run(scenario())
