"""Live swarm plane: put-file/get-file over a real localnet.

In-process daemons on real sockets, same pattern as the other runtime
integration tests: publish chunked content through one node, pull it
back through several others concurrently, and check that every piece
hash-verifies with zero integrity failures.  Also covers the disabled
gate (swarm is opt-in) and the non-manifest error path.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import (
    ClientConnection,
    ClientPut,
    ClientStatus,
    LocalNet,
    get_file,
    put_file,
)
from repro.runtime.localnet import fast_config

SWARM = dict(
    swarm_enabled=True,
    swarm_piece_size=8192,
    swarm_request_timeout=400.0,
)


def test_put_file_get_file_roundtrip() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=3, s_peers=5, seed=7,
                       config=fast_config(**SWARM))
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conns = []
        try:
            publisher, *others = net.nodes
            pub = await ClientConnection(
                publisher.host, publisher.port
            ).connect()
            conns.append(pub)

            data = bytes((i * 31 + i // 997) % 256 for i in range(300_000))
            reply = await put_file(pub, "blob", data, piece_size=8192,
                                   timeout=30.0)
            assert reply.payload["pieces"] == 37  # ceil(300000 / 8192)
            assert reply.payload["length"] == len(data)

            async def _fetch(node):
                conn = await ClientConnection(node.host, node.port).connect()
                conns.append(conn)
                return await get_file(conn, "blob", timeout=60.0)

            blobs = await asyncio.gather(*(_fetch(n) for n in others))
            assert all(blob == data for blob in blobs)

            # No piece failed verification anywhere in the cluster, and
            # the fetching daemons now hold (and serve) the content.
            seeds = 0
            for node in net.nodes:
                swarm = node.status_snapshot()["swarm"]
                assert swarm["integrity_failures"] == 0
                seeds += 1 if swarm["contents_held"] else 0
            assert seeds >= len(others)

            # The status verb reports the same counters over the wire.
            status = await pub.request(ClientStatus(), timeout=5.0)
            assert status.ok
            assert status.payload["swarm"]["enabled"] is True
            assert status.payload["swarm"]["integrity_failures"] == 0
        finally:
            for conn in conns:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())


def test_swarm_disabled_gate() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=1, seed=3, config=fast_config())
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conn = None
        try:
            node = net.nodes[0]
            conn = await ClientConnection(node.host, node.port).connect()
            with pytest.raises(RuntimeError, match="disabled"):
                await put_file(conn, "blob", b"x" * 1000, piece_size=256,
                               timeout=10.0)
            with pytest.raises(RuntimeError, match="disabled"):
                await get_file(conn, "blob", timeout=10.0)
        finally:
            if conn is not None:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())


def test_get_file_rejects_plain_values() -> None:
    async def scenario() -> None:
        net = LocalNet(t_peers=2, s_peers=2, seed=11,
                       config=fast_config(**SWARM))
        await net.start(join_timeout=30)
        await net.wait_converged(timeout=30)
        conn = None
        try:
            node = net.nodes[0]
            conn = await ClientConnection(node.host, node.port).connect()
            reply = await conn.request(
                ClientPut(key="plain", value="just a string"), timeout=10.0
            )
            assert reply.ok
            with pytest.raises(RuntimeError, match="manifest|chunked"):
                await get_file(conn, "plain", timeout=10.0)
        finally:
            if conn is not None:
                await conn.aclose()
            await net.stop()

    asyncio.run(scenario())
