"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.timers import PeriodicTimer, Timer


class TestScheduling:
    def test_events_run_in_time_order(self, engine):
        hits = []
        engine.call_at(5.0, hits.append, "late")
        engine.call_at(1.0, hits.append, "early")
        engine.call_at(3.0, hits.append, "mid")
        engine.run()
        assert hits == ["early", "mid", "late"]

    def test_ties_break_by_insertion_order(self, engine):
        hits = []
        for i in range(10):
            engine.call_at(2.0, hits.append, i)
        engine.run()
        assert hits == list(range(10))

    def test_clock_advances_to_event_time(self, engine):
        times = []
        engine.call_at(4.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [4.5]
        assert engine.now == 4.5

    def test_call_later_is_relative(self, engine):
        engine.call_at(10.0, lambda: engine.call_later(2.5, lambda: None))
        engine.run()
        assert engine.now == 12.5

    def test_past_scheduling_rejected(self, engine):
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(-1.0, lambda: None)

    def test_zero_delay_runs_after_current_instant_events(self, engine):
        hits = []
        engine.call_at(1.0, hits.append, "a")
        engine.call_at(1.0, lambda: engine.call_later(0.0, hits.append, "c"))
        engine.call_at(1.0, hits.append, "b")
        engine.run()
        assert hits == ["a", "b", "c"]

    def test_kwargs_passed(self, engine):
        out = {}
        engine.call_later(1.0, out.update, x=1)
        engine.run()
        assert out == {"x": 1}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        hits = []
        ev = engine.call_at(1.0, hits.append, "x")
        ev.cancel()
        engine.run()
        assert hits == []

    def test_cancel_is_idempotent(self, engine):
        ev = engine.call_at(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert not ev.pending

    def test_cancel_after_fire_is_noop(self, engine):
        ev = engine.call_at(1.0, lambda: None)
        engine.run()
        ev.cancel()  # must not raise

    def test_pending_count_skips_cancelled(self, engine):
        evs = [engine.call_at(float(i + 1), lambda: None) for i in range(5)]
        evs[0].cancel()
        evs[3].cancel()
        assert engine.pending_count == 3
        assert len(engine) == 3


class TestRunVariants:
    def test_run_returns_executed_count(self, engine):
        for i in range(7):
            engine.call_at(float(i), lambda: None)
        assert engine.run() == 7
        assert engine.events_executed == 7

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_run_until_stops_at_deadline(self, engine):
        hits = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.call_at(t, hits.append, t)
        engine.run_until(2.5)
        assert hits == [1.0, 2.0]
        assert engine.now == 2.5  # clock lands exactly on the deadline

    def test_run_until_includes_boundary(self, engine):
        hits = []
        engine.call_at(2.0, hits.append, "on-boundary")
        engine.run_until(2.0)
        assert hits == ["on-boundary"]

    def test_run_until_past_deadline_rejected(self, engine):
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_run_while_predicate(self, engine):
        hits = []
        for i in range(10):
            engine.call_at(float(i), hits.append, i)
        engine.run_while(lambda: len(hits) < 4)
        assert hits == [0, 1, 2, 3]

    def test_livelock_guard(self, engine):
        def reschedule():
            engine.call_later(0.0, reschedule)

        engine.call_later(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=1000)

    def test_cascading_events(self, engine):
        hits = []

        def chain(n):
            hits.append(n)
            if n > 0:
                engine.call_later(1.0, chain, n - 1)

        engine.call_later(0.0, chain, 5)
        engine.run()
        assert hits == [5, 4, 3, 2, 1, 0]
        assert engine.now == 5.0


class TestFastTier:
    """The no-handle scheduling tier (schedule_at / schedule_after /
    schedule_batch) shares one clock, one sequence counter and one heap
    with the handle tier, so events from both interleave exactly by
    (time, insertion order)."""

    def test_schedule_at_orders_with_handles(self, engine):
        hits = []
        engine.call_at(2.0, hits.append, "handle@2")
        engine.schedule_at(1.0, hits.append, ("fast@1",))
        engine.schedule_at(2.0, hits.append, ("fast@2",))
        engine.run()
        assert hits == ["fast@1", "handle@2", "fast@2"]

    def test_schedule_after_is_relative(self, engine):
        engine.schedule_at(10.0, engine.schedule_after, (2.5, lambda: None))
        engine.run()
        assert engine.now == 12.5

    def test_fast_tier_rejects_past_and_negative(self, engine):
        engine.call_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_after(-0.5, lambda: None)

    def test_schedule_batch_preserves_entry_order(self, engine):
        hits = []
        n = engine.schedule_batch(
            [(2.0, hits.append, (i,)) for i in range(20)]
            + [(1.0, hits.append, ("first",))]
        )
        assert n == 21
        assert engine.pending_count == 21
        engine.run()
        assert hits == ["first"] + list(range(20))

    def test_schedule_batch_interleaves_with_singles(self, engine):
        hits = []
        engine.schedule_at(2.0, hits.append, ("before",))
        engine.schedule_batch([(2.0, hits.append, (i,)) for i in range(3)])
        engine.schedule_at(2.0, hits.append, ("after",))
        engine.run()
        assert hits == ["before", 0, 1, 2, "after"]

    def test_live_count_tracks_both_tiers(self, engine):
        ev = engine.call_at(3.0, lambda: None)
        engine.schedule_at(1.0, lambda: None)
        assert engine.pending_count == 2
        assert len(engine) == 2
        ev.cancel()
        assert engine.pending_count == 1
        assert engine.run() == 1

    def test_run_until_pops_each_live_event_once(self, engine):
        # Regression: the old implementation peeked and re-popped, so a
        # cancellation storm could double-count; each live event must
        # dispatch exactly once and cancelled handles must not dispatch.
        hits = []
        keep = [engine.call_at(float(t), hits.append, t) for t in (1.0, 2.0, 3.0)]
        keep[1].cancel()
        engine.schedule_at(2.5, hits.append, (2.5,))
        engine.run_until(2.75)
        assert hits == [1.0, 2.5]
        assert engine.events_executed == 2
        assert engine.pending_count == 1
        engine.run_until(3.5)
        assert hits == [1.0, 2.5, 3.0]


class TestPoppedHandleEdges:
    """Cancelling an already-popped (fired) handle and scheduling at
    exactly the current timestamp -- the edges the sharded executor
    leans on -- must be well-defined."""

    def test_cancel_after_fire_keeps_fired_state(self, engine):
        hits = []
        ev = engine.call_at(1.0, hits.append, "x")
        engine.run()
        ev.cancel()
        # The callback ran; the handle must not pretend otherwise.
        assert hits == ["x"]
        assert ev.cancelled is False
        assert not ev.pending
        assert engine.pending_count == 0

    def test_cancel_own_handle_inside_callback(self, engine):
        handles = {}

        def fire_and_cancel():
            handles["ev"].cancel()  # already popped: must be a no-op

        handles["ev"] = engine.call_at(1.0, fire_and_cancel)
        engine.call_at(2.0, lambda: None)
        assert engine.run() == 2
        assert handles["ev"].cancelled is False
        assert engine.pending_count == 0

    def test_double_cancel_counts_live_once(self, engine):
        ev = engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert engine.pending_count == 1
        assert engine.run() == 1
        assert engine.pending_count == 0

    def test_schedule_at_exactly_now_runs_this_instant(self, engine):
        hits = []
        engine.call_at(3.0, lambda: engine.schedule_at(3.0, hits.append, ("same-t",)))
        engine.run()
        assert hits == ["same-t"]
        assert engine.now == 3.0

    def test_call_at_exactly_now_runs_after_current_events(self, engine):
        hits = []
        engine.call_at(3.0, lambda: engine.call_at(3.0, hits.append, "child"))
        engine.call_at(3.0, hits.append, "sibling")
        engine.run()
        assert hits == ["sibling", "child"]

    def test_schedule_batch_at_exactly_now(self, engine):
        hits = []

        def batch_now():
            n = engine.schedule_batch(
                [(engine.now, hits.append, (i,)) for i in range(12)]
            )
            assert n == 12

        engine.call_at(5.0, batch_now)
        engine.run()
        assert hits == list(range(12))
        assert engine.now == 5.0

    def test_timer_restart_from_own_expiry(self, engine):
        ticks = []
        box = {}

        def expire_and_restart():
            ticks.append(engine.now)
            if len(ticks) < 3:
                box["t"].start()  # re-arm from inside the expiry callback

        box["t"] = Timer(engine, 1.0, expire_and_restart)
        box["t"].start()
        engine.run()
        assert ticks == [1.0, 2.0, 3.0]
        # The timer is spent; cancel after the fact stays a no-op.
        box["t"].cancel()
        assert engine.pending_count == 0

    def test_periodic_timer_stop_inside_tick(self, engine):
        timer_box = {}

        def tick():
            if timer_box["t"].ticks == 2:
                timer_box["t"].stop()

        timer_box["t"] = PeriodicTimer(engine, 1.0, tick)
        timer_box["t"].start()
        engine.run()
        assert timer_box["t"].ticks == 2
        assert engine.pending_count == 0


class TestShardPrimitives:
    """run_before / next_event_time / pin_clock -- the conservative-sync
    primitives of repro.shard."""

    def test_run_before_is_strict(self, engine):
        hits = []
        for t in (1.0, 2.0, 3.0):
            engine.call_at(t, hits.append, t)
        engine.run_before(2.0)
        assert hits == [1.0]
        # Clock stays at the last executed event, not the deadline.
        assert engine.now == 1.0
        engine.run_before(3.5)
        assert hits == [1.0, 2.0, 3.0]

    def test_run_before_skips_cancelled_heads(self, engine):
        hits = []
        evs = [engine.call_at(float(t), hits.append, t) for t in (1.0, 2.0)]
        evs[0].cancel()
        assert engine.run_before(5.0) == 1
        assert hits == [2.0]
        assert engine.pending_count == 0

    def test_next_event_time(self, engine):
        assert engine.next_event_time() is None
        ev = engine.call_at(4.0, lambda: None)
        engine.schedule_at(7.0, lambda: None)
        assert engine.next_event_time() == 4.0
        ev.cancel()
        assert engine.next_event_time() == 7.0

    def test_pin_clock_moves_both_ways(self, engine):
        engine.call_at(10.0, lambda: None)
        engine.run()
        engine.pin_clock(4.0)  # rewind: heap is empty
        assert engine.now == 4.0
        engine.schedule_at(8.0, lambda: None)
        engine.pin_clock(6.0)  # forward, still before the pending event
        assert engine.now == 6.0
        with pytest.raises(SimulationError):
            engine.pin_clock(9.0)  # would put the pending event in the past

    def test_pin_clock_ignores_cancelled_events(self, engine):
        ev = engine.call_at(5.0, lambda: None)
        ev.cancel()
        engine.pin_clock(20.0)
        assert engine.now == 20.0
        assert engine.next_event_time() is None

    def test_schedule_after_pin_rewind(self, engine):
        hits = []
        engine.call_at(10.0, lambda: None)
        engine.run()
        engine.pin_clock(2.0)
        engine.schedule_after(1.0, hits.append, ("post-pin",))
        engine.run()
        assert hits == ["post-pin"]
        assert engine.now == 3.0
