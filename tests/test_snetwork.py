"""s-network protocol tests: degree-capped tree joins, connect points,
graceful leaves with subtree rejoin (Section 3.2.2)."""

from __future__ import annotations

import pytest

from repro.core import HybridConfig, HybridSystem

from .conftest import build_system, check_ring, check_trees


def drain(system):
    system.engine.run()


class TestTreeConstruction:
    def test_deep_tree_under_small_delta(self):
        """delta=2 with many s-peers per network must create depth > 1."""
        system = build_system(p_s=0.9, n_peers=40, delta=2)
        check_trees(system)
        depths = []
        peers = {p.address: p for p in system.alive_peers()}
        for p in system.s_peers():
            d = 0
            cur = p
            while cur.role == "s":
                cur = peers[cur.cp]
                d += 1
            depths.append(d)
        assert max(depths) >= 2

    def test_larger_delta_shallower_trees(self):
        def mean_depth(delta: int) -> float:
            system = build_system(p_s=0.9, n_peers=60, delta=delta, seed=4)
            peers = {p.address: p for p in system.alive_peers()}
            depths = []
            for p in system.s_peers():
                d, cur = 0, p
                while cur.role == "s":
                    cur = peers[cur.cp]
                    d += 1
                depths.append(d)
            return sum(depths) / len(depths)

        assert mean_depth(5) <= mean_depth(2)

    def test_join_walk_respects_existing_structure(self):
        system = build_system(p_s=0.85, n_peers=40, delta=3)
        # Additional joins keep invariants.
        for _ in range(5):
            system.add_peer()
        drain(system)
        check_trees(system)

    def test_link_usage_policy_builds_valid_tree(self):
        system = build_system(
            p_s=0.85, n_peers=40, connect_policy="link_usage",
        )
        check_trees(system)

    def test_link_usage_prefers_fast_connect_points(self):
        """Under the 5.1 policy, high-capacity peers should end up with
        more children on average."""
        system = build_system(
            p_s=0.9, n_peers=80, connect_policy="link_usage", seed=9,
        )
        fast = [p for p in system.s_peers() if p.capacity > 3]
        slow = [p for p in system.s_peers() if p.capacity <= 1.01]
        if fast and slow:
            fast_children = sum(len(p.children) for p in fast) / len(fast)
            slow_children = sum(len(p.children) for p in slow) / len(slow)
            assert fast_children >= slow_children


class TestSLeave:
    def test_leaf_leave_is_clean(self):
        system = build_system(p_s=0.8, n_peers=30)
        leaf = next(p for p in system.s_peers() if not p.children)
        cp = system.peers[leaf.cp]
        system.leave_peers([leaf.address])
        drain(system)
        assert not leaf.alive
        assert leaf.address not in cp.children
        check_trees(system)

    def test_interior_leave_rejoins_subtree(self):
        system = build_system(p_s=0.9, n_peers=40, delta=2, seed=6)
        interior = next(p for p in system.s_peers() if p.children)
        children = set(interior.children)
        system.leave_peers([interior.address])
        drain(system)
        assert not interior.alive
        check_trees(system)
        # Former children are still connected (rejoined via the t-peer).
        for c in children:
            peer = system.peers[c]
            if peer.alive and peer.role == "s":
                assert peer.cp != -1

    def test_leave_transfers_load_to_neighbor(self):
        system = build_system(p_s=0.8, n_peers=30)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(90)])
        total = system.total_items()
        loaded = next(p for p in system.s_peers() if len(p.database) > 0)
        system.leave_peers([loaded.address])
        drain(system)
        assert system.total_items() == total  # nothing lost

    def test_server_counts_updated_on_leave(self):
        system = build_system(p_s=0.8, n_peers=30)
        before = system.server.s_count
        victim = system.s_peers()[0]
        system.leave_peers([victim.address])
        drain(system)
        assert system.server.s_count == before - 1

    def test_mass_leave_keeps_invariants(self):
        system = build_system(p_s=0.9, n_peers=40, delta=2, seed=2)
        victims = [p.address for p in system.s_peers()[::3]]
        for addr in victims:
            system.peers[addr].leave()
        drain(system)
        check_ring(system)
        check_trees(system)


class TestLookupAfterChurn:
    def test_lookups_survive_graceful_churn(self):
        system = build_system(p_s=0.8, n_peers=40, ttl=6)
        peers = [p.address for p in system.alive_peers()]
        system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(80)])
        victims = [p.address for p in system.s_peers()[:8]]
        for addr in victims:
            system.peers[addr].leave()
        drain(system)
        alive = [p.address for p in system.alive_peers()]
        system.run_lookups([(alive[(i * 7) % len(alive)], f"k{i}") for i in range(80)])
        assert system.query_stats().failure_ratio == 0.0
