"""Unit tests for the per-peer data store (Table 1's bulk moves)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataStore
from repro.overlay.idspace import IdSpace

SPACE = IdSpace(16)


def make_store() -> DataStore:
    return DataStore(SPACE)


class TestBasicOps:
    def test_insert_and_get(self):
        db = make_store()
        db.insert("k", "v")
        item = db.get("k")
        assert item is not None and item.value == "v"
        assert item.d_id == SPACE.hash_key("k")

    def test_overwrite(self):
        db = make_store()
        db.insert("k", "v1")
        db.insert("k", "v2")
        assert db.get("k").value == "v2"
        assert len(db) == 1

    def test_explicit_did(self):
        db = make_store()
        db.insert("k", "v", d_id=42)
        assert db.get("k").d_id == 42

    def test_delete(self):
        db = make_store()
        db.insert("k", "v")
        assert db.delete("k")
        assert not db.delete("k")
        assert db.get("k") is None

    def test_contains_iter_keys(self):
        db = make_store()
        db.insert("a", 1)
        db.insert("b", 2)
        assert "a" in db and "c" not in db
        assert sorted(db.keys()) == ["a", "b"]
        assert {i.key for i in db} == {"a", "b"}


class TestSegmentMoves:
    def test_extract_segment_moves_matching(self):
        db = make_store()
        db.insert("in", None, d_id=10)
        db.insert("out", None, d_id=100)
        moved = db.extract_segment(5, 20)
        assert [i.key for i in moved] == ["in"]
        assert "in" not in db and "out" in db

    def test_extract_segment_boundary_semantics(self):
        # Segment (lo, hi]: lo excluded, hi included.
        db = make_store()
        db.insert("at-lo", None, d_id=5)
        db.insert("at-hi", None, d_id=20)
        moved = db.extract_segment(5, 20)
        assert [i.key for i in moved] == ["at-hi"]

    def test_extract_segment_wraps(self):
        db = make_store()
        db.insert("wrapped", None, d_id=3)
        moved = db.extract_segment(SPACE.size - 10, 5)
        assert [i.key for i in moved] == ["wrapped"]

    def test_extract_all(self):
        db = make_store()
        for i in range(5):
            db.insert(f"k{i}", i)
        moved = db.extract_all()
        assert len(moved) == 5
        assert len(db) == 0

    @given(
        dids=st.lists(
            st.integers(min_value=0, max_value=SPACE.size - 1),
            min_size=1,
            max_size=30,
        ),
        lo=st.integers(min_value=0, max_value=SPACE.size - 1),
        hi=st.integers(min_value=0, max_value=SPACE.size - 1),
    )
    @settings(max_examples=150)
    def test_extract_conserves_items(self, dids, lo, hi):
        """Load transfer never loses or duplicates items."""
        db = make_store()
        for i, d in enumerate(dids):
            db.insert(f"k{i}", i, d_id=d)
        before = len(db)
        moved = db.extract_segment(lo, hi)
        assert len(moved) + len(db) == before
        for item in moved:
            assert SPACE.owner_segment_contains(item.d_id, lo, hi)
        for item in db:
            assert not SPACE.owner_segment_contains(item.d_id, lo, hi)

    def test_as_tuples_round_trip(self):
        db = make_store()
        db.insert("a", 1)
        db.insert("b", 2)
        assert sorted(db.as_tuples()) == [("a", 1), ("b", 2)]
