#!/usr/bin/env python3
"""Interest-based file sharing communities (Section 5.3).

Peers declare an interest (music / video / books / games) when joining;
the server groups each interest into its own s-network, and the
clustered key space keeps a category's data inside that s-network's
segment.  Most lookups then resolve inside the origin's own community
without ever touching the t-network ring.

The script contrasts the interest-based deployment with a baseline that
scatters the same peers and data randomly, and prints how much locality
the enhancement buys.

Run:  python examples/file_sharing.py
"""

from __future__ import annotations

from repro import HybridConfig
from repro.workloads import interest_sharing, standard_sharing

CATEGORIES = ["music", "video", "books", "games"]


def main() -> None:
    print("== interest-based s-networks (Section 5.3) ==")
    # Interest communities are large (~50 peers here), so give the flood
    # a radius that covers a community tree leaf-to-leaf.
    result = interest_sharing(
        HybridConfig(p_s=0.8, delta=3, ttl=10),
        n_peers=200,
        categories=CATEGORIES,
        keys_per_category=150,
        n_lookups=800,
        seed=7,
        locality=0.9,  # 90% of lookups target the peer's own interest
    )
    stats = result.stats
    system = result.system
    print(f"communities: {len(CATEGORIES)} interests over "
          f"{len(system.t_peers())} s-networks")
    for category, anchor in sorted(system.server.interest_map.items()):
        size = system.snetwork_sizes().get(anchor, 0)
        print(f"  {category:<6} anchored at t-peer {anchor} "
              f"({size} member s-peers)")
    print(f"failure ratio: {stats.failure_ratio:.4f}")
    print(f"mean latency:  {stats.mean_latency:.1f} ms")
    print(f"local lookups: {stats.local_fraction:.1%} "
          "(resolved without the t-network)")
    print(f"connum:        {stats.connum}")

    print()
    print("== baseline: same scale, random assignment, uniform keys ==")
    base = standard_sharing(
        HybridConfig(p_s=0.8, delta=3, ttl=10),
        n_peers=200,
        n_keys=len(CATEGORIES) * 150,
        n_lookups=800,
        seed=7,
    )
    print(f"failure ratio: {base.stats.failure_ratio:.4f}")
    print(f"mean latency:  {base.stats.mean_latency:.1f} ms")
    print(f"local lookups: {base.stats.local_fraction:.1%}")
    print(f"connum:        {base.stats.connum}")

    print()
    faster = 1 - result.stats.mean_latency / base.stats.mean_latency
    print(f"interest-based communities resolved lookups {faster:.0%} faster:")
    print("most queries never touch the t-network ring "
          f"({result.stats.local_fraction:.0%} local vs "
          f"{base.stats.local_fraction:.0%} in the baseline), trading some "
          "extra flood traffic inside each community")


if __name__ == "__main__":
    main()
