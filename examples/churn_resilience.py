#!/usr/bin/env python3
"""Churn resilience: crash a fifth of the system and watch it heal.

Demonstrates the paper's failure machinery end-to-end (Section 3.2.2):
HELLO heartbeats detect crashed neighbors, orphaned s-peers rejoin
through their t-peer, s-peers whose *t-peer* crashed run a replacement
election at the bootstrap server, and the ring stays whole -- t-peer
positions never move, only their occupants change.

Afterwards the script verifies the paper's Fig. 5b observation: the
lookup failure ratio equals the fraction of data that died with the
crashed peers, no more.

Run:  python examples/churn_resilience.py
"""

from __future__ import annotations

from repro import HybridConfig, HybridSystem
from repro.metrics import MembershipLog
from repro.workloads import KeyWorkload


def main() -> None:
    config = HybridConfig(
        p_s=0.7,
        delta=3,
        ttl=6,
        heartbeats_enabled=True,
        hello_period=1_000.0,       # 1 s heartbeats
        neighbor_timeout=3_500.0,   # 3.5 s to declare a neighbor dead
        lookup_timeout=30_000.0,
    )
    system = HybridSystem(config, n_peers=150, seed=11)
    system.build()
    log = MembershipLog(system.trace)

    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(450, peers, system.rngs.stream("demo"))
    system.populate(workload.store_plan())
    total_items = system.total_items()
    print(f"built {len(peers)} peers "
          f"({len(system.t_peers())} t / {len(system.s_peers())} s), "
          f"holding {total_items} items")

    # -- the crash storm ---------------------------------------------------
    crashed = system.crash_random_fraction(0.20)
    crashed_t = sum(1 for a in crashed if system.peers[a].role == "t")
    print(f"\ncrashed {len(crashed)} peers without warning "
          f"({crashed_t} of them t-peers)")

    system.settle(45_000.0)  # let detection, elections and rejoins run

    print("recovery events observed:")
    print(f"  crash detections:        {log.count('crash.detected')}")
    print(f"  t-peer elections won:    {log.count('t.promotion')}")
    print(f"  ring slots dissolved:    {log.count('server.excise')}")
    print(f"  s-peers re-attached:     {log.count('s.rejoined')}")
    print(f"  rejoin retries needed:   {log.count('s.rejoin.retry')}")

    # -- verify the healed topology -----------------------------------------
    alive = system.alive_peers()
    orphans = [p.address for p in alive if p.role == "s" and p.cp == -1]
    ring = system.ring_order()
    print(f"\nafter healing: {len(alive)} alive peers, "
          f"ring covers {len(ring)}/{len(system.t_peers())} t-peers, "
          f"{len(orphans)} orphaned s-peers")

    # -- failure ratio equals data loss (Fig. 5b) ------------------------------
    surviving = {i.key for p in alive for i in p.database}
    loss = 1 - len(surviving) / total_items
    addresses = [p.address for p in alive]
    pairs = workload.sample_lookups(450, addresses)
    system.run_lookups(pairs)
    stats = system.query_stats()
    print(f"\ndata lost with crashed peers: {loss:.1%}")
    print(f"lookup failure ratio:         {stats.failure_ratio:.1%}")
    print("=> failures track data loss; the surviving topology resolves "
          "everything that still exists")


if __name__ == "__main__":
    main()
