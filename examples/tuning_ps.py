#!/usr/bin/env python3
"""Choosing the system parameter p_s: simulation meets analysis.

Sweeps the headline knob of the paper -- the fraction of s-peers -- and
prints, side by side, what Section 4's closed forms predict and what
the event-driven simulation measures: lookup latency and connum fall
with p_s while the failure ratio climbs once the flood radius stops
covering the growing s-networks.  The paper's recommendation (~0.7 with
a TTL picked to keep failures acceptable) drops out of the table.

Run:  python examples/tuning_ps.py
"""

from __future__ import annotations

from repro import HybridConfig
from repro.analysis import failure_ratio_model, join_latency, lookup_latency
from repro.metrics import format_table
from repro.workloads import standard_sharing

N_PEERS = 150
DELTA = 3
TTL = 4
PS_GRID = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)


def main() -> None:
    rows = []
    for p_s in PS_GRID:
        result = standard_sharing(
            HybridConfig(p_s=p_s, delta=DELTA, ttl=TTL),
            n_peers=N_PEERS,
            n_keys=450,
            n_lookups=450,
            seed=13,
        )
        stats = result.stats
        rows.append(
            [
                f"{p_s:.1f}",
                f"{join_latency(max(p_s, 1e-6), N_PEERS, DELTA):.2f}",
                f"{lookup_latency(max(p_s, 1e-6), N_PEERS, TTL, DELTA):.2f}",
                f"{failure_ratio_model(p_s, DELTA, TTL):.3f}",
                f"{stats.mean_latency:.0f}",
                f"{stats.failure_ratio:.3f}",
                stats.connum,
            ]
        )
    print(
        format_table(
            [
                "p_s",
                "join (model, hops)",
                "lookup (model, hops)",
                "fail (model)",
                "latency (sim, ms)",
                "fail (sim)",
                "connum (sim)",
            ],
            rows,
            title=(
                f"Tuning p_s: Section 4 models vs simulation "
                f"(N={N_PEERS}, delta={DELTA}, TTL={TTL})"
            ),
        )
    )
    print()
    print("reading the table: latency and connum keep improving with p_s,")
    print("the failure ratio is the price; p_s ~ 0.7 with TTL 4 is the")
    print("paper's sweet spot (efficiency gains, failures still near zero).")


if __name__ == "__main__":
    main()
