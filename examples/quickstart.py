#!/usr/bin/env python3
"""Quickstart: build a hybrid P2P system, share some files, look them up.

Builds a 200-peer deployment at the paper's recommended operating point
(p_s = 0.7, delta = 3, TTL = 4), inserts a few hundred items from
random peers, runs lookups from other peers, and prints the evaluation
metrics the paper reports (latency, failure ratio, connum).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import HybridConfig, HybridSystem
from repro.workloads import KeyWorkload


def main() -> None:
    # -- configure and build -------------------------------------------
    config = HybridConfig(p_s=0.7, delta=3, ttl=4)
    system = HybridSystem(config, n_peers=200, seed=42)
    system.build()
    print(
        f"built a hybrid system: {len(system.t_peers())} t-peers on the ring, "
        f"{len(system.s_peers())} s-peers in "
        f"{len(system.snetwork_sizes())} s-networks"
    )

    # -- share data ------------------------------------------------------
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        n_keys=600, peer_addresses=peers, rng=system.rngs.stream("demo")
    )
    system.populate(workload.store_plan())
    print(f"stored {workload and len(workload)} items; "
          f"system now holds {system.total_items()}")

    # -- look data up ------------------------------------------------------
    pairs = workload.sample_lookups(600, peers)
    system.run_lookups(pairs)
    stats = system.query_stats()
    print()
    print(f"lookups:        {stats.total}")
    print(f"failure ratio:  {stats.failure_ratio:.4f}")
    print(f"mean latency:   {stats.mean_latency:.1f} ms (simulated)")
    print(f"median latency: {stats.median_latency:.1f} ms")
    print(f"connum:         {stats.connum} peers contacted in total")
    print(f"local lookups:  {stats.local_fraction:.1%} resolved in the "
          "origin's own s-network")

    # -- single direct operation through the public peer API ---------------
    alice = system.s_peers()[0]
    bob = system.s_peers()[-1]
    alice.store("holiday-photos.tar", b"...bytes...")
    system.engine.run()
    qid = bob.lookup("holiday-photos.tar")
    system.engine.run_while(lambda: system.queries.unresolved > 0)
    record = system.queries.get(qid)
    print()
    print(
        f"peer {bob.address} looked up peer {alice.address}'s file: "
        f"{record.status} in {record.latency:.1f} ms "
        f"(held by peer {record.holder})"
    )


if __name__ == "__main__":
    main()
