#!/usr/bin/env python3
"""A heterogeneous swarm: fast peers take the backbone, trackers serve
the stubs (Sections 5.1 + 5.5).

One third of the peers sit on dial-up-class links, one third on cable-
class links ten times faster (the paper's setup).  With the link-
heterogeneity enhancement the server hands t-duty to the fastest links;
with BitTorrent-style s-networks each t-peer doubles as a tracker so no
flooding happens at all.  The script stacks the two enhancements and
measures what each buys.

Run:  python examples/heterogeneous_swarm.py
"""

from __future__ import annotations

from collections import Counter

from repro import HybridConfig, HybridSystem
from repro.net import CapacityClass
from repro.workloads import KeyWorkload


def run(config: HybridConfig, label: str, seed: int = 5):
    system = HybridSystem(config, n_peers=180, seed=seed)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(540, peers, system.rngs.stream("demo"))
    system.populate(workload.store_plan())
    system.run_lookups(workload.sample_lookups(540, peers))
    stats = system.query_stats()
    print(f"{label:<34} latency={stats.mean_latency:7.1f} ms  "
          f"connum={stats.connum:6d}  fail={stats.failure_ratio:.3f}")
    return system, stats


def main() -> None:
    base = HybridConfig(p_s=0.75, delta=3, ttl=6)
    print("variant                            results")
    print("-" * 72)
    _, base_stats = run(base, "base (random roles, flooding)")
    hetero_system, hetero_stats = run(
        base.with_changes(heterogeneity_aware=True, connect_policy="link_usage"),
        "+ link heterogeneity (5.1)",
    )
    _, bt_stats = run(
        base.with_changes(
            heterogeneity_aware=True,
            connect_policy="link_usage",
            snetwork_style="bittorrent",
        ),
        "+ BitTorrent-style trackers (5.5)",
    )

    # Who ended up on the backbone?
    print()
    classes = Counter(
        hetero_system.capacities.capacity_class(0).__class__(  # noqa: simple map
            0
        )
        for _ in ()
    )
    t_class = Counter()
    for p in hetero_system.t_peers():
        if p.capacity >= 0.4:
            t_class["high"] += 1
        elif p.capacity >= 0.1:
            t_class["medium"] += 1
        else:
            t_class["low"] += 1
    total_t = sum(t_class.values())
    print(f"t-peer link classes under the 5.1 policy "
          f"({total_t} t-peers): {dict(t_class)}")

    print()
    print(f"heterogeneity awareness cut latency by "
          f"{1 - hetero_stats.mean_latency / base_stats.mean_latency:.0%}")
    print(f"tracker-style s-networks cut contacted peers by "
          f"{1 - bt_stats.connum / base_stats.connum:.0%} vs the base")


if __name__ == "__main__":
    main()
