#!/usr/bin/env python3
"""Live-mode quickstart: the same overlay over real TCP sockets.

The simulator quickstart (``examples/quickstart.py``) builds a system
in-process and advances virtual time.  This example runs the *same*
protocol code as live asyncio nodes on localhost: a bootstrap daemon,
two t-peers and two s-peers, each with its own listening socket, timers
on the wall clock, and every protocol message crossing real TCP.

Run:  PYTHONPATH=src python examples/live_localnet.py
"""

from __future__ import annotations

import asyncio

from repro.runtime import ClientGet, ClientPut, ClientStatus, LocalNet, acall


async def main() -> None:
    # -- boot the localnet -------------------------------------------------
    # 1 bootstrap daemon + 2 t-peers + 2 s-peers on ephemeral ports.
    net = LocalNet(t_peers=2, s_peers=2, seed=42)
    await net.start()
    await net.wait_converged()
    endpoints = net.endpoints()
    print(f"bootstrap daemon on {endpoints['bootstrap']}")
    for node in net.nodes:
        peer = node.peer
        print(f"  node {node.host}:{node.port}  role={peer.role}  p_id={peer.p_id}")

    # -- share data --------------------------------------------------------
    # Talk to nodes exactly like the CLI does: client verbs over TCP.
    alice = net.nodes[0]
    reply = await acall(
        alice.host, alice.port,
        ClientPut(key="holiday-photos.tar", value="...bytes..."),
    )
    print(f"\nput via {alice.host}:{alice.port} -> d_id={reply.payload['d_id']}")
    await asyncio.sleep(0.3)  # let the StoreRequest reach the owner

    # -- look data up ------------------------------------------------------
    # Fetch from a node whose segment does NOT own the key, so the
    # lookup is routed across the t-network over the sockets.
    bob = net.node_for_key("holiday-photos.tar", alice)
    reply = await acall(bob.host, bob.port, ClientGet(key="holiday-photos.tar"))
    print(
        f"get via {bob.host}:{bob.port} -> value={reply.payload['value']!r} "
        f"(held by overlay address {reply.payload['holder']})"
    )

    # -- inspect the directory ---------------------------------------------
    status = await acall(net.bootstrap.host, net.bootstrap.port, ClientStatus())
    print(
        f"\ndirectory: {status.payload['t_count']} t-peers, "
        f"{status.payload['s_count']} s-peers, "
        f"{status.payload['joins_served']} joins served"
    )

    await net.stop()
    print("localnet shut down cleanly")


if __name__ == "__main__":
    asyncio.run(main())
