"""Benchmark + reproduction of Fig. 5a / 5b (lookup failure ratio).

5a: failure ratio vs p_s for TTL in {1, 2, 4} -- ~0 below p_s = 0.5,
rising with p_s, falling with TTL.

5b: failure ratio vs crash fraction for several p_s -- linear in the
crash fraction, ~flat in p_s (scheme-2 placement spreads the loss).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5_failure

from .conftest import bench_scale, emit

PS_5A = (0.0, 0.3, 0.5, 0.7, 0.9)
FRACTIONS = (0.0, 0.1, 0.2, 0.3)
PS_5B = (0.3, 0.6, 0.9)


def test_fig5a_failure_vs_ttl(benchmark):
    scale = bench_scale(seed=3)
    result = benchmark.pedantic(
        lambda: fig5_failure.run_5a(scale, ps_values=PS_5A),
        rounds=1,
        iterations=1,
    )
    rows = "\n".join(
        f"p_s={ps:.1f}: "
        + "  ".join(f"TTL={t}: {result.failure(t, ps):.3f}" for t in (1, 2, 4))
        for ps in PS_5A
    )
    emit("fig5a", f"Fig. 5a -- lookup failure ratio ({scale.n_peers} peers)\n{rows}")

    # Structured-grade accuracy below p_s = 0.5 for every TTL.
    for ttl in (1, 2, 4):
        for ps in (0.0, 0.3):
            assert result.failure(ttl, ps) < 0.02
    # Rising in p_s at TTL = 1; TTL = 4 dominates TTL = 1 at high p_s.
    assert result.failure(1, 0.9) > result.failure(1, 0.5)
    assert result.failure(4, 0.9) <= result.failure(1, 0.9)
    assert result.failure(4, 0.9) < 0.15  # "4 percent if TTL = 4" band


def test_fig5b_failure_vs_crash(benchmark):
    scale = bench_scale(seed=4)
    result = benchmark.pedantic(
        lambda: fig5_failure.run_5b(scale, fractions=FRACTIONS, ps_values=PS_5B),
        rounds=1,
        iterations=1,
    )
    rows = "\n".join(
        f"crash={fr:.2f}: "
        + "  ".join(f"p_s={ps:.1f}: {result.failure(ps, fr):.3f}" for ps in PS_5B)
        for fr in FRACTIONS
    )
    emit("fig5b", f"Fig. 5b -- failure ratio under crash ({scale.n_peers} peers)\n{rows}")

    for ps in PS_5B:
        # ~Linear in the crash fraction: failure tracks the loss.
        assert result.failure(ps, 0.0) < 0.03
        assert result.failure(ps, 0.3) > result.failure(ps, 0.1)
        assert abs(result.failure(ps, 0.2) - 0.2) < 0.12
    # ~Flat in p_s at a fixed crash fraction.
    at_02 = [result.failure(ps, 0.2) for ps in PS_5B]
    assert max(at_02) - min(at_02) < 0.15
