"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at
``Scale.quick()`` (override with ``REPRO_BENCH_SCALE=medium|paper``),
prints the rows/series the paper reports, and archives them under
``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import Scale

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale(seed: int = 0) -> Scale:
    """The workload size benchmarks run at (env-selectable)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    factory = {
        "quick": Scale.quick,
        "medium": Scale.medium,
        "paper": Scale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")
    return factory(seed=seed)


def emit(name: str, text: str) -> None:
    """Print a reproduced table/figure and archive it."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def scale() -> Scale:
    return bench_scale()
