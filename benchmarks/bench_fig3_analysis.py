"""Benchmark + reproduction of Fig. 3a / 3b (Section 4 closed forms).

Regenerates both analytical panels at the paper's parameters
(N = 1000, delta in {2,3,4,5}) and checks the shapes the paper reads
off them.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3_analysis

from .conftest import emit


def test_fig3a_join_latency(benchmark):
    result = benchmark(lambda: fig3_analysis.run(n_peers=1000, points=99))
    emit("fig3", fig3_analysis.main(points=11))
    # U-shape with the paper's optimum band and delta ordering.
    for delta in (2, 3, 4, 5):
        ps_star, hops_star = result.join[delta].argmin()
        assert 0.6 <= ps_star <= 0.9
        assert hops_star < result.join[delta].hops[0]  # beats pure structured
    assert result.join[5].argmin()[1] <= result.join[2].argmin()[1]


def test_fig3b_lookup_latency(benchmark):
    result = benchmark(lambda: fig3_analysis.run(n_peers=1000, points=99))
    # Flat and delta-independent below p_s = 0.5.
    low = [c.hops[c.p_s < 0.5] for c in result.lookup.values()]
    for a, b in zip(low, low[1:]):
        assert np.allclose(a, b)
    # Decreasing, and delta = 5 at or below delta = 2 everywhere.
    for c in result.lookup.values():
        assert c.hops[0] >= c.hops[-1]
    assert (result.lookup[5].hops <= result.lookup[2].hops + 1e-9).all()
