"""Benchmarks for the extension features beyond the paper's figures.

* **caching** (the paper's stated future work, Section 7): hot-key load
  spreading -- "distribute the load among as many peers as possible so
  that no peer is overwhelmed";
* **random walks vs flooding** (Section 1 names both primitives);
* **maintenance cost vs p_s** (the Section 3.1 claim the paper argues
  but never plots).
"""

from __future__ import annotations

from repro.core import HybridConfig, HybridSystem
from repro.experiments import (
    ext_churn,
    ext_comparison,
    ext_maintenance,
    ext_replication,
    ext_stress,
)

from .conftest import bench_scale, emit


def _hot_key_system(cache: bool, scale, seed: int = 15) -> HybridSystem:
    config = HybridConfig(p_s=0.7, ttl=8, cache_enabled=cache)
    system = HybridSystem(config, n_peers=scale.n_peers, seed=seed)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    items = [(peers[i % len(peers)], f"bg{i}", i) for i in range(scale.n_keys // 2)]
    items.append((peers[0], "hot", "hot-value"))
    system.populate(items)
    pairs = []
    for _ in range(4):
        pairs.extend((addr, "hot") for addr in peers)
    system.run_lookups(pairs, wave_size=50)
    return system


def test_ext_caching_load_balance(benchmark):
    scale = bench_scale(seed=15)

    def run_both():
        return _hot_key_system(False, scale), _hot_key_system(True, scale)

    plain, cached = benchmark.pedantic(run_both, rounds=1, iterations=1)
    plain_max = max(p.answers_served for p in plain.alive_peers())
    cached_max = max(p.answers_served for p in cached.alive_peers())
    cached_servers = sum(1 for p in cached.alive_peers() if p.answers_served > 0)
    plain_servers = sum(1 for p in plain.alive_peers() if p.answers_served > 0)
    emit(
        "ext_caching",
        "Extension -- hot-key caching (paper's future work)\n"
        f"no cache: hottest peer answered {plain_max} queries "
        f"({plain_servers} peers served anything)\n"
        f"cache:    hottest peer answered {cached_max} queries "
        f"({cached_servers} peers served anything)\n"
        f"connum: {plain.query_stats().connum} -> {cached.query_stats().connum}",
    )
    assert cached.query_stats().failure_ratio == 0.0
    assert cached_max < plain_max  # no peer overwhelmed
    assert cached_servers >= plain_servers  # load spread over surrogates
    assert cached.query_stats().connum < plain.query_stats().connum


def test_ext_walk_vs_flood(benchmark):
    scale = bench_scale(seed=16)

    def run(mode: str, **kw):
        config = HybridConfig(
            p_s=0.9, ttl=8, search_mode=mode, lookup_timeout=10_000.0, **kw
        )
        system = HybridSystem(config, n_peers=scale.n_peers, seed=scale.seed)
        system.build()
        peers = [p.address for p in system.alive_peers()]
        system.populate(
            [(peers[i % len(peers)], f"k{i}", i) for i in range(scale.n_keys)]
        )
        system.run_lookups(
            [
                (peers[(i * 7) % len(peers)], f"k{i}")
                for i in range(scale.n_lookups)
            ]
        )
        return system.query_stats()

    def run_all():
        return (
            run("flood"),
            run("walk", walkers=1, walk_ttl=5),
            run("walk", walkers=4, walk_ttl=12),
        )

    flood, lean_walk, rich_walk = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "ext_walks",
        "Extension -- flooding vs random walks (p_s = 0.9)\n"
        f"flood (ttl=8):          connum={flood.connum:6d} fail={flood.failure_ratio:.3f}\n"
        f"walk (1 walker, ttl 5): connum={lean_walk.connum:6d} fail={lean_walk.failure_ratio:.3f}\n"
        f"walk (4 walkers, ttl 12): connum={rich_walk.connum:6d} fail={rich_walk.failure_ratio:.3f}",
    )
    # Lean walks bound the budget below the flood's cost; rich walks buy
    # the success probability back with more traffic.
    assert lean_walk.connum < flood.connum
    assert rich_walk.failure_ratio <= lean_walk.failure_ratio


def test_ext_maintenance_cost(benchmark):
    scale = bench_scale()
    result = benchmark.pedantic(
        lambda: ext_maintenance.run(
            n_peers=scale.n_peers, churn_events=30, seed=scale.seed
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ext_maintenance",
        ext_maintenance.main(n_peers=scale.n_peers, churn_events=30),
    )
    # Section 3.1's claim: the hybrid design slashes maintenance.  The
    # pure-structured endpoint is by far the most expensive; cost falls
    # steeply as peers move into s-networks.
    per_event = {ps: cell.per_event for ps, cell in result.items()}
    assert per_event[0.0] > 2 * per_event[0.6]
    assert min(per_event, key=per_event.get) >= 0.4  # optimum at mid/high p_s


def test_ext_architecture_comparison(benchmark):
    scale = bench_scale()
    scores = benchmark.pedantic(
        lambda: ext_comparison.run(
            n_peers=scale.n_peers, n_keys=scale.n_keys,
            n_lookups=scale.n_lookups, seed=scale.seed,
        ),
        rounds=1,
        iterations=1,
    )
    emit("ext_comparison", ext_comparison.main(n_peers=scale.n_peers, seed=scale.seed))
    chord = next(s for n, s in scores.items() if n == "chord")
    gnutella = next(s for n, s in scores.items() if n.startswith("gnutella"))
    hybrid = next(s for n, s in scores.items() if n.startswith("hybrid"))
    # The paper's thesis, quantified: the hybrid matches structured
    # accuracy, floods a fraction of Gnutella's contacts, and maintains
    # itself at a fraction of Chord's cost.
    assert hybrid.failure_ratio <= 0.02
    assert hybrid.contacts_per_lookup < 0.25 * gnutella.contacts_per_lookup
    assert hybrid.maintenance_per_event < 0.25 * chord.maintenance_per_event


def test_ext_link_stress(benchmark):
    scale = bench_scale()
    cells = benchmark.pedantic(
        lambda: ext_stress.run(
            n_peers=scale.n_peers, n_keys=scale.n_keys,
            n_lookups=scale.n_lookups, seed=scale.seed,
        ),
        rounds=1,
        iterations=1,
    )
    emit("ext_stress", ext_stress.main(n_peers=scale.n_peers))
    # Section 5.2's motivation: binning relieves the backbone where
    # s-networks carry real membership (p_s >= 0.7).
    for p_s in (0.7, 0.9):
        base = cells[(p_s, "base")].summary
        binned = cells[(p_s, "binned")].summary
        assert binned.total_transmissions < base.total_transmissions


def test_ext_sustained_churn(benchmark):
    cells = benchmark.pedantic(
        lambda: ext_churn.run(n_peers=60, n_keys=180, n_lookups=180),
        rounds=1,
        iterations=1,
    )
    emit("ext_churn", ext_churn.main(n_peers=60))
    lifetimes = sorted(cells)  # ascending lifetime = descending churn
    # Harsher churn (shorter lifetimes) loses more data.
    assert cells[lifetimes[0]].failure_ratio >= cells[lifetimes[-1]].failure_ratio
    # Even the harshest cell keeps serving the surviving majority.
    assert cells[lifetimes[0]].failure_ratio < 0.5


def test_ext_replication(benchmark):
    cells = benchmark.pedantic(
        lambda: ext_replication.run(
            n_peers=80, n_keys=240, n_lookups=240,
            factors=(1, 2), fractions=(0.2,),
        ),
        rounds=1,
        iterations=1,
    )
    emit("ext_replication", ext_replication.main(n_peers=80))
    # One extra copy turns ~f loss into a small residue.
    assert cells[(2, 0.2)].failure_ratio < 0.5 * cells[(1, 0.2)].failure_ratio
