"""Benchmark + reproduction of Fig. 6a / 6b (lookup latency and the
Section 5 enhancements).

6a: latency vs p_s with and without link-heterogeneity consideration.
6b: latency vs p_s, basic vs landmark binning (8 / 12 landmarks).
"""

from __future__ import annotations

from repro.experiments import fig6_latency

from .conftest import bench_scale, emit

PS = (0.0, 0.4, 0.7, 0.9)


def test_fig6a_link_heterogeneity(benchmark):
    scale = bench_scale(seed=21)
    result = benchmark.pedantic(
        lambda: fig6_latency.run_6a(scale, ps_values=PS), rounds=1, iterations=1
    )
    rows = "\n".join(
        f"p_s={ps:.1f}: base={result.latency('base', ps):7.0f} ms   "
        f"hetero={result.latency('hetero', ps):7.0f} ms"
        for ps in PS
    )
    emit("fig6a", f"Fig. 6a -- mean lookup latency ({scale.n_peers} peers)\n{rows}")

    # Latency decreases in p_s (fewer ring hops).
    assert result.latency("base", 0.9) < result.latency("base", 0.0)
    # Heterogeneity awareness helps in the paper's sweet spot
    # (p_s in [0.4, 0.8]; ~20% at 0.7 in the paper).
    assert result.latency("hetero", 0.7) < result.latency("base", 0.7)
    assert result.latency("hetero", 0.4) < result.latency("base", 0.4)


def test_fig6b_topology_awareness(benchmark):
    scale = bench_scale(seed=17)
    result = benchmark.pedantic(
        lambda: fig6_latency.run_6b(scale, ps_values=PS), rounds=1, iterations=1
    )
    rows = "\n".join(
        f"p_s={ps:.1f}: base={result.latency('base', ps):7.0f} ms   "
        f"8lm={result.latency('bin8', ps):7.0f} ms   "
        f"12lm={result.latency('bin12', ps):7.0f} ms"
        for ps in PS
    )
    emit("fig6b", f"Fig. 6b -- mean lookup latency ({scale.n_peers} peers)\n{rows}")

    # Binning helps once s-network legs carry weight (mid-to-high p_s).
    base_mid = result.latency("base", 0.7) + result.latency("base", 0.9)
    bin_mid = result.latency("bin8", 0.7) + result.latency("bin8", 0.9)
    assert bin_mid < base_mid
    # At p_s = 0 there are no s-networks to cluster: curves coincide
    # within noise (same protocol path).
    assert abs(result.latency("bin8", 0.0) - result.latency("base", 0.0)) < (
        0.25 * result.latency("base", 0.0)
    )
