"""Benchmark + reproduction of Fig. 4 (data placement PDFs).

Runs both placement schemes at p_s in {0, 0.4, 0.9} and checks the
paper's observations: scheme 1 piles data on t-peers at high p_s,
scheme 2 flattens the distribution, the schemes coincide at p_s = 0.
"""

from __future__ import annotations

from repro.experiments import fig4_distribution

from .conftest import bench_scale, emit


def test_fig4_placement_distributions(benchmark):
    scale = bench_scale(seed=2)
    cells = benchmark.pedantic(
        lambda: fig4_distribution.run(scale), rounds=1, iterations=1
    )
    emit("fig4", fig4_distribution.main(scale))

    direct_hi = cells[("direct", 0.9)].summary
    spread_hi = cells[("spread", 0.9)].summary
    # Scheme 1 concentrates at high p_s; scheme 2 flattens (Fig. 4c vs 4f).
    assert direct_hi.gini > spread_hi.gini
    assert direct_hi.max > spread_hi.max
    assert direct_hi.fraction_zero > spread_hi.fraction_zero
    # Conservation across schemes.
    assert direct_hi.total_items == spread_hi.total_items
    # "when p_s is small, the two schemes can distribute the data items
    # evenly among the peers" -- identical at p_s = 0.
    assert cells[("direct", 0.0)].summary.gini == cells[("spread", 0.0)].summary.gini
    # Imbalance grows with p_s under scheme 1 (Fig. 4a -> 4c).
    assert (
        cells[("direct", 0.9)].summary.gini
        > cells[("direct", 0.0)].summary.gini
    )
