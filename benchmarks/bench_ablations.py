"""Ablation benchmarks for the design choices DESIGN.md calls out.

* tree vs mesh s-networks -- Section 3.2.2 argues trees eliminate
  duplicate flood deliveries ("a tree structure guarantees that each
  peer receives the query message exactly once");
* linear vs finger ring forwarding -- the simulation's linear mode vs
  the Chord-style acceleration the analysis assumes;
* Gnutella-style vs BitTorrent-style s-networks (Section 5.5);
* bypass links on/off under a repeating lookup pattern (Section 5.4).
"""

from __future__ import annotations

from repro.core import HybridConfig, HybridSystem
from repro.workloads import KeyWorkload

from .conftest import bench_scale, emit


def _run(config: HybridConfig, scale, repeat_lookups: int = 1):
    system = HybridSystem(config, n_peers=scale.n_peers, seed=scale.seed)
    system.build()
    addresses = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(scale.n_keys, addresses, system.rngs.stream("workload"))
    system.populate(workload.store_plan())
    pairs = workload.sample_lookups(scale.n_lookups, addresses)
    for _ in range(repeat_lookups):
        system.run_lookups(pairs, wave_size=scale.wave_size)
    return system.query_stats()


def test_ablation_tree_vs_mesh(benchmark):
    scale = bench_scale(seed=31)
    tree_cfg = HybridConfig(p_s=0.8, ttl=8)
    mesh_cfg = tree_cfg.with_changes(mesh_extra_links=2)

    def run_both():
        return _run(tree_cfg, scale), _run(mesh_cfg, scale)

    tree, mesh = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_tree_vs_mesh",
        "Ablation -- tree vs mesh s-networks\n"
        f"tree: duplicates={tree.duplicate_contacts} connum={tree.connum} "
        f"fail={tree.failure_ratio:.3f}\n"
        f"mesh: duplicates={mesh.duplicate_contacts} connum={mesh.connum} "
        f"fail={mesh.failure_ratio:.3f}",
    )
    # The paper's bandwidth claim: trees deliver each query exactly once.
    assert tree.duplicate_contacts == 0
    assert mesh.duplicate_contacts > 0


def test_ablation_ring_routing(benchmark):
    scale = bench_scale(seed=32)
    linear = HybridConfig(p_s=0.3, ring_routing="linear")
    finger = HybridConfig(p_s=0.3, ring_routing="finger")

    def run_both():
        return _run(linear, scale), _run(finger, scale)

    lin, fin = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_ring_routing",
        "Ablation -- linear vs finger ring forwarding (p_s = 0.3)\n"
        f"linear: connum={lin.connum} latency={lin.mean_latency:.0f} ms\n"
        f"finger: connum={fin.connum} latency={fin.mean_latency:.0f} ms",
    )
    assert fin.failure_ratio == lin.failure_ratio == 0.0
    assert fin.connum < lin.connum
    assert fin.mean_latency < lin.mean_latency


def test_ablation_bittorrent_snetworks(benchmark):
    scale = bench_scale(seed=33)
    gnutella = HybridConfig(p_s=0.8, ttl=6)
    bittorrent = gnutella.with_changes(snetwork_style="bittorrent")

    def run_both():
        return _run(gnutella, scale), _run(bittorrent, scale)

    gnu, bt = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_bittorrent",
        "Ablation -- Gnutella-style vs BitTorrent-style s-networks (p_s = 0.8)\n"
        f"gnutella:   connum={gnu.connum} fail={gnu.failure_ratio:.3f}\n"
        f"bittorrent: connum={bt.connum} fail={bt.failure_ratio:.3f}",
    )
    # "no flooding is needed": tracker resolution contacts far fewer peers.
    assert bt.failure_ratio == 0.0
    assert bt.connum < gnu.connum


def test_ablation_bypass_links(benchmark):
    scale = bench_scale(seed=34)
    off = HybridConfig(p_s=0.85, ttl=8)
    on = off.with_changes(bypass_links=True, bypass_lifetime=1e9)

    def run_both():
        return _run(off, scale, repeat_lookups=3), _run(on, scale, repeat_lookups=3)

    base, bypassed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ablation_bypass",
        "Ablation -- bypass links under a repeating lookup pattern (p_s = 0.85)\n"
        f"off: connum={base.connum} latency={base.mean_latency:.0f} ms\n"
        f"on:  connum={bypassed.connum} latency={bypassed.mean_latency:.0f} ms",
    )
    assert bypassed.failure_ratio == 0.0
    # Shortcuts divert repeats off the ring.
    assert bypassed.connum < base.connum
