"""Micro-benchmarks of the substrates the system is built on.

Not paper figures -- these watch the cost centers that dominate the
reproduction's wall-clock (event engine throughput, topology + routing
precomputation, system build) so regressions are caught next to the
experiment benches.
"""

from __future__ import annotations

import numpy as np

from repro.core import HybridConfig, HybridSystem
from repro.net import Router, TransitStubConfig, config_for_size, generate_transit_stub
from repro.sim import Engine


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()

        def chain(n):
            if n > 0:
                engine.call_later(1.0, chain, n - 1)

        for _ in range(10):
            engine.call_later(0.0, chain, 1000)
        engine.run()
        return engine.events_executed

    executed = benchmark(run_10k_events)
    assert executed >= 10_000


def test_topology_and_routing_precompute(benchmark):
    rng = np.random.default_rng(7)

    def build():
        topo = generate_transit_stub(config_for_size(500), rng)
        return Router(topo)

    router = benchmark.pedantic(build, rounds=1, iterations=1)
    assert router.n >= 500


def test_system_build_200_peers(benchmark):
    def build():
        system = HybridSystem(HybridConfig(p_s=0.7), n_peers=200, seed=1)
        system.build()
        return system

    system = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(system.alive_peers()) == 200
