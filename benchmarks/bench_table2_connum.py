"""Benchmark + reproduction of Table 2 (total connum vs p_s x TTL).

Shapes checked (Section 6.3): connum falls ~linearly in p_s, the
p_s = 0.9 column is a small fraction of the structured endpoint, and
the TTL only inflates connum at high p_s.
"""

from __future__ import annotations

from repro.experiments import table2_connum

from .conftest import bench_scale, emit

PS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)


def test_table2_connum(benchmark):
    scale = bench_scale(seed=5)
    result = benchmark.pedantic(
        lambda: table2_connum.run(scale, ps_values=PS), rounds=1, iterations=1
    )
    emit("table2", table2_connum.main(scale, ps_values=PS))

    # Monotone decreasing in p_s at every TTL.
    for ttl in (1, 2, 4):
        series = [result.connum(ps, ttl) for ps in PS]
        assert all(a > b for a, b in zip(series, series[1:])), series
    # The paper's 10x headline: p_s = 0.9 is a small fraction of p_s = 0.
    assert result.connum(0.9, 4) < 0.35 * result.connum(0.0, 4)
    # TTL is irrelevant at p_s = 0 and only grows connum at high p_s.
    assert result.connum(0.0, 1) == result.connum(0.0, 4)
    assert result.connum(0.9, 4) >= result.connum(0.9, 1)
