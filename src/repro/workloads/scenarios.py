"""Canned end-to-end scenarios.

Thin composition helpers shared by the examples, the experiment drivers
and the integration tests: build a system, push a workload through it,
return the stats.  Every scenario is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import ASSIGN_INTEREST, HybridConfig
from ..core.hybrid import HybridSystem
from ..core.lookup import QueryStats
from .keys import KeyWorkload

__all__ = ["ScenarioResult", "standard_sharing", "interest_sharing"]


@dataclass
class ScenarioResult:
    """What a scenario hands back to its caller."""

    system: HybridSystem
    workload: KeyWorkload
    stats: QueryStats

    @property
    def failure_ratio(self) -> float:
        return self.stats.failure_ratio

    @property
    def mean_latency(self) -> float:
        return self.stats.mean_latency

    @property
    def connum(self) -> int:
        return self.stats.connum


def standard_sharing(
    config: HybridConfig,
    n_peers: int,
    n_keys: int,
    n_lookups: int,
    seed: int = 0,
    zipf_s: float = 0.0,
    crash_fraction: float = 0.0,
    settle_after_crash: float = 30_000.0,
    wave_size: int = 200,
) -> ScenarioResult:
    """The paper's base experiment: build, insert, (optionally crash), look up."""
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    addresses = [p.address for p in system.alive_peers()]
    rng = system.rngs.stream("workload")
    workload = KeyWorkload.uniform(n_keys, addresses, rng, zipf_s=zipf_s)
    system.populate(workload.store_plan())
    if crash_fraction > 0.0:
        system.crash_random_fraction(crash_fraction)
        system.settle(settle_after_crash)
    alive = [p.address for p in system.alive_peers()]
    pairs = workload.sample_lookups(n_lookups, alive)
    system.run_lookups(pairs, wave_size=wave_size)
    return ScenarioResult(system=system, workload=workload, stats=system.query_stats())


def interest_sharing(
    config: HybridConfig,
    n_peers: int,
    categories: Sequence[str],
    keys_per_category: int,
    n_lookups: int,
    seed: int = 0,
    locality: float = 0.9,
    wave_size: int = 200,
) -> ScenarioResult:
    """Section 5.3: interest-based s-networks with local-heavy lookups.

    Peers declare interests round-robin over ``categories``; the server
    anchors each category at the t-peer owning its hash, and the
    clustered key space keeps category data inside that segment.
    """
    if config.assignment != ASSIGN_INTEREST:
        config = config.with_changes(assignment=ASSIGN_INTEREST)
    if config.interest_band_bits == 0:
        config = config.with_changes(
            interest_band_bits=max(8, config.id_bits // 2 - 4)
        )
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    interests: List[Optional[str]] = [
        categories[i % len(categories)] for i in range(n_peers)
    ]
    system.build(interests=interests)
    rng = system.rngs.stream("workload")
    peers_by_interest: Dict[str, List[int]] = {c: [] for c in categories}
    for peer in system.alive_peers():
        if peer.interest in peers_by_interest:
            peers_by_interest[peer.interest].append(peer.address)
    workload = KeyWorkload.with_interests(
        categories, keys_per_category, peers_by_interest, rng, locality=locality
    )
    system.populate(workload.store_plan())
    alive = [p.address for p in system.alive_peers()]
    bias = {c: addrs for c, addrs in peers_by_interest.items() if addrs}
    lookup_rng = np.random.default_rng(seed + 1)
    pairs = []
    for origin, key in workload.sample_lookups(n_lookups, alive, origin_bias=None):
        cat = key.partition(":")[0]
        pool = bias.get(cat, alive)
        if lookup_rng.random() < locality and pool:
            origin = int(pool[int(lookup_rng.integers(0, len(pool)))])
        pairs.append((origin, key))
    system.run_lookups(pairs, wave_size=wave_size)
    return ScenarioResult(system=system, workload=workload, stats=system.query_stats())
