"""Synthetic data-sharing workloads.

The paper's evaluation uses generated data ("Data is generated and
inserted to the system by peers ... we assume that the data are
inserted to the system before it is looked up").  This module provides
the generators the experiments draw from:

* :class:`KeyWorkload` -- a universe of keys, each assigned to a random
  originating peer; lookups drawn uniformly or Zipf-weighted (file-
  sharing popularity is famously heavy-tailed [refs 21, 22]);
* interest-category keys (``"category:name"``) for the Section 5.3
  experiments, aligned with :class:`~repro.overlay.idspace.ClusteredIdSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["KeyWorkload", "zipf_weights", "interest_keys"]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) probabilities over ranks 1..n (s=0: uniform)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if s < 0:
        raise ValueError("s must be >= 0")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    return w / w.sum()


def interest_keys(category: str, count: int, start: int = 0) -> List[str]:
    """Keys for one interest category (``"music:item-3"`` style)."""
    if ":" in category:
        raise ValueError("category must not contain ':'")
    return [f"{category}:item-{i}" for i in range(start, start + count)]


@dataclass
class KeyWorkload:
    """A fixed key universe with originators and a lookup sampler.

    Parameters
    ----------
    keys:
        The key universe (store exactly once each).
    originators:
        Peer address that generates each key (parallel to ``keys``).
    rng:
        Sampler randomness.
    zipf_s:
        Popularity skew for lookups; 0 = uniform (the paper's base
        workload is unspecified, uniform is the neutral choice).
    """

    keys: List[str]
    originators: List[int]
    rng: np.random.Generator
    zipf_s: float = 0.0

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.originators):
            raise ValueError("keys and originators must be parallel lists")
        if not self.keys:
            raise ValueError("workload must contain at least one key")
        self._weights = zipf_weights(len(self.keys), self.zipf_s)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        n_keys: int,
        peer_addresses: Sequence[int],
        rng: np.random.Generator,
        zipf_s: float = 0.0,
        prefix: str = "key",
    ) -> "KeyWorkload":
        """``n_keys`` unique keys, originators drawn uniformly."""
        if not peer_addresses:
            raise ValueError("need at least one peer address")
        keys = [f"{prefix}-{i}" for i in range(n_keys)]
        origins = [
            int(peer_addresses[int(rng.integers(0, len(peer_addresses)))])
            for _ in range(n_keys)
        ]
        return cls(keys=keys, originators=origins, rng=rng, zipf_s=zipf_s)

    @classmethod
    def with_interests(
        cls,
        categories: Sequence[str],
        keys_per_category: int,
        peers_by_interest: dict,
        rng: np.random.Generator,
        zipf_s: float = 0.0,
        locality: float = 1.0,
    ) -> "KeyWorkload":
        """Interest-clustered workload (Section 5.3).

        ``peers_by_interest`` maps category -> peer addresses with that
        interest.  With probability ``locality`` a key's originator is
        drawn from its own category's peers ("the data generated in one
        s-network is looked up mostly by a peer in the same s-network"),
        else from anyone.
        """
        if not (0.0 <= locality <= 1.0):
            raise ValueError("locality must be in [0, 1]")
        all_peers = [a for peers in peers_by_interest.values() for a in peers]
        if not all_peers:
            raise ValueError("no peers supplied")
        keys: List[str] = []
        origins: List[int] = []
        for cat in categories:
            own = list(peers_by_interest.get(cat, [])) or all_peers
            for key in interest_keys(cat, keys_per_category):
                pool = own if rng.random() < locality else all_peers
                keys.append(key)
                origins.append(int(pool[int(rng.integers(0, len(pool)))]))
        return cls(keys=keys, originators=origins, rng=rng, zipf_s=zipf_s)

    # ------------------------------------------------------------------
    def store_plan(self) -> List[Tuple[int, str, str]]:
        """(origin, key, value) triples for :meth:`HybridSystem.populate`."""
        return [
            (origin, key, f"value-of-{key}")
            for origin, key in zip(self.originators, self.keys)
        ]

    def sample_lookups(
        self,
        n_lookups: int,
        peer_addresses: Sequence[int],
        origin_bias: Optional[dict] = None,
    ) -> List[Tuple[int, str]]:
        """(origin, key) lookup pairs.

        Keys are drawn by popularity; origins uniformly from
        ``peer_addresses``, unless ``origin_bias`` maps a key's category
        to preferred origins (interest locality in lookups too).
        """
        if not peer_addresses:
            raise ValueError("need at least one origin address")
        idx = self.rng.choice(len(self.keys), size=n_lookups, p=self._weights)
        pairs: List[Tuple[int, str]] = []
        for i in idx:
            key = self.keys[int(i)]
            pool: Sequence[int] = peer_addresses
            if origin_bias is not None:
                cat = key.partition(":")[0]
                pool = origin_bias.get(cat, peer_addresses)
            origin = int(pool[int(self.rng.integers(0, len(pool)))])
            pairs.append((origin, key))
        return pairs

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys)
