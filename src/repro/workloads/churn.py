"""Churn schedules.

Measurement studies of deployed P2P systems report heavy churn
[refs 21, 22]; the paper's own churn experiment (Fig. 5b) crashes a
random fraction of peers.  This module generates both styles:

* :func:`crash_fraction_schedule` -- the paper's setup: one batch of
  simultaneous crashes;
* :class:`PoissonChurn` -- continuous churn: exponential inter-arrival
  joins plus exponential peer lifetimes ending in a graceful leave or a
  crash, for the robustness tests that go beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Tuple

import numpy as np

__all__ = ["ChurnEvent", "crash_fraction_schedule", "PoissonChurn"]

EventKind = Literal["join", "leave", "crash"]


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled membership change.

    ``target`` is a peer address for leave/crash, or -1 for a join
    (the address does not exist until the join happens).
    """

    time: float
    kind: EventKind
    target: int = -1


def crash_fraction_schedule(
    addresses: List[int],
    fraction: float,
    at_time: float,
    rng: np.random.Generator,
) -> List[ChurnEvent]:
    """The paper's Fig. 5b churn: crash a random fraction at one instant.

    "the peers are chosen randomly to leave the system without
    transferring its data load."
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    k = int(round(fraction * len(addresses)))
    if k == 0:
        return []
    chosen = rng.choice(addresses, size=k, replace=False)
    return [ChurnEvent(time=at_time, kind="crash", target=int(a)) for a in chosen]


@dataclass
class PoissonChurn:
    """Continuous churn: Poisson joins, exponential lifetimes.

    Parameters
    ----------
    join_rate:
        Joins per millisecond.
    mean_lifetime:
        Mean peer lifetime (ms) after its join.
    crash_probability:
        Fraction of departures that are crashes (vs graceful leaves).
    """

    join_rate: float
    mean_lifetime: float
    crash_probability: float = 0.5
    _events: List[ChurnEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.join_rate <= 0:
            raise ValueError("join_rate must be positive")
        if self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if not (0.0 <= self.crash_probability <= 1.0):
            raise ValueError("crash_probability must be in [0, 1]")

    def generate(
        self,
        duration: float,
        existing: List[int],
        rng: np.random.Generator,
    ) -> List[ChurnEvent]:
        """Events over ``[0, duration)``.

        Existing peers get lifetimes too (memoryless, so sampling their
        remaining lifetime from the same exponential is exact); joined
        peers' departures are scheduled with target -1 -- the driver
        resolves them to the address the join actually produced.
        """
        events: List[ChurnEvent] = []
        for addr in existing:
            life = float(rng.exponential(self.mean_lifetime))
            if life < duration:
                kind: EventKind = (
                    "crash" if rng.random() < self.crash_probability else "leave"
                )
                events.append(ChurnEvent(time=life, kind=kind, target=int(addr)))
        t = float(rng.exponential(1.0 / self.join_rate))
        while t < duration:
            events.append(ChurnEvent(time=t, kind="join"))
            end = t + float(rng.exponential(self.mean_lifetime))
            if end < duration:
                kind = "crash" if rng.random() < self.crash_probability else "leave"
                # target -1: resolved by the driver to the joined address.
                events.append(ChurnEvent(time=end, kind=kind, target=-1))
            t += float(rng.exponential(1.0 / self.join_rate))
        events.sort(key=lambda e: e.time)
        return events


def apply_churn(system, events: List[ChurnEvent], settle_between: float = 0.0) -> Tuple[int, int, int]:
    """Drive a :class:`~repro.core.hybrid.HybridSystem` through a schedule.

    Returns (joins, leaves, crashes) applied.  Join events create a new
    peer; leave/crash events with target -1 pick the most recently
    churn-joined alive peer (completing the PoissonChurn contract).
    """
    joins = leaves = crashes = 0
    churn_joined: List[int] = []
    for event in sorted(events, key=lambda e: e.time):
        if event.time > system.engine.now:
            system.engine.run_until(event.time)
        if event.kind == "join":
            peer = system.add_peer(wait=False)
            churn_joined.append(peer.address)
            joins += 1
            continue
        target = event.target
        if target == -1:
            while churn_joined and not (
                churn_joined[-1] in system.peers
                and system.peers[churn_joined[-1]].alive
            ):
                churn_joined.pop()
            if not churn_joined:
                continue
            target = churn_joined.pop()
        peer = system.peers.get(target)
        if peer is None or not peer.alive:
            continue
        if event.kind == "leave":
            peer.leave()
            leaves += 1
        else:
            peer.crash()
            crashes += 1
        if settle_between > 0:
            system.settle(settle_between)
    return joins, leaves, crashes
