"""Synthetic workload substrate.

Key universes and popularity samplers (:mod:`~repro.workloads.keys`),
churn schedules (:mod:`~repro.workloads.churn`), and canned end-to-end
scenarios (:mod:`~repro.workloads.scenarios`).
"""

from .churn import ChurnEvent, PoissonChurn, apply_churn, crash_fraction_schedule
from .keys import KeyWorkload, interest_keys, zipf_weights
from .scenarios import ScenarioResult, interest_sharing, standard_sharing

__all__ = [
    "ChurnEvent",
    "PoissonChurn",
    "apply_churn",
    "crash_fraction_schedule",
    "KeyWorkload",
    "interest_keys",
    "zipf_weights",
    "ScenarioResult",
    "interest_sharing",
    "standard_sharing",
]
