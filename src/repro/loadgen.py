"""Open/closed-loop load generator for the live client path.

Drives N concurrent clients against one or more live nodes (or an
in-process :class:`~repro.runtime.localnet.LocalNet`) and reports the
numbers BENCH_clientpath.json records: p50/p99/p999 latency per verb,
sustained throughput, and error rate.  Exposed on the CLI as
``repro bench-clients`` (``--smoke`` is the CI mode).

Two driving disciplines, selected by ``LoadSpec.rate``:

* **closed loop** (``rate=None``) -- each of ``clients`` persistent
  :class:`~repro.runtime.client.ClientConnection`\\ s keeps ``pipeline``
  operations permanently in flight; the next op is issued the moment
  one completes.  Measures saturation throughput: what the node can
  sustain when the client never lets the pipe drain.
* **open loop** (``rate`` ops/s) -- operations are dispatched on a
  fixed schedule regardless of completions, the way independent real
  clients arrive.  Latency under open loop includes queueing delay, so
  it degrades *before* throughput does -- that is the point of running
  both.  A ``max_inflight`` guard sheds dispatches (counted separately
  from errors) instead of growing an unbounded task pile when the
  requested rate exceeds capacity.

The key population is ``lg/0 .. lg/{keyspace-1}``, pre-stored before
the measured window so gets always have something to find; per-worker
``random.Random`` streams (seeded from ``LoadSpec.seed``) keep runs
reproducible modulo scheduling.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .runtime.client import ClientConnection, ClientGet, ClientPut

__all__ = [
    "LoadSpec",
    "VerbStats",
    "LoadResult",
    "run_load",
    "run_load_sync",
    "POLLING_ERA_GET_OPS",
]

# The last polling-era localnet get throughput (BENCH_runtime.json,
# PR 5): the ~20 ms poll tick capped serial gets at ~38.7 ops/s.  CI's
# smoke run asserts the event-driven path clears a 10x multiple of it.
POLLING_ERA_GET_OPS = 38.7


@dataclass
class LoadSpec:
    """Everything one benchmark run needs; see module docstring."""

    endpoints: Sequence[Tuple[str, int]]
    clients: int = 4
    pipeline: int = 16
    duration: float = 5.0
    warmup: float = 0.5
    get_fraction: float = 0.9
    keyspace: int = 256
    rate: Optional[float] = None  # total ops/s; None = closed loop
    max_inflight: int = 1024  # open-loop shed guard
    timeout: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ValueError("need at least one endpoint")
        if self.clients < 1 or self.pipeline < 1 or self.keyspace < 1:
            raise ValueError("clients, pipeline and keyspace must be >= 1")
        if not (0.0 <= self.get_fraction <= 1.0):
            raise ValueError(f"get_fraction must be in [0, 1], got {self.get_fraction}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def mode(self) -> str:
        return "closed" if self.rate is None else "open"


@dataclass
class VerbStats:
    """Latency/outcome aggregates for one verb over the measured window."""

    ops: int = 0
    errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)

    def record(self, latency_ms: float) -> None:
        self.ops += 1
        self.latencies_ms.append(latency_ms)

    def record_error(self, error: str) -> None:
        self.ops += 1
        self.errors += 1
        if len(self.error_samples) < 5:
            self.error_samples.append(error)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"ops": self.ops, "errors": self.errors}
        if self.latencies_ms:
            arr = np.asarray(self.latencies_ms, dtype=float)
            out.update(
                p50_ms=round(float(np.percentile(arr, 50)), 4),
                p99_ms=round(float(np.percentile(arr, 99)), 4),
                p999_ms=round(float(np.percentile(arr, 99.9)), 4),
                mean_ms=round(float(arr.mean()), 4),
                max_ms=round(float(arr.max()), 4),
            )
        if self.error_samples:
            out["error_samples"] = list(self.error_samples)
        return out


@dataclass
class LoadResult:
    """One finished run: spec echo + throughput + per-verb stats."""

    mode: str
    clients: int
    pipeline: int
    requested_rate: Optional[float]
    measured_seconds: float
    put: VerbStats
    get: VerbStats
    shed: int = 0  # open-loop dispatches dropped by the inflight guard

    @property
    def ops_total(self) -> int:
        return self.put.ops + self.get.ops

    @property
    def errors_total(self) -> int:
        return self.put.errors + self.get.errors

    @property
    def throughput_ops(self) -> float:
        if self.measured_seconds <= 0:
            return 0.0
        return self.ops_total / self.measured_seconds

    @property
    def get_throughput_ops(self) -> float:
        if self.measured_seconds <= 0:
            return 0.0
        return self.get.ops / self.measured_seconds

    @property
    def error_rate(self) -> float:
        return (self.errors_total / self.ops_total) if self.ops_total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "clients": self.clients,
            "pipeline": self.pipeline,
            "requested_rate_ops": self.requested_rate,
            "measured_seconds": round(self.measured_seconds, 3),
            "ops_total": self.ops_total,
            "throughput_ops": round(self.throughput_ops, 1),
            "get_throughput_ops": round(self.get_throughput_ops, 1),
            "error_rate": round(self.error_rate, 6),
            "shed": self.shed,
            "put": self.put.summary(),
            "get": self.get.summary(),
        }

    def __str__(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


# ----------------------------------------------------------------------
async def _prepopulate(conns: Sequence[ClientConnection], spec: LoadSpec) -> None:
    """Store every key once (pipelined, striped over connections)."""
    sem = asyncio.Semaphore(max(spec.pipeline, 32))

    async def put_one(i: int) -> None:
        async with sem:
            reply = await conns[i % len(conns)].request(
                ClientPut(key=f"lg/{i}", value=f"seed-{i}"), timeout=spec.timeout
            )
            if not reply.ok:
                raise RuntimeError(f"prepopulate put lg/{i} failed: {reply.error}")

    await asyncio.gather(*(put_one(i) for i in range(spec.keyspace)))


async def _one_op(
    conn: ClientConnection,
    spec: LoadSpec,
    rng: random.Random,
    put: VerbStats,
    get: VerbStats,
    record_after: float,
) -> None:
    """Issue one randomly chosen op; record it if inside the window."""
    loop = asyncio.get_running_loop()
    key = f"lg/{rng.randrange(spec.keyspace)}"
    if rng.random() < spec.get_fraction:
        msg, stats = ClientGet(key=key), get
    else:
        msg, stats = ClientPut(key=key, value=f"v-{key}"), put
    t0 = loop.time()
    try:
        reply = await conn.request(msg, timeout=spec.timeout)
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        if t0 >= record_after:
            stats.record_error(f"{type(exc).__name__}: {exc}")
        return
    if t0 < record_after:
        return
    if reply.ok:
        stats.record((loop.time() - t0) * 1e3)
    else:
        stats.record_error(reply.error or "not ok")


async def _closed_loop(
    conns: Sequence[ClientConnection],
    spec: LoadSpec,
    put: VerbStats,
    get: VerbStats,
    deadline: float,
    record_after: float,
) -> int:
    """``clients * pipeline`` workers, each always one op in flight."""
    loop = asyncio.get_running_loop()

    async def worker(wid: int) -> None:
        conn = conns[wid % len(conns)]
        rng = random.Random((spec.seed << 16) ^ wid)
        while loop.time() < deadline:
            await _one_op(conn, spec, rng, put, get, record_after)

    await asyncio.gather(*(worker(w) for w in range(spec.clients * spec.pipeline)))
    return 0


async def _open_loop(
    conns: Sequence[ClientConnection],
    spec: LoadSpec,
    put: VerbStats,
    get: VerbStats,
    deadline: float,
    record_after: float,
) -> int:
    """Dispatch on a fixed schedule; shed when the guard is full."""
    assert spec.rate is not None
    loop = asyncio.get_running_loop()
    interval = 1.0 / spec.rate
    rng = random.Random(spec.seed << 16)
    inflight: set = set()
    shed = 0
    next_at = loop.time()
    i = 0
    while True:
        now = loop.time()
        if now >= deadline:
            break
        if now < next_at:
            await asyncio.sleep(next_at - now)
            continue
        next_at += interval
        if len(inflight) >= spec.max_inflight:
            shed += 1
            continue
        task = asyncio.ensure_future(
            _one_op(conns[i % len(conns)], spec, rng, put, get, record_after)
        )
        inflight.add(task)
        task.add_done_callback(inflight.discard)
        i += 1
    if inflight:
        await asyncio.gather(*inflight)
    return shed


async def run_load(spec: LoadSpec) -> LoadResult:
    """Run one benchmark: connect, prepopulate, drive, aggregate."""
    conns = [
        ClientConnection(host, port, timeout=spec.timeout)
        for host, port in (
            spec.endpoints[c % len(spec.endpoints)] for c in range(spec.clients)
        )
    ]
    put, get = VerbStats(), VerbStats()
    loop = asyncio.get_running_loop()
    try:
        await asyncio.gather(*(c.connect() for c in conns))
        await _prepopulate(conns, spec)
        t0 = loop.time()
        record_after = t0 + spec.warmup
        deadline = record_after + spec.duration
        drive = _closed_loop if spec.rate is None else _open_loop
        shed = await drive(conns, spec, put, get, deadline, record_after)
        measured = loop.time() - record_after
    finally:
        await asyncio.gather(*(c.aclose() for c in conns), return_exceptions=True)
    return LoadResult(
        mode=spec.mode,
        clients=spec.clients,
        pipeline=spec.pipeline,
        requested_rate=spec.rate,
        measured_seconds=measured,
        put=put,
        get=get,
        shed=shed,
    )


def run_load_sync(spec: LoadSpec) -> LoadResult:
    """Blocking wrapper for CLI use (runs its own event loop)."""
    return asyncio.run(run_load(spec))


# ----------------------------------------------------------------------
async def run_against_localnet(
    spec_kwargs: Dict[str, object],
    t_peers: int = 2,
    s_peers: int = 1,
    seed: int = 5,
) -> LoadResult:
    """Boot an in-process localnet, run one load, tear it down.

    ``spec_kwargs`` is everything for :class:`LoadSpec` except
    ``endpoints``, which are filled in from the booted nodes.  This is
    what ``repro bench-clients --smoke`` (and CI) runs: no external
    daemons, one process, real TCP.
    """
    from .runtime.localnet import LocalNet, fast_config

    net = LocalNet(t_peers=t_peers, s_peers=s_peers, seed=seed, config=fast_config())
    await net.start(join_timeout=30.0)
    await net.wait_converged(timeout=30.0)
    try:
        endpoints = [(n.host, n.port) for n in net.nodes]
        return await run_load(LoadSpec(endpoints=endpoints, **spec_kwargs))
    finally:
        await net.stop()


def smoke_result_ok(result: LoadResult, min_get_ops: float) -> List[str]:
    """CI gate: the failures list is empty when the smoke run passes."""
    problems: List[str] = []
    if result.errors_total:
        problems.append(
            f"{result.errors_total} errored op(s): "
            f"{result.put.error_samples + result.get.error_samples}"
        )
    if result.get_throughput_ops < min_get_ops:
        problems.append(
            f"get throughput {result.get_throughput_ops:.1f} ops/s below "
            f"the {min_get_ops:.1f} ops/s floor "
            f"(10x the {POLLING_ERA_GET_OPS} ops/s polling-era baseline)"
        )
    if result.get.ops == 0:
        problems.append("no gets completed inside the measured window")
    return problems
