"""repro -- reproduction of "An Efficient Hybrid Peer-to-Peer System for
Distributed Data Sharing" (Min Yang & Yuanyuan Yang, IPPS 2008; journal
version IEEE Trans. Computers 2010).

The package implements the paper's hybrid overlay -- a Chord-like
structured *t-network* ring anchoring many Gnutella-like unstructured
*s-network* trees -- together with every substrate its NS2/GT-ITM
evaluation relied on, rebuilt in pure Python:

* :mod:`repro.sim` -- discrete-event engine, timers, RNG streams;
* :mod:`repro.net` -- transit-stub topologies, routing, link capacities;
* :mod:`repro.overlay` -- ID space, messages, transport;
* :mod:`repro.core` -- the hybrid system itself;
* :mod:`repro.enhance` -- Section 5 enhancements;
* :mod:`repro.baselines` -- pure Chord-like and pure Gnutella-like
  comparators;
* :mod:`repro.analysis` -- Section 4 closed-form models (Fig. 3);
* :mod:`repro.workloads` -- key/churn/scenario generators;
* :mod:`repro.metrics` -- distribution and report helpers;
* :mod:`repro.experiments` -- one driver per paper table/figure;
* :mod:`repro.runtime` -- the same protocol over real asyncio TCP
  (live nodes, bootstrap daemon, wire codec, localnet harness);
* :mod:`repro.obs` -- unified observability: metrics registry, trace
  bridge, Prometheus ``/metrics`` endpoint, ``repro top``.

Quickstart::

    from repro import HybridConfig, HybridSystem

    system = HybridSystem(HybridConfig(p_s=0.7, delta=3, ttl=4), n_peers=200, seed=1)
    system.build()
    origin = system.s_peers()[0].address
    system.populate([(origin, "song.mp3", b"...")])
    system.run_lookups([(system.s_peers()[-1].address, "song.mp3")])
    print(system.query_stats())
"""

from .core import HybridConfig, HybridPeer, HybridSystem, QueryStats

try:  # installed: single source of truth is the package metadata
    from importlib.metadata import PackageNotFoundError, version

    __version__ = version("repro")
except PackageNotFoundError:  # running from a source checkout
    __version__ = "1.1.0"

__all__ = ["HybridConfig", "HybridPeer", "HybridSystem", "QueryStats", "__version__"]
