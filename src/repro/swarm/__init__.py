"""repro.swarm -- tracker-mode s-networks + chunked bulk data plane.

Paper Section 5.5 sketches BitTorrent-style s-networks: the t-peer acts
as a tracker so bulk content moves peer-to-peer with no flooding.  This
package implements the full data plane on top of that sketch:

- :mod:`manifest` -- content split into fixed-size SHA-256-hashed
  pieces, described by a JSON-able manifest that rides the existing put
  path (the manifest *is* the stored value; pieces move out of band).
- :mod:`pieces` -- byte-bitmap helpers and deterministic rarest-first
  piece selection.
- :mod:`tracker` -- the segment-owning t-peer's availability registry
  (who holds which pieces of which content).
- :mod:`protocol` -- :class:`SwarmMixin`, the peer-side protocol: the
  same code drives the simulator and the live asyncio runtime.

Disabled by default (``swarm_enabled=False``): the mixin allocates pure
state and sends no messages, so the determinism golden is bit-identical
to the pre-swarm system.
"""

from .manifest import (
    assemble,
    build_manifest,
    content_hash,
    is_manifest,
    piece_hash,
    split_pieces,
    verify_piece,
)
from .pieces import (
    bitmap_all,
    bitmap_count,
    bitmap_get,
    bitmap_new,
    bitmap_set,
    rarest_first,
)
from .protocol import SwarmMixin
from .tracker import SwarmTracker

__all__ = [
    "assemble",
    "build_manifest",
    "content_hash",
    "is_manifest",
    "piece_hash",
    "split_pieces",
    "verify_piece",
    "bitmap_all",
    "bitmap_count",
    "bitmap_get",
    "bitmap_new",
    "bitmap_set",
    "rarest_first",
    "SwarmMixin",
    "SwarmTracker",
]
