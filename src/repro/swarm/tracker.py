"""The t-peer side of tracker mode: who holds which pieces.

Paper Section 5.5: "the t-peer works as the 'tracker'".  The segment
owner of a content id keeps, per content, every announced holder's
piece bitmap.  Downloaders announce (full query) and then stream
:class:`~repro.overlay.messages.HaveAnnounce` updates as pieces arrive,
so the tracker's availability view stays fresh without re-announcing
whole bitmaps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .pieces import bitmap_count, bitmap_new, bitmap_set

__all__ = ["SwarmTracker"]


class _ContentEntry:
    __slots__ = ("n_pieces", "holders")

    def __init__(self, n_pieces: int) -> None:
        self.n_pieces = n_pieces
        self.holders: Dict[int, bytearray] = {}


class SwarmTracker:
    """Availability registry for every content this t-peer tracks."""

    __slots__ = ("_contents",)

    def __init__(self) -> None:
        self._contents: Dict[str, _ContentEntry] = {}

    # ------------------------------------------------------------------
    def announce(self, content: str, holder: int, n_pieces: int, have: bytes) -> None:
        """Register (or refresh) a holder's full bitmap."""
        entry = self._contents.get(content)
        if entry is None:
            entry = self._contents[content] = _ContentEntry(n_pieces)
        elif n_pieces > entry.n_pieces:
            entry.n_pieces = n_pieces
        entry.holders[holder] = bytearray(have)

    def have(self, content: str, holder: int, piece: int, n_pieces: int) -> None:
        """Apply an incremental piece acquisition."""
        entry = self._contents.get(content)
        if entry is None:
            entry = self._contents[content] = _ContentEntry(n_pieces)
        bm = entry.holders.get(holder)
        if bm is None:
            bm = entry.holders[holder] = bitmap_new(entry.n_pieces)
        bitmap_set(bm, piece)

    def forget_peer(self, holder: int) -> None:
        """Drop every registration of a departed/crashed holder."""
        for entry in self._contents.values():
            entry.holders.pop(holder, None)

    # ------------------------------------------------------------------
    def holders_for(
        self, content: str, exclude: int = -1, limit: int = 32
    ) -> Tuple[Tuple[int, bytes], ...]:
        """Holder set for one content, best-stocked first, capped.

        ``exclude`` keeps the requester out of its own answer.  Ties
        break by address for determinism.
        """
        entry = self._contents.get(content)
        if entry is None:
            return ()
        ranked = sorted(
            ((addr, bm) for addr, bm in entry.holders.items() if addr != exclude),
            key=lambda pair: (-bitmap_count(pair[1]), pair[0]),
        )
        return tuple((addr, bytes(bm)) for addr, bm in ranked[:limit])

    def n_pieces(self, content: str) -> int:
        entry = self._contents.get(content)
        return entry.n_pieces if entry is not None else 0

    def holder_count(self, content: Optional[str] = None) -> int:
        """Holders of one content, or distinct holders across all."""
        if content is not None:
            entry = self._contents.get(content)
            return len(entry.holders) if entry is not None else 0
        seen: set = set()
        for entry in self._contents.values():
            seen.update(entry.holders)
        return len(seen)

    def contents(self) -> List[str]:
        return list(self._contents)

    def __len__(self) -> int:
        return len(self._contents)
