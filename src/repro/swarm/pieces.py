"""Byte bitmaps and rarest-first piece selection.

Bitmaps are ``bytes``/``bytearray`` little-endian by bit: piece ``i``
lives in bit ``i % 8`` of byte ``i // 8``.  They travel on the wire as
``bytes`` fields (the v2 codec's int runs are signed 64-bit, so an
arbitrary-width int bitmap would silently fall back to v1 JSON framing
for content over 64 pieces).

Selection is a pure, deterministic function of its inputs -- the sim's
determinism golden depends on no hidden RNG in the swarm path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "bitmap_new",
    "bitmap_all",
    "bitmap_get",
    "bitmap_set",
    "bitmap_count",
    "rarest_first",
]

_POPCOUNT = [bin(i).count("1") for i in range(256)]


def bitmap_new(n_pieces: int) -> bytearray:
    """All-zero bitmap sized for ``n_pieces``."""
    return bytearray((max(0, n_pieces) + 7) // 8)


def bitmap_all(n_pieces: int) -> bytearray:
    """Full bitmap: every piece bit set, trailing pad bits clear."""
    bm = bitmap_new(n_pieces)
    for i in range(n_pieces):
        bm[i >> 3] |= 1 << (i & 7)
    return bm


def bitmap_get(bm: Sequence[int], index: int) -> bool:
    """True when bit ``index`` is set (out-of-range reads are False)."""
    byte = index >> 3
    if byte >= len(bm):
        return False
    return bool(bm[byte] & (1 << (index & 7)))


def bitmap_set(bm: bytearray, index: int) -> None:
    """Set bit ``index``, growing the bitmap if needed."""
    byte = index >> 3
    if byte >= len(bm):
        bm.extend(b"\x00" * (byte + 1 - len(bm)))
    bm[byte] |= 1 << (index & 7)


def bitmap_count(bm: Sequence[int]) -> int:
    """Number of set bits."""
    return sum(_POPCOUNT[b] for b in bm)


def rarest_first(
    n_pieces: int,
    have: Set[int],
    requested: Set[int],
    holder_maps: Dict[int, bytes],
    inflight: Dict[int, int],
    max_inflight: int,
    budget: int,
    salt: int = 0,
) -> List[Tuple[int, int]]:
    """Pick up to ``budget`` (piece, holder) pairs, rarest piece first.

    ``holder_maps`` is holder address -> bitmap; ``inflight`` tracks
    requests already outstanding per holder and is NOT mutated (the
    caller applies the plan).  Per-holder load stays under
    ``max_inflight`` including the pairs picked here.

    Deterministic: pieces order by (availability, rotated index) and the
    holder for each piece rotates by ``salt + index`` among eligible
    holders, so concurrent downloaders with different salts (their
    addresses) spread first requests across both pieces and holders
    instead of stampeding the same seed.
    """
    if budget <= 0 or not holder_maps:
        return []
    # Availability per wanted piece, and who can serve it.
    holders = sorted(holder_maps)
    avail: Dict[int, List[int]] = {}
    for index in range(n_pieces):
        if index in have or index in requested:
            continue
        sources = [h for h in holders if bitmap_get(holder_maps[h], index)]
        if sources:
            avail[index] = sources
    if not avail:
        return []
    order = sorted(
        avail,
        key=lambda i: (len(avail[i]), (i + salt) % n_pieces if n_pieces else 0, i),
    )
    load = dict(inflight)
    plan: List[Tuple[int, int]] = []
    for index in order:
        if len(plan) >= budget:
            break
        sources = avail[index]
        pick: Optional[int] = None
        # Rotate the starting holder so piece i doesn't always hit the
        # first address; skip holders already at their inflight cap.
        start = (salt + index) % len(sources)
        for off in range(len(sources)):
            h = sources[(start + off) % len(sources)]
            if load.get(h, 0) < max_inflight:
                pick = h
                break
        if pick is None:
            continue
        load[pick] = load.get(pick, 0) + 1
        plan.append((index, pick))
    return plan
