"""Content manifests: fixed-size SHA-256-hashed pieces.

A manifest is a plain JSON-able dict describing chunked content::

    {"swarm": 1,
     "content": "<sha256 of the whole byte string, hex>",
     "length": <total bytes>,
     "piece_size": <bytes per piece (last piece may be shorter)>,
     "pieces": ["<sha256 of piece 0>", ...]}

The manifest travels through the ordinary put path as the stored value
for its key -- lookups, replication and caching all treat it like any
other item -- while the pieces themselves move peer-to-peer over the
swarm wire messages.  Every received piece is verified against its hash
before it is accepted; the assembled content is verified against the
whole-content hash before it is returned to a client.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

__all__ = [
    "MANIFEST_MARKER",
    "split_pieces",
    "piece_hash",
    "content_hash",
    "build_manifest",
    "is_manifest",
    "verify_piece",
    "assemble",
]

# Discriminator key: values carrying {"swarm": 1, ...} are manifests.
MANIFEST_MARKER = "swarm"


def piece_hash(data: bytes) -> str:
    """SHA-256 of one piece, hex."""
    return hashlib.sha256(data).hexdigest()


def content_hash(data: bytes) -> str:
    """SHA-256 of the whole content, hex."""
    return hashlib.sha256(data).hexdigest()


def split_pieces(data: bytes, piece_size: int) -> List[bytes]:
    """Split ``data`` into fixed-size pieces (last one may be shorter).

    Empty content still yields one (empty) piece so that a zero-byte
    file round-trips through the same manifest/fetch machinery.
    """
    if piece_size < 1:
        raise ValueError(f"piece_size must be >= 1, got {piece_size}")
    if not data:
        return [b""]
    return [data[i:i + piece_size] for i in range(0, len(data), piece_size)]


def build_manifest(data: bytes, piece_size: int) -> Dict[str, Any]:
    """Build the manifest dict for ``data`` chunked at ``piece_size``."""
    pieces = split_pieces(data, piece_size)
    return {
        MANIFEST_MARKER: 1,
        "content": content_hash(data),
        "length": len(data),
        "piece_size": piece_size,
        "pieces": [piece_hash(p) for p in pieces],
    }


def is_manifest(value: Any) -> bool:
    """True when a stored value is a swarm manifest."""
    return (
        isinstance(value, dict)
        and value.get(MANIFEST_MARKER) == 1
        and isinstance(value.get("content"), str)
        and isinstance(value.get("pieces"), list)
    )


def verify_piece(manifest: Dict[str, Any], index: int, data: bytes) -> bool:
    """Check one received piece against the manifest.

    Verifies both the hash and the expected length (the hash alone would
    admit a correct piece delivered under the wrong index only if SHA-256
    collided, but the length check catches truncation cheaply first).
    """
    pieces = manifest["pieces"]
    if not (0 <= index < len(pieces)):
        return False
    expected_len = _piece_length(manifest, index)
    if len(data) != expected_len:
        return False
    return piece_hash(data) == pieces[index]


def _piece_length(manifest: Dict[str, Any], index: int) -> int:
    length = int(manifest["length"])
    piece_size = int(manifest["piece_size"])
    if length == 0:
        return 0
    last = len(manifest["pieces"]) - 1
    if index < last:
        return piece_size
    return length - piece_size * last


def assemble(manifest: Dict[str, Any], pieces: Dict[int, bytes]) -> bytes:
    """Reassemble content from a complete piece map; verify the whole.

    Raises ``ValueError`` on missing pieces or a content-hash mismatch
    -- callers treat that as an integrity failure, never return the
    bytes.
    """
    n = len(manifest["pieces"])
    missing = [i for i in range(n) if i not in pieces]
    if missing:
        raise ValueError(f"missing pieces: {missing[:8]}{'...' if len(missing) > 8 else ''}")
    data = b"".join(pieces[i] for i in range(n))
    if len(data) != int(manifest["length"]):
        raise ValueError(
            f"assembled length {len(data)} != manifest length {manifest['length']}"
        )
    if content_hash(data) != manifest["content"]:
        raise ValueError("content hash mismatch after assembly")
    return data
