"""SwarmMixin: the peer-side swarm protocol (sim and live).

Mixed into :class:`~repro.core.hybridpeer.HybridPeer` alongside the
replication mixin, this implements both halves of tracker mode:

- **tracker** (segment-owning t-peer): answers
  :class:`~repro.overlay.messages.AnnounceRequest` with the known holder
  set and keeps per-holder piece bitmaps fresh from
  :class:`~repro.overlay.messages.HaveAnnounce` updates.
- **downloader/seeder** (any peer): announces, selects pieces
  rarest-first across the advertised holders with a per-holder inflight
  cap, verifies every received piece against the manifest hash, streams
  ``HaveAnnounce`` as pieces land (so later joiners are steered to it),
  and serves :class:`~repro.overlay.messages.PieceRequest` for anything
  it holds.

Everything is deterministic: piece/holder selection is a pure function
(:func:`~repro.swarm.pieces.rarest_first` salted by the peer address),
and the periodic re-announce tick rides the shared engine timers.  With
``swarm_enabled=False`` (the default) ``_init_swarm_state`` allocates
empty containers and nothing else ever runs -- no messages, no timers,
no RNG draws -- so the determinism golden is bit-identical.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..overlay.messages import (
    AnnounceRequest,
    AnnounceResponse,
    HaveAnnounce,
    PieceRequest,
    PieceResponse,
)
from ..sim.timers import PeriodicTimer
from . import manifest as mf
from .pieces import bitmap_all, bitmap_get, bitmap_new, bitmap_set, rarest_first
from .tracker import SwarmTracker

__all__ = ["SwarmMixin"]

# Upper bound on PieceRequests issued in one pump, whatever the holder
# set allows -- keeps a single event-loop turn bounded.
_PUMP_BUDGET = 32


class _SwarmDownload:
    """Book-keeping for one in-progress content fetch."""

    __slots__ = (
        "content",
        "d_id",
        "manifest",
        "n_pieces",
        "have",
        "requested",  # piece -> (holder, sent_at)
        "holder_maps",  # holder -> bytearray bitmap
        "inflight",  # holder -> outstanding request count
        "callbacks",
        "timer",
        "started_at",
        "integrity_failures",
        "done",
    )

    def __init__(self, content: str, d_id: int, manifest: Dict[str, Any],
                 started_at: float) -> None:
        self.content = content
        self.d_id = d_id
        self.manifest = manifest
        self.n_pieces = len(manifest["pieces"])
        self.have: Set[int] = set()
        self.requested: Dict[int, Tuple[int, float]] = {}
        self.holder_maps: Dict[int, bytearray] = {}
        self.inflight: Dict[int, int] = {}
        self.callbacks: List[Callable[[Optional[bytes], Dict[str, Any]], None]] = []
        self.timer: Optional[PeriodicTimer] = None
        self.started_at = started_at
        self.integrity_failures = 0
        self.done = False


class SwarmMixin:
    """Tracker-mode chunked bulk transfer (paper Section 5.5)."""

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _init_swarm_state(self) -> None:
        # content hash -> piece index -> bytes (pieces this peer serves)
        self.swarm_pieces: Dict[str, Dict[int, bytes]] = {}
        # content hash -> manifest (known locally; needed to verify/serve)
        self.swarm_meta: Dict[str, Dict[str, Any]] = {}
        # tracker side (only populated on the segment-owning t-peer)
        self.swarm_tracker = SwarmTracker()
        self._swarm_downloads: Dict[str, _SwarmDownload] = {}
        self.swarm_integrity_failures = 0

    @property
    def _swarm_on(self) -> bool:
        return self.config.swarm_enabled

    def swarm_shutdown(self) -> None:
        """Cancel download timers and drop swarm state (depart/crash)."""
        for dl in self._swarm_downloads.values():
            if dl.timer is not None:
                dl.timer.stop()
        self._swarm_downloads.clear()

    # ------------------------------------------------------------------
    # Publishing / seeding
    # ------------------------------------------------------------------
    def swarm_publish(self, key: str, data: bytes,
                      piece_size: Optional[int] = None) -> Dict[str, Any]:
        """Chunk ``data``, store its manifest under ``key``, seed pieces.

        The manifest rides the ordinary put path (placement, replication
        and caching all apply); the pieces stay local and are announced
        to the tracker so downloaders find this peer as the first seed.
        """
        size = piece_size or self.config.swarm_piece_size
        manifest = mf.build_manifest(data, size)
        pieces = mf.split_pieces(data, size)
        self.store(key, manifest)
        self.swarm_seed(manifest, dict(enumerate(pieces)))
        return manifest

    def swarm_seed(self, manifest: Dict[str, Any],
                   pieces: Dict[int, bytes]) -> None:
        """Register locally held pieces and announce them to the tracker."""
        content = manifest["content"]
        self.swarm_meta[content] = manifest
        self.swarm_pieces.setdefault(content, {}).update(pieces)
        have = bitmap_new(len(manifest["pieces"]))
        for index in self.swarm_pieces[content]:
            bitmap_set(have, index)
        self._swarm_announce(content, len(manifest["pieces"]), bytes(have))

    def _swarm_announce(self, content: str, n_pieces: int, have: bytes) -> None:
        msg = AnnounceRequest(
            content=content,
            d_id=self.idspace.hash_key(content),
            origin=self.address,
            n_pieces=n_pieces,
            have=have,
        )
        self._swarm_to_tracker(msg)

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def swarm_fetch(
        self,
        manifest: Dict[str, Any],
        on_done: Callable[[Optional[bytes], Dict[str, Any]], None],
    ) -> None:
        """Fetch the content a manifest describes; swarm from holders.

        ``on_done(data, info)`` fires once with the verified bytes (or
        ``None`` after an unrecoverable assembly failure); ``info``
        carries piece/latency/integrity counters.  Multiple concurrent
        fetches of the same content share one download.
        """
        if not mf.is_manifest(manifest):
            raise ValueError("swarm_fetch needs a manifest value")
        content = manifest["content"]
        local = self.swarm_pieces.get(content, {})
        if len(local) == len(manifest["pieces"]):
            # Already a seed: assemble straight from the local store.
            data = mf.assemble(manifest, local)
            on_done(data, self._swarm_info(content, 0.0, 0))
            return
        dl = self._swarm_downloads.get(content)
        if dl is None:
            dl = _SwarmDownload(
                content, self.idspace.hash_key(content), manifest, self.engine.now
            )
            dl.have = set(local)
            self._swarm_downloads[content] = dl
            self.swarm_meta[content] = manifest
            dl.timer = PeriodicTimer(
                self.engine,
                self.config.swarm_request_timeout,
                partial(self._swarm_tick, content),
            )
            dl.timer.start()
            self._swarm_announce_download(dl)
        dl.callbacks.append(on_done)

    def _swarm_announce_download(self, dl: _SwarmDownload) -> None:
        have = bitmap_new(dl.n_pieces)
        for index in dl.have:
            bitmap_set(have, index)
        self._swarm_announce(dl.content, dl.n_pieces, bytes(have))

    def _swarm_tick(self, content: str) -> None:
        """Periodic downloader tick: expire stale requests, re-announce."""
        dl = self._swarm_downloads.get(content)
        if dl is None or dl.done:
            return
        now = self.engine.now
        timeout = self.config.swarm_request_timeout
        for index, (holder, sent_at) in list(dl.requested.items()):
            if now - sent_at >= timeout:
                del dl.requested[index]
                dl.inflight[holder] = max(0, dl.inflight.get(holder, 0) - 1)
                # A holder that times out may be gone; drop its bitmap so
                # the next pump avoids it until it re-appears in an
                # AnnounceResponse.
                dl.holder_maps.pop(holder, None)
        # Refresh the holder set: peers that finished since the last
        # announce become sources (this is where the swarm effect kicks
        # in for late joiners).
        self._swarm_announce_download(dl)
        self._swarm_pump(dl)

    def _swarm_pump(self, dl: _SwarmDownload) -> None:
        """Issue PieceRequests, rarest-first, respecting inflight caps."""
        if dl.done:
            return
        plan = rarest_first(
            dl.n_pieces,
            dl.have,
            set(dl.requested),
            dl.holder_maps,
            dl.inflight,
            self.config.swarm_inflight,
            _PUMP_BUDGET,
            salt=self.address,
        )
        now = self.engine.now
        for index, holder in plan:
            dl.requested[index] = (holder, now)
            dl.inflight[holder] = dl.inflight.get(holder, 0) + 1
            self.send(holder, PieceRequest(
                content=dl.content, index=index, origin=self.address
            ))

    def _swarm_finish(self, dl: _SwarmDownload) -> None:
        dl.done = True
        if dl.timer is not None:
            dl.timer.stop()
        self._swarm_downloads.pop(dl.content, None)
        pieces = self.swarm_pieces.get(dl.content, {})
        try:
            data: Optional[bytes] = mf.assemble(dl.manifest, pieces)
        except ValueError:
            dl.integrity_failures += 1
            self.swarm_integrity_failures += 1
            data = None
        duration = self.engine.now - dl.started_at
        info = self._swarm_info(dl.content, duration, dl.integrity_failures)
        self.emit(
            "swarm.complete",
            content=dl.content,
            pieces=dl.n_pieces,
            duration=duration,
            integrity_failures=dl.integrity_failures,
            ok=data is not None,
        )
        for cb in dl.callbacks:
            cb(data, info)

    def _swarm_info(self, content: str, duration: float,
                    integrity_failures: int) -> Dict[str, Any]:
        return {
            "content": content,
            "pieces": len(self.swarm_pieces.get(content, {})),
            "duration_ms": duration,
            "integrity_failures": integrity_failures,
        }

    # ------------------------------------------------------------------
    # Tracker routing
    # ------------------------------------------------------------------
    def _swarm_to_tracker(self, msg) -> None:
        """Deliver a tracker-bound message (AnnounceRequest/HaveAnnounce).

        Same routing rule as the data plane: s-peers hand it to their
        t-peer; t-peers forward along the ring until the segment owner
        of ``d_id`` handles it.  The owner handles its own messages
        locally instead of dialling itself.
        """
        if self.role == "t" and self.owns(msg.d_id):
            msg.sender = self.address
            self.receive(msg)
            return
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        self.send(self.ring_next_hop(msg.d_id), msg)

    def on_AnnounceRequest(self, msg: AnnounceRequest) -> None:
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        if not self.owns(msg.d_id):
            self.send(self.ring_next_hop(msg.d_id), msg)
            return
        self.swarm_tracker.announce(msg.content, msg.origin, msg.n_pieces, msg.have)
        if self.wants_trace("swarm.holders"):
            self.emit(
                "swarm.holders",
                content=msg.content,
                holders=self.swarm_tracker.holder_count(msg.content),
            )
        holders = self.swarm_tracker.holders_for(msg.content, exclude=msg.origin)
        response = AnnounceResponse(
            content=msg.content,
            n_pieces=self.swarm_tracker.n_pieces(msg.content),
            holders=holders,
        )
        if msg.origin == self.address:
            # Local announce from the tracker itself (it is seeding or
            # fetching content it also tracks): short-circuit the reply.
            response.sender = self.address
            self.receive(response)
        else:
            self.send(msg.origin, response)

    def on_AnnounceResponse(self, msg: AnnounceResponse) -> None:
        dl = self._swarm_downloads.get(msg.content)
        if dl is None or dl.done:
            return
        for holder, bitmap in msg.holders:
            if holder == self.address:
                continue
            dl.holder_maps[holder] = bytearray(bitmap)
        self._swarm_pump(dl)

    def on_HaveAnnounce(self, msg: HaveAnnounce) -> None:
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        if not self.owns(msg.d_id):
            self.send(self.ring_next_hop(msg.d_id), msg)
            return
        self.swarm_tracker.have(msg.content, msg.holder, msg.piece, msg.n_pieces)
        if self.wants_trace("swarm.holders"):
            self.emit(
                "swarm.holders",
                content=msg.content,
                holders=self.swarm_tracker.holder_count(msg.content),
            )

    # ------------------------------------------------------------------
    # Piece exchange
    # ------------------------------------------------------------------
    def on_PieceRequest(self, msg: PieceRequest) -> None:
        pieces = self.swarm_pieces.get(msg.content, {})
        data = pieces.get(msg.index, b"")
        meta = self.swarm_meta.get(msg.content)
        total = len(meta["pieces"]) if meta is not None else 0
        if data and self.wants_trace("swarm.piece"):
            self.emit("swarm.piece", dir="tx", content=msg.content, index=msg.index)
        self.send(msg.origin, PieceResponse(
            content=msg.content, index=msg.index, data=data, total=total
        ))

    def on_PieceResponse(self, msg: PieceResponse) -> None:
        dl = self._swarm_downloads.get(msg.content)
        if dl is None or dl.done:
            return
        entry = dl.requested.pop(msg.index, None)
        if entry is not None:
            holder, sent_at = entry
            dl.inflight[holder] = max(0, dl.inflight.get(holder, 0) - 1)
        else:
            holder, sent_at = msg.sender, None
        if not msg.data:
            # Holder no longer has the piece: clear its bit locally so
            # the selector stops asking it for this index.
            bm = dl.holder_maps.get(holder)
            if bm is not None and bitmap_get(bm, msg.index):
                bm[msg.index >> 3] &= ~(1 << (msg.index & 7)) & 0xFF
            self._swarm_pump(dl)
            return
        if msg.index in dl.have:
            self._swarm_pump(dl)
            return
        if not mf.verify_piece(dl.manifest, msg.index, msg.data):
            dl.integrity_failures += 1
            self.swarm_integrity_failures += 1
            self.emit(
                "swarm.integrity_failure",
                content=msg.content, index=msg.index, holder=holder,
            )
            self._swarm_pump(dl)
            return
        dl.have.add(msg.index)
        self.swarm_pieces.setdefault(msg.content, {})[msg.index] = msg.data
        if self.wants_trace("swarm.piece"):
            latency = self.engine.now - sent_at if sent_at is not None else None
            self.emit(
                "swarm.piece",
                dir="rx", content=msg.content, index=msg.index, latency=latency,
            )
        # Tell the tracker immediately: this peer is now a source for
        # the piece, which is what spreads a flash crowd's load.
        self._swarm_to_tracker(HaveAnnounce(
            content=msg.content,
            d_id=dl.d_id,
            holder=self.address,
            piece=msg.index,
            n_pieces=dl.n_pieces,
        ))
        if len(dl.have) == dl.n_pieces:
            self._swarm_finish(dl)
        else:
            self._swarm_pump(dl)

    # ------------------------------------------------------------------
    # Seeding a full bitmap helper (used by tests / the node daemon)
    # ------------------------------------------------------------------
    def swarm_full_bitmap(self, content: str) -> bytes:
        meta = self.swarm_meta.get(content)
        if meta is None:
            return b""
        return bytes(bitmap_all(len(meta["pieces"])))
