"""Access-link capacity model (link heterogeneity).

Section 5.1 of the paper: peers have heterogeneous access links
(dial-up / ADSL / cable), with up to 1000x spread between the fastest
and slowest.  The simulation section then pins the experimental setup
down: *"1/3 of the peers have the highest link capacities, 1/3 of them
have the lowest link capacities, and 1/3 of them have the medium link
capacities.  The highest link capacity is 10 times of the lowest link
capacity."*

This module assigns capacity classes to hosts and converts a message
transfer into a delay: the transfer time of a message over an overlay
hop is bounded by the slower of the two endpoint access links.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Sequence

import numpy as np

__all__ = ["CapacityClass", "CapacityModel", "HeterogeneityConfig"]


class CapacityClass(IntEnum):
    """The three capacity tiers of the paper's simulation setup."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


@dataclass(frozen=True)
class HeterogeneityConfig:
    """Capacity assignment parameters.

    ``ratio_high_to_low`` is 10 in the paper; the medium tier sits at the
    geometric midpoint so each step is the same factor.
    ``unit_capacity`` sets the absolute scale in message-size units per
    millisecond.  The default makes a CONTROL_SIZE message cost ~20 ms
    on the slowest access link and ~2 ms on the fastest -- comparable
    to propagation delays, so link heterogeneity visibly shapes lookup
    latency (the Fig. 6a effect).  Only ratios matter for the paper's
    qualitative conclusions.
    """

    ratio_high_to_low: float = 10.0
    unit_capacity: float = 0.05
    fractions: Sequence[float] = (1 / 3, 1 / 3, 1 / 3)

    def validate(self) -> None:
        if self.ratio_high_to_low < 1:
            raise ValueError("ratio_high_to_low must be >= 1")
        if self.unit_capacity <= 0:
            raise ValueError("unit_capacity must be positive")
        if len(self.fractions) != 3:
            raise ValueError("fractions must have exactly three entries")
        if any(f < 0 for f in self.fractions):
            raise ValueError("fractions must be non-negative")
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1")

    def capacity_of(self, cls: CapacityClass) -> float:
        """Capacity value of a class (LOW = unit, HIGH = ratio * unit)."""
        step = self.ratio_high_to_low ** 0.5
        return self.unit_capacity * (step ** int(cls))


class CapacityModel:
    """Per-host access-link capacities.

    Parameters
    ----------
    n_hosts:
        Number of hosts to label.
    rng:
        Randomness for the (shuffled) class assignment.
    config:
        Tier ratios and fractions.
    """

    def __init__(
        self,
        n_hosts: int,
        rng: np.random.Generator,
        config: HeterogeneityConfig | None = None,
    ) -> None:
        self.config = config or HeterogeneityConfig()
        self.config.validate()
        if n_hosts < 0:
            raise ValueError("n_hosts must be non-negative")
        counts = [int(round(f * n_hosts)) for f in self.config.fractions]
        # Fix rounding drift on the last class.
        counts[-1] = n_hosts - counts[0] - counts[1]
        labels: List[CapacityClass] = (
            [CapacityClass.LOW] * counts[0]
            + [CapacityClass.MEDIUM] * counts[1]
            + [CapacityClass.HIGH] * counts[2]
        )
        rng.shuffle(labels)  # type: ignore[arg-type]
        self._classes = labels
        self._capacity = [self.config.capacity_of(c) for c in labels]
        self._rng = rng

    def __len__(self) -> int:
        return len(self._classes)

    def ensure(self, n_hosts: int) -> None:
        """Grow the model to cover at least ``n_hosts`` hosts.

        New hosts draw a class from the configured fractions; used when
        peers join dynamically after the initial population was sized.
        """
        while len(self._classes) < n_hosts:
            u = float(self._rng.random())
            f = self.config.fractions
            if u < f[0]:
                cls = CapacityClass.LOW
            elif u < f[0] + f[1]:
                cls = CapacityClass.MEDIUM
            else:
                cls = CapacityClass.HIGH
            self._classes.append(cls)
            self._capacity.append(self.config.capacity_of(cls))

    def capacity_class(self, host: int) -> CapacityClass:
        """Tier of ``host``."""
        return self._classes[host]

    def capacity(self, host: int) -> float:
        """Access-link capacity of ``host`` (grows on demand)."""
        if host >= len(self._capacity):
            self.ensure(host + 1)
        return float(self._capacity[host])

    def transfer_delay(self, src: int, dst: int, size: float) -> float:
        """Time to push ``size`` units over the hop ``src -> dst``.

        The bottleneck is the slower endpoint access link -- the effect
        Section 5.1 describes ("its download speed is upper bounded by
        the download speed of the low link capacity peer").
        """
        if size < 0:
            raise ValueError("message size must be non-negative")
        bottleneck = min(self.capacity(src), self.capacity(dst))
        return float(size / bottleneck)

    def classes(self) -> List[CapacityClass]:
        """Copy of the per-host class labels."""
        return list(self._classes)
