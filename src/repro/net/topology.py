"""Random transit-stub physical topologies.

The paper evaluates on "random transit-stub network topologies generated
by GT-ITM software" with 1,000 nodes.  GT-ITM is a C program we cannot
ship, so this module implements the same structural model (Zegura,
Calvert & Bhattacharjee, "How to model an internetwork", INFOCOM '96):

* a small number of *transit domains* (backbone ASes), internally
  connected, with random edges between domains;
* each transit node anchors several *stub domains* (edge networks),
  each internally connected;
* link latencies drawn from ranges that make intra-stub links much
  cheaper than transit links, which is exactly the property the paper's
  topology-awareness experiment (Fig. 6b) exploits.

The generator is deterministic given an RNG and always yields a single
connected component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "NodeKind",
    "LatencyRanges",
    "TransitStubConfig",
    "PhysicalTopology",
    "generate_transit_stub",
    "config_for_size",
]


class NodeKind(Enum):
    """Role of a node in the transit-stub hierarchy."""

    TRANSIT = "transit"
    STUB = "stub"


@dataclass(frozen=True)
class LatencyRanges:
    """Per-link-class latency ranges, in milliseconds.

    Defaults follow the usual GT-ITM conventions: backbone links are an
    order of magnitude slower than LAN-ish stub links.
    """

    inter_transit: Tuple[float, float] = (30.0, 80.0)
    intra_transit: Tuple[float, float] = (10.0, 30.0)
    transit_stub: Tuple[float, float] = (5.0, 20.0)
    intra_stub: Tuple[float, float] = (1.0, 5.0)

    def validate(self) -> None:
        for name in ("inter_transit", "intra_transit", "transit_stub", "intra_stub"):
            lo, hi = getattr(self, name)
            if not (0 < lo <= hi):
                raise ValueError(f"bad latency range {name}={lo, hi}")


@dataclass(frozen=True)
class TransitStubConfig:
    """Shape parameters of the generated topology.

    Total node count is
    ``T*NT + T*NT*S*NS`` where ``T`` transit domains each hold ``NT``
    transit nodes, every transit node anchors ``S`` stub domains of
    ``NS`` nodes each.
    """

    transit_domains: int = 2
    transit_nodes_per_domain: int = 4
    stub_domains_per_transit_node: int = 3
    stub_nodes_per_domain: int = 8
    # Probability of an extra (redundancy) edge beyond the connecting
    # spanning tree inside each domain.
    extra_edge_prob: float = 0.3
    latencies: LatencyRanges = field(default_factory=LatencyRanges)

    def validate(self) -> None:
        if self.transit_domains < 1:
            raise ValueError("need at least one transit domain")
        if self.transit_nodes_per_domain < 1:
            raise ValueError("need at least one transit node per domain")
        if self.stub_domains_per_transit_node < 0:
            raise ValueError("stub_domains_per_transit_node must be >= 0")
        if self.stub_nodes_per_domain < 1 and self.stub_domains_per_transit_node > 0:
            raise ValueError("stub domains must be non-empty")
        if not (0.0 <= self.extra_edge_prob <= 1.0):
            raise ValueError("extra_edge_prob must be in [0, 1]")
        self.latencies.validate()

    @property
    def total_nodes(self) -> int:
        transit = self.transit_domains * self.transit_nodes_per_domain
        return transit + transit * self.stub_domains_per_transit_node * self.stub_nodes_per_domain


@dataclass
class PhysicalTopology:
    """A generated physical network.

    Attributes
    ----------
    n:
        Number of nodes; nodes are ``0..n-1``.
    edges:
        ``(u, v, latency_ms)`` with ``u < v``; each undirected link once.
    kind:
        Per-node :class:`NodeKind`.
    domain:
        Per-node domain id; stub domains and transit domains share one
        id namespace, so equal ids mean "same physical neighbourhood".
    transit_attachment:
        For stub nodes, the transit node their stub domain hangs off;
        for transit nodes, the node itself.
    """

    n: int
    edges: List[Tuple[int, int, float]]
    kind: List[NodeKind]
    domain: List[int]
    transit_attachment: List[int]

    def __post_init__(self) -> None:
        for u, v, lat in self.edges:
            if not (0 <= u < v < self.n):
                raise ValueError(f"bad edge ({u}, {v}) for n={self.n}")
            if lat <= 0:
                raise ValueError(f"non-positive latency on edge ({u}, {v})")

    @property
    def transit_nodes(self) -> List[int]:
        return [i for i in range(self.n) if self.kind[i] is NodeKind.TRANSIT]

    @property
    def stub_nodes(self) -> List[int]:
        return [i for i in range(self.n) if self.kind[i] is NodeKind.STUB]

    def adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """Adjacency lists ``node -> [(neighbor, latency), ...]``."""
        adj: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(self.n)}
        for u, v, lat in self.edges:
            adj[u].append((v, lat))
            adj[v].append((u, lat))
        return adj

    def degree(self, node: int) -> int:
        return sum(1 for u, v, _ in self.edges if u == node or v == node)


def _connected_random_graph(
    nodes: List[int],
    rng: np.random.Generator,
    extra_edge_prob: float,
    latency_range: Tuple[float, float],
) -> List[Tuple[int, int, float]]:
    """Random connected graph on ``nodes``: random tree + extra edges."""
    edges: List[Tuple[int, int, float]] = []
    lo, hi = latency_range

    def lat() -> float:
        return float(rng.uniform(lo, hi))

    # Random spanning tree via random attachment order.
    order = list(nodes)
    rng.shuffle(order)
    for i in range(1, len(order)):
        parent = order[int(rng.integers(0, i))]
        a, b = sorted((parent, order[i]))
        edges.append((a, b, lat()))
    present = {(a, b) for a, b, _ in edges}
    # Extra redundancy edges.
    if extra_edge_prob > 0 and len(order) > 2:
        for i in range(len(order)):
            for j in range(i + 1, len(order)):
                a, b = sorted((order[i], order[j]))
                if (a, b) in present:
                    continue
                if rng.random() < extra_edge_prob:
                    present.add((a, b))
                    edges.append((a, b, lat()))
    return edges


def generate_transit_stub(
    config: TransitStubConfig,
    rng: np.random.Generator,
) -> PhysicalTopology:
    """Generate a transit-stub topology.

    The result is connected by construction: every domain is internally
    connected, every stub domain attaches to its transit node, and the
    transit domains form a connected ring of domains (plus random
    shortcut edges).
    """
    config.validate()
    kind: List[NodeKind] = []
    domain: List[int] = []
    transit_attachment: List[int] = []
    edges: List[Tuple[int, int, float]] = []

    next_node = 0
    next_domain = 0
    transit_domains: List[List[int]] = []

    # --- transit domains -------------------------------------------------
    for _ in range(config.transit_domains):
        members = list(range(next_node, next_node + config.transit_nodes_per_domain))
        next_node += len(members)
        for m in members:
            kind.append(NodeKind.TRANSIT)
            domain.append(next_domain)
            transit_attachment.append(m)
        edges.extend(
            _connected_random_graph(
                members, rng, config.extra_edge_prob, config.latencies.intra_transit
            )
        )
        transit_domains.append(members)
        next_domain += 1

    # Connect transit domains in a ring (guarantees backbone
    # connectivity) plus random shortcuts between random domain pairs.
    lo, hi = config.latencies.inter_transit
    ndom = len(transit_domains)
    if ndom > 1:
        for i in range(ndom):
            j = (i + 1) % ndom
            if ndom == 2 and i == 1:
                break  # avoid a duplicate link between the only two domains
            a = int(rng.choice(transit_domains[i]))
            b = int(rng.choice(transit_domains[j]))
            u, v = sorted((a, b))
            edges.append((u, v, float(rng.uniform(lo, hi))))
        for i in range(ndom):
            for j in range(i + 2, ndom):
                if rng.random() < config.extra_edge_prob:
                    a = int(rng.choice(transit_domains[i]))
                    b = int(rng.choice(transit_domains[j]))
                    u, v = sorted((a, b))
                    edges.append((u, v, float(rng.uniform(lo, hi))))

    # --- stub domains -----------------------------------------------------
    ts_lo, ts_hi = config.latencies.transit_stub
    for members in transit_domains:
        for t_node in members:
            for _ in range(config.stub_domains_per_transit_node):
                stub = list(range(next_node, next_node + config.stub_nodes_per_domain))
                next_node += len(stub)
                for s in stub:
                    kind.append(NodeKind.STUB)
                    domain.append(next_domain)
                    transit_attachment.append(t_node)
                edges.extend(
                    _connected_random_graph(
                        stub, rng, config.extra_edge_prob, config.latencies.intra_stub
                    )
                )
                gateway = int(rng.choice(stub))
                u, v = sorted((t_node, gateway))
                edges.append((u, v, float(rng.uniform(ts_lo, ts_hi))))
                next_domain += 1

    # De-duplicate parallel edges that random shortcuts may have created,
    # keeping the lowest latency.
    best: Dict[Tuple[int, int], float] = {}
    for u, v, lat in edges:
        key = (u, v)
        if key not in best or lat < best[key]:
            best[key] = lat
    unique_edges = [(u, v, lat) for (u, v), lat in sorted(best.items())]

    return PhysicalTopology(
        n=next_node,
        edges=unique_edges,
        kind=kind,
        domain=domain,
        transit_attachment=transit_attachment,
    )


def config_for_size(
    target_nodes: int,
    stub_nodes_per_domain: int = 8,
    stub_domains_per_transit_node: int = 3,
    max_transit_nodes: int = 4096,
) -> TransitStubConfig:
    """Pick a configuration whose total size approximates ``target_nodes``.

    Used by experiment drivers that only care about "a transit-stub
    network of roughly N nodes" (the paper uses N = 1000).  The result's
    :attr:`TransitStubConfig.total_nodes` is >= ``target_nodes`` whenever
    possible so peer populations can always be placed.

    Past ~10^5 nodes the default shape would put tens of thousands of
    nodes in the transit core, whose all-pairs table is the quadratic
    term in :class:`~repro.net.routing.HierRouter` memory (and cubic in
    build time).  When the core would exceed ``max_transit_nodes`` the
    stub domains grow instead -- their cost is only the sum of squared
    *domain* sizes -- leaving every paper-scale configuration (which
    stays far below the cap) byte-for-byte unchanged.
    """
    if target_nodes < 2:
        raise ValueError("target_nodes must be >= 2")
    per_transit = 1 + stub_domains_per_transit_node * stub_nodes_per_domain
    if -(-target_nodes // per_transit) > max_transit_nodes:
        need_per_transit = -(-target_nodes // max_transit_nodes)
        stub_nodes_per_domain = -(
            -(need_per_transit - 1) // stub_domains_per_transit_node
        )
        per_transit = 1 + stub_domains_per_transit_node * stub_nodes_per_domain
    total_transit = max(2, -(-target_nodes // per_transit))  # ceil division
    # Split transit nodes across domains of ~4.
    transit_domains = max(1, total_transit // 4)
    transit_per_domain = -(-total_transit // transit_domains)
    return TransitStubConfig(
        transit_domains=transit_domains,
        transit_nodes_per_domain=transit_per_domain,
        stub_domains_per_transit_node=stub_domains_per_transit_node,
        stub_nodes_per_domain=stub_nodes_per_domain,
    )
