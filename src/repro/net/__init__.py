"""Physical-network substrate.

Replaces GT-ITM + NS2's network layer: transit-stub topology generation
(:mod:`~repro.net.topology`), all-pairs latency routing
(:mod:`~repro.net.routing`), heterogeneous access-link capacities
(:mod:`~repro.net.links`), and link-stress accounting
(:mod:`~repro.net.stress`).
"""

from .links import CapacityClass, CapacityModel, HeterogeneityConfig
from .routing import Router
from .stress import LinkStress, StressSummary
from .topology import (
    LatencyRanges,
    NodeKind,
    PhysicalTopology,
    TransitStubConfig,
    config_for_size,
    generate_transit_stub,
)

__all__ = [
    "CapacityClass",
    "CapacityModel",
    "HeterogeneityConfig",
    "Router",
    "LinkStress",
    "StressSummary",
    "LatencyRanges",
    "NodeKind",
    "PhysicalTopology",
    "TransitStubConfig",
    "config_for_size",
    "generate_transit_stub",
]
