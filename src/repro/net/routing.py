"""Shortest-path routing over the physical topology.

Overlay links are logical: each corresponds to the physical shortest
path between the hosts of the two peers.  This module precomputes
all-pairs shortest paths (latency-weighted Dijkstra via
``scipy.sparse.csgraph``) and exposes:

* ``latency(u, v)`` -- end-to-end propagation delay of the path, and
* ``path(u, v)`` -- the node sequence, used for link-stress accounting.

For the paper's scale (1,000 physical nodes) the dense distance matrix
is ~8 MB and the predecessor matrix ~4 MB; both are computed once per
experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .topology import NodeKind, PhysicalTopology

__all__ = ["Router", "HierRouter", "make_router", "DENSE_ROUTER_LIMIT"]

# Above this host count the dense all-pairs matrices (O(n^2) doubles)
# stop fitting in memory and make_router switches to HierRouter.
DENSE_ROUTER_LIMIT = 4096


class Router:
    """All-pairs latency routing table for a :class:`PhysicalTopology`."""

    def __init__(self, topology: PhysicalTopology) -> None:
        self.topology = topology
        n = topology.n
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, lat in topology.edges:
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((lat, lat))
        graph = csr_matrix((vals, (rows, cols)), shape=(n, n))
        dist, pred = dijkstra(
            graph, directed=False, return_predecessors=True
        )
        if np.isinf(dist).any():
            raise ValueError("physical topology is not connected")
        self._dist = dist
        self._pred = pred
        # Lazily materialized plain-list rows of the distance matrix.
        # Scalar numpy indexing costs ~10x a list index on the transport
        # hot path; ``tolist`` yields the exact same IEEE doubles, so
        # delays (and therefore event ordering) are bit-identical.
        self._rows: dict[int, List[float]] = {}

    @property
    def n(self) -> int:
        return self.topology.n

    def latency(self, src: int, dst: int) -> float:
        """Propagation delay (ms) of the shortest path ``src -> dst``."""
        row = self._rows.get(src)
        if row is None:
            row = self._rows[src] = self._dist[src].tolist()
        return row[dst]

    def latency_row(self, src: int) -> List[float]:
        """Row ``src`` of the latency matrix as a plain list (cached).

        One vectorized slice + ``tolist`` per source host, then O(1)
        C-level indexing per destination -- the bulk-delay primitive
        behind :meth:`Transport.send_many`.  Treat as read-only.
        """
        row = self._rows.get(src)
        if row is None:
            row = self._rows[src] = self._dist[src].tolist()
        return row

    def latency_matrix(self) -> np.ndarray:
        """The full (n, n) latency matrix (a view; do not mutate)."""
        return self._dist

    def path(self, src: int, dst: int) -> List[int]:
        """Node sequence of the shortest path, inclusive of endpoints."""
        if src == dst:
            return [src]
        nodes = [dst]
        cur = dst
        while cur != src:
            cur = int(self._pred[src, cur])
            if cur < 0:  # pragma: no cover - connectivity checked in init
                raise ValueError(f"no path {src} -> {dst}")
            nodes.append(cur)
        nodes.reverse()
        return nodes

    def path_edges(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Edges of the shortest path as sorted (u, v) pairs."""
        nodes = self.path(src, dst)
        return [tuple(sorted((a, b))) for a, b in zip(nodes, nodes[1:])]  # type: ignore[misc]

    def hop_count(self, src: int, dst: int) -> int:
        """Number of physical links on the path."""
        return len(self.path(src, dst)) - 1

    def min_edge_latency(self) -> float:
        """Cheapest physical link (ms): a lower bound on any one-hop
        propagation delay, used as the conservative-sync lookahead."""
        return min(lat for _, _, lat in self.topology.edges)


class _HierRow:
    """Lazy latency row of a :class:`HierRouter` source host.

    Quacks like the plain list :meth:`Router.latency_row` returns --
    ``row[dst]`` -- without materializing n doubles per source.  For a
    same-stub-domain destination the intra-domain distance applies;
    everything else decomposes over the single gateway edge of each stub
    domain (see :class:`HierRouter`).
    """

    __slots__ = ("_base", "_tt", "_tindex", "_to_transit", "_local")

    def __init__(
        self,
        base: float,
        tt: List[float],
        tindex: List[int],
        to_transit: List[float],
        local: Dict[int, float],
    ) -> None:
        self._base = base
        self._tt = tt
        self._tindex = tindex
        self._to_transit = to_transit
        self._local = local

    def __getitem__(self, dst: int) -> float:
        d = self._local.get(dst)
        if d is not None:
            return d
        return self._base + self._tt[self._tindex[dst]] + self._to_transit[dst]


class HierRouter:
    """Hierarchical routing table for large transit-stub topologies.

    The dense :class:`Router` stores O(n^2) doubles -- 80 GB at 10^5
    hosts -- which caps cell sizes long before the event loop does.
    Transit-stub topologies don't need it: by construction
    (:func:`~repro.net.topology.generate_transit_stub`) every stub
    domain attaches to the backbone through exactly *one* gateway edge,
    so any path leaving a stub domain crosses that edge, and any
    excursion from the transit core into a stub domain is a detour.
    Shortest paths therefore decompose exactly:

    ``lat(u, v) = d_D(u, g_D) + w_D  +  T(t_D, t_E)  +  w_E + d_E(g_E, v)``

    where ``d_X`` is the all-pairs distance *inside* stub domain ``X``
    (a <=64-node subgraph), ``g_X``/``w_X`` its gateway node and gateway
    edge weight, and ``T`` the all-pairs distance over the transit-only
    subgraph.  Memory is O(n_t^2 + sum |D|^2) instead of O(n^2).

    The decomposition yields the same shortest-path *lengths* as the
    dense router up to IEEE summation association; ``make_router`` only
    selects this class above :data:`DENSE_ROUTER_LIMIT`, where no dense
    reference exists, and every shard of a sharded run uses the same
    implementation, so determinism across shard counts is unaffected.
    """

    def __init__(self, topology: PhysicalTopology) -> None:
        self.topology = topology
        n = topology.n
        kind = topology.kind
        domain = topology.domain
        attach = topology.transit_attachment

        # --- transit core ------------------------------------------------
        transit = [i for i in range(n) if kind[i] is NodeKind.TRANSIT]
        self._transit = transit
        t_of = {node: i for i, node in enumerate(transit)}
        n_t = len(transit)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        # Per-stub-domain edge lists and the one gateway edge.
        dom_edges: Dict[int, List[Tuple[int, int, float]]] = {}
        gateway: Dict[int, Tuple[int, float]] = {}  # domain -> (gateway node, w)
        for u, v, lat in topology.edges:
            u_t = kind[u] is NodeKind.TRANSIT
            v_t = kind[v] is NodeKind.TRANSIT
            if u_t and v_t:
                a, b = t_of[u], t_of[v]
                rows.extend((a, b))
                cols.extend((b, a))
                vals.extend((lat, lat))
            elif u_t != v_t:
                stub = v if u_t else u
                d = domain[stub]
                if d in gateway:
                    raise ValueError(
                        f"stub domain {d} has multiple gateway edges; "
                        "HierRouter requires the single-gateway transit-stub form"
                    )
                gateway[d] = (stub, lat)
            else:
                if domain[u] != domain[v]:  # pragma: no cover - generator invariant
                    raise ValueError("stub edge crosses domains")
                dom_edges.setdefault(domain[u], []).append((u, v, lat))
        core = csr_matrix((vals, (rows, cols)), shape=(n_t, n_t))
        tt_dist, tt_pred = dijkstra(core, directed=False, return_predecessors=True)
        if np.isinf(tt_dist).any():
            raise ValueError("transit core is not connected")
        self._tt = tt_dist
        self._tt_pred = tt_pred
        self._tt_rows: Dict[int, List[float]] = {}

        # --- stub domains ------------------------------------------------
        # Members in node order; intra-domain all-pairs per domain.
        members: Dict[int, List[int]] = {}
        for i in range(n):
            if kind[i] is NodeKind.STUB:
                members.setdefault(domain[i], []).append(i)
        self._members = members
        self._intra: Dict[int, np.ndarray] = {}
        self._intra_pred: Dict[int, np.ndarray] = {}
        self._gateway = gateway
        # Per-host: index of the attachment transit node, and the exact
        # distance to it (0.0 for transit nodes).
        tindex = [0] * n
        to_transit = [0.0] * n
        for i in range(n):
            tindex[i] = t_of[attach[i]]
        for d, mem in members.items():
            if d not in gateway:
                raise ValueError(f"stub domain {d} has no gateway edge")
            g, w = gateway[d]
            idx = {node: j for j, node in enumerate(mem)}
            k = len(mem)
            drows: List[int] = []
            dcols: List[int] = []
            dvals: List[float] = []
            for u, v, lat in dom_edges.get(d, ()):
                a, b = idx[u], idx[v]
                drows.extend((a, b))
                dcols.extend((b, a))
                dvals.extend((lat, lat))
            sub = csr_matrix((dvals, (drows, dcols)), shape=(k, k))
            dist, pred = dijkstra(sub, directed=False, return_predecessors=True)
            if np.isinf(dist).any():
                raise ValueError(f"stub domain {d} is not internally connected")
            self._intra[d] = dist
            self._intra_pred[d] = pred
            grow = dist[idx[g]]
            for node in mem:
                to_transit[node] = float(grow[idx[node]]) + w
        self._dom_index: Dict[int, Dict[int, int]] = {
            d: {node: j for j, node in enumerate(mem)} for d, mem in members.items()
        }
        self._tindex = tindex
        self._to_transit = to_transit
        self._rows: Dict[int, _HierRow] = {}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.topology.n

    def _tt_row(self, ti: int) -> List[float]:
        row = self._tt_rows.get(ti)
        if row is None:
            row = self._tt_rows[ti] = self._tt[ti].tolist()
        return row

    def latency_row(self, src: int) -> _HierRow:
        """Lazy row object supporting ``row[dst]`` (cached per source)."""
        row = self._rows.get(src)
        if row is not None:
            return row
        topo = self.topology
        local: Dict[int, float] = {}
        if topo.kind[src] is NodeKind.STUB:
            d = topo.domain[src]
            idx = self._dom_index[d]
            drow = self._intra[d][idx[src]]
            for node, j in idx.items():
                local[node] = float(drow[j])
            base = self._to_transit[src]
        else:
            local[src] = 0.0
            base = 0.0
        row = _HierRow(
            base, self._tt_row(self._tindex[src]), self._tindex, self._to_transit, local
        )
        self._rows[src] = row
        return row

    def latency(self, src: int, dst: int) -> float:
        """Propagation delay (ms) of the shortest path ``src -> dst``."""
        return self.latency_row(src)[dst]

    def min_edge_latency(self) -> float:
        """Cheapest physical link (ms); see :meth:`Router.min_edge_latency`."""
        return min(lat for _, _, lat in self.topology.edges)

    # ------------------------------------------------------------------
    # Paths (cold path: link-stress accounting only)
    # ------------------------------------------------------------------
    def _intra_path(self, d: int, src: int, dst: int) -> List[int]:
        mem = self._members[d]
        idx = self._dom_index[d]
        pred = self._intra_pred[d]
        nodes = [dst]
        cur = idx[dst]
        s = idx[src]
        while cur != s:
            cur = int(pred[s, cur])
            nodes.append(mem[cur])
        nodes.reverse()
        return nodes

    def _transit_path(self, src_t: int, dst_t: int) -> List[int]:
        transit = self._transit
        pred = self._tt_pred
        nodes = [transit[dst_t]]
        cur = dst_t
        while cur != src_t:
            cur = int(pred[src_t, cur])
            nodes.append(transit[cur])
        nodes.reverse()
        return nodes

    def path(self, src: int, dst: int) -> List[int]:
        """Node sequence of the shortest path, inclusive of endpoints."""
        if src == dst:
            return [src]
        topo = self.topology
        src_stub = topo.kind[src] is NodeKind.STUB
        dst_stub = topo.kind[dst] is NodeKind.STUB
        if src_stub and dst_stub and topo.domain[src] == topo.domain[dst]:
            return self._intra_path(topo.domain[src], src, dst)
        head: List[int] = []
        if src_stub:
            d = topo.domain[src]
            head = self._intra_path(d, src, self._gateway[d][0])
        tail: List[int] = []
        if dst_stub:
            e = topo.domain[dst]
            tail = self._intra_path(e, self._gateway[e][0], dst)
        core = self._transit_path(self._tindex[src], self._tindex[dst])
        return head + core + tail

    def path_edges(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Edges of the shortest path as sorted (u, v) pairs."""
        nodes = self.path(src, dst)
        return [tuple(sorted((a, b))) for a, b in zip(nodes, nodes[1:])]  # type: ignore[misc]

    def hop_count(self, src: int, dst: int) -> int:
        """Number of physical links on the path."""
        return len(self.path(src, dst)) - 1


def make_router(
    topology: PhysicalTopology, dense_limit: Optional[int] = None
):
    """Pick the routing implementation for a topology's size.

    Dense :class:`Router` (exact, list-indexed rows) up to
    ``dense_limit`` hosts; :class:`HierRouter` beyond.  The default
    limit keeps every existing experiment scale -- and therefore all
    golden determinism baselines -- on the dense implementation.
    """
    limit = DENSE_ROUTER_LIMIT if dense_limit is None else dense_limit
    if topology.n <= limit:
        return Router(topology)
    return HierRouter(topology)
