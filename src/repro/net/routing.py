"""Shortest-path routing over the physical topology.

Overlay links are logical: each corresponds to the physical shortest
path between the hosts of the two peers.  This module precomputes
all-pairs shortest paths (latency-weighted Dijkstra via
``scipy.sparse.csgraph``) and exposes:

* ``latency(u, v)`` -- end-to-end propagation delay of the path, and
* ``path(u, v)`` -- the node sequence, used for link-stress accounting.

For the paper's scale (1,000 physical nodes) the dense distance matrix
is ~8 MB and the predecessor matrix ~4 MB; both are computed once per
experiment.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .topology import PhysicalTopology

__all__ = ["Router"]


class Router:
    """All-pairs latency routing table for a :class:`PhysicalTopology`."""

    def __init__(self, topology: PhysicalTopology) -> None:
        self.topology = topology
        n = topology.n
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, lat in topology.edges:
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((lat, lat))
        graph = csr_matrix((vals, (rows, cols)), shape=(n, n))
        dist, pred = dijkstra(
            graph, directed=False, return_predecessors=True
        )
        if np.isinf(dist).any():
            raise ValueError("physical topology is not connected")
        self._dist = dist
        self._pred = pred
        # Lazily materialized plain-list rows of the distance matrix.
        # Scalar numpy indexing costs ~10x a list index on the transport
        # hot path; ``tolist`` yields the exact same IEEE doubles, so
        # delays (and therefore event ordering) are bit-identical.
        self._rows: dict[int, List[float]] = {}

    @property
    def n(self) -> int:
        return self.topology.n

    def latency(self, src: int, dst: int) -> float:
        """Propagation delay (ms) of the shortest path ``src -> dst``."""
        row = self._rows.get(src)
        if row is None:
            row = self._rows[src] = self._dist[src].tolist()
        return row[dst]

    def latency_row(self, src: int) -> List[float]:
        """Row ``src`` of the latency matrix as a plain list (cached).

        One vectorized slice + ``tolist`` per source host, then O(1)
        C-level indexing per destination -- the bulk-delay primitive
        behind :meth:`Transport.send_many`.  Treat as read-only.
        """
        row = self._rows.get(src)
        if row is None:
            row = self._rows[src] = self._dist[src].tolist()
        return row

    def latency_matrix(self) -> np.ndarray:
        """The full (n, n) latency matrix (a view; do not mutate)."""
        return self._dist

    def path(self, src: int, dst: int) -> List[int]:
        """Node sequence of the shortest path, inclusive of endpoints."""
        if src == dst:
            return [src]
        nodes = [dst]
        cur = dst
        while cur != src:
            cur = int(self._pred[src, cur])
            if cur < 0:  # pragma: no cover - connectivity checked in init
                raise ValueError(f"no path {src} -> {dst}")
            nodes.append(cur)
        nodes.reverse()
        return nodes

    def path_edges(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Edges of the shortest path as sorted (u, v) pairs."""
        nodes = self.path(src, dst)
        return [tuple(sorted((a, b))) for a, b in zip(nodes, nodes[1:])]  # type: ignore[misc]

    def hop_count(self, src: int, dst: int) -> int:
        """Number of physical links on the path."""
        return len(self.path(src, dst)) - 1
