"""Per-physical-link stress accounting.

Section 5.2 defines *link stress* as "the number of copies of a message
transmitted over a certain physical link".  Topology mismatch (overlay
neighbours that are physically distant) inflates stress; the binning
enhancement is meant to reduce it.  The transport layer calls
:meth:`LinkStress.record_path` for every overlay message it delivers,
and experiments read the summary statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["LinkStress", "StressSummary"]


@dataclass(frozen=True)
class StressSummary:
    """Aggregate view of link stress at a point in time."""

    total_transmissions: int
    links_used: int
    max_stress: int
    mean_stress: float
    p95_stress: float

    def __str__(self) -> str:
        return (
            f"transmissions={self.total_transmissions} links={self.links_used} "
            f"max={self.max_stress} mean={self.mean_stress:.2f} p95={self.p95_stress:.1f}"
        )


class LinkStress:
    """Counts message copies per physical link."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.total_transmissions = 0

    def record_path(self, path_edges: List[Tuple[int, int]]) -> None:
        """Record one message copy over every link of a physical path."""
        for edge in path_edges:
            self._counts[edge] += 1
        self.total_transmissions += len(path_edges)

    def stress(self, u: int, v: int) -> int:
        """Copies transmitted over physical link (u, v)."""
        return self._counts[tuple(sorted((u, v)))]

    def counts(self) -> Dict[Tuple[int, int], int]:
        """Copy of the per-link counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()
        self.total_transmissions = 0

    def summary(self) -> StressSummary:
        """Aggregate statistics over links that saw any traffic."""
        if not self._counts:
            return StressSummary(0, 0, 0, 0.0, 0.0)
        values = np.fromiter(self._counts.values(), dtype=np.int64)
        return StressSummary(
            total_transmissions=self.total_transmissions,
            links_used=len(values),
            max_stress=int(values.max()),
            mean_stress=float(values.mean()),
            p95_stress=float(np.percentile(values, 95)),
        )
