"""Figure 5: lookup failure ratio.

Panel (a): failure ratio vs p_s for TTL in {1, 2, 4}.  Expected shape
(Section 6.2): ~0 below p_s = 0.5 for every TTL (structured-grade
accuracy), rising with p_s, and falling sharply as TTL grows (the paper
quotes 18% / 14% / 4% at p_s = 0.9 for TTL 1 / 2 / 4).

Panel (b): failure ratio vs fraction of crashed peers, for several p_s.
Expected shape: linear in the crash fraction and flat in p_s -- with
the spread placement scheme the data lost is simply proportional to the
peers lost, wherever they sit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.config import HybridConfig
from ..exec import CellExecutor, CellSpec
from ..metrics.report import format_grid
from .common import CellResult, Scale

__all__ = ["Fig5aResult", "Fig5bResult", "run_5a", "run_5b", "main"]

TTLS: Sequence[int] = (1, 2, 4)
PS_GRID_5A: Sequence[float] = (0.0, 0.3, 0.5, 0.7, 0.8, 0.9)
CRASH_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3)
PS_GRID_5B: Sequence[float] = (0.3, 0.6, 0.9)


@dataclass
class Fig5aResult:
    """failure ratio indexed [ttl][p_s]."""

    cells: Dict[int, Dict[float, CellResult]]

    def failure(self, ttl: int, p_s: float) -> float:
        return self.cells[ttl][p_s].failure_ratio


@dataclass
class Fig5bResult:
    """failure ratio indexed [p_s][crash_fraction]."""

    cells: Dict[float, Dict[float, CellResult]]

    def failure(self, p_s: float, fraction: float) -> float:
        return self.cells[p_s][fraction].failure_ratio


def run_5a(
    scale: Scale,
    ttls: Sequence[int] = TTLS,
    ps_values: Sequence[float] = PS_GRID_5A,
    delta: int = 3,
    executor: CellExecutor | None = None,
) -> Fig5aResult:
    """Sweep (TTL, p_s); data placed with scheme 2, no churn."""
    executor = executor or CellExecutor.serial()
    keys = [(ttl, p_s) for ttl in ttls for p_s in ps_values]
    specs = [
        CellSpec(HybridConfig(p_s=p_s, delta=delta, ttl=ttl), scale, tag="fig5a")
        for ttl, p_s in keys
    ]
    cells: Dict[int, Dict[float, CellResult]] = {}
    for (ttl, p_s), cell in zip(keys, executor.map(specs)):
        cells.setdefault(ttl, {})[p_s] = cell
    return Fig5aResult(cells=cells)


def run_5b(
    scale: Scale,
    fractions: Sequence[float] = CRASH_FRACTIONS,
    ps_values: Sequence[float] = PS_GRID_5B,
    delta: int = 3,
    ttl: int = 4,
    executor: CellExecutor | None = None,
) -> Fig5bResult:
    """Sweep (p_s, crash fraction) with heartbeats + repair enabled."""
    executor = executor or CellExecutor.serial()
    keys = [(p_s, fraction) for p_s in ps_values for fraction in fractions]
    specs = [
        CellSpec(
            HybridConfig(
                p_s=p_s,
                delta=delta,
                ttl=ttl,
                heartbeats_enabled=True,
                lookup_timeout=30_000.0,
            ),
            scale,
            crash_fraction=fraction,
            tag="fig5b",
        )
        for p_s, fraction in keys
    ]
    cells: Dict[float, Dict[float, CellResult]] = {}
    for (p_s, fraction), cell in zip(keys, executor.map(specs)):
        cells.setdefault(p_s, {})[fraction] = cell
    return Fig5bResult(cells=cells)


def main(scale: Scale | None = None, executor: CellExecutor | None = None) -> str:
    scale = scale or Scale.quick()
    a = run_5a(scale, executor=executor)
    b = run_5b(scale, executor=executor)
    grid_a = {
        f"{ps:.1f}": {ttl: f"{a.failure(ttl, ps):.3f}" for ttl in TTLS}
        for ps in PS_GRID_5A
    }
    grid_b = {
        f"{fr:.2f}": {f"{ps:.1f}": f"{b.failure(ps, fr):.3f}" for ps in PS_GRID_5B}
        for fr in CRASH_FRACTIONS
    }
    parts = [
        format_grid(
            "p_s", [f"{ps:.1f}" for ps in PS_GRID_5A],
            "TTL", list(TTLS), grid_a,
            title=f"Fig. 5a -- lookup failure ratio (N={scale.n_peers})",
        ),
        "",
        format_grid(
            "crash", [f"{fr:.2f}" for fr in CRASH_FRACTIONS],
            "p_s", [f"{ps:.1f}" for ps in PS_GRID_5B], grid_b,
            title=f"Fig. 5b -- failure ratio under peer crash (N={scale.n_peers})",
        ),
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(main())
