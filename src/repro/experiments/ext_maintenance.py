"""Extension experiment: topology maintenance cost vs p_s.

Section 3.1's core argument for the hybrid design: "the hybrid system
can effectively reduce the topology maintenance overhead caused by peer
joining or leaving ... a large portion of peers join the s-networks
directly without disturbing the t-network; and ... an s-peer can be
selected to substitute the leaving t-peer".

The paper never plots this, so this experiment does: drive a fixed
number of joins and (graceful) leaves through systems at different
p_s and count the control messages each membership event cost.  The
expected shape is monotone decreasing in p_s -- s-joins are one walk
down a shallow tree, s-leaves are a handful of notifications, and even
t-leaves become a constant-cost handoff instead of a ring repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.report import format_table

__all__ = ["MaintenanceCell", "run", "main"]

PS_GRID: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)


@dataclass(frozen=True)
class MaintenanceCell:
    """Control-message cost of churn at one p_s."""

    p_s: float
    joins: int
    leaves: int
    messages: int

    @property
    def per_event(self) -> float:
        total = self.joins + self.leaves
        return self.messages / total if total else 0.0


def _maintenance_cell(args: tuple) -> MaintenanceCell:
    """Drive churn_events alternating joins/leaves at one p_s."""
    p_s, n_peers, churn_events, seed = args
    system = HybridSystem(HybridConfig(p_s=p_s), n_peers=n_peers, seed=seed)
    system.build()
    system.engine.run()
    rng = system.rngs.stream("maintenance")
    before = system.transport.messages_sent
    joins = leaves = 0
    for i in range(churn_events):
        if i % 2 == 0:
            system.add_peer()
            joins += 1
        else:
            alive = [p.address for p in system.alive_peers()]
            victim = int(alive[int(rng.integers(0, len(alive)))])
            system.leave_peers([victim])
            leaves += 1
        system.engine.run()
    return MaintenanceCell(
        p_s=p_s,
        joins=joins,
        leaves=leaves,
        messages=system.transport.messages_sent - before,
    )


def run(
    n_peers: int = 100,
    churn_events: int = 40,
    ps_values: Sequence[float] = PS_GRID,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> Dict[float, MaintenanceCell]:
    """Measure messages per membership event across p_s.

    Joins and leaves alternate; only control traffic flows (no data
    operations), so the transport's send counter isolates maintenance.
    """
    executor = executor or CellExecutor.serial()
    tasks = [(p_s, n_peers, churn_events, seed) for p_s in ps_values]
    cells = executor.map_fn(_maintenance_cell, tasks, tag="maintenance")
    return {p_s: cell for p_s, cell in zip(ps_values, cells)}


def main(
    n_peers: int = 100,
    churn_events: int = 40,
    ps_values: Sequence[float] = PS_GRID,
    executor: CellExecutor | None = None,
) -> str:
    cells = run(
        n_peers=n_peers,
        churn_events=churn_events,
        ps_values=ps_values,
        executor=executor,
    )
    rows = [
        [f"{ps:.1f}", cells[ps].messages, f"{cells[ps].per_event:.1f}"]
        for ps in ps_values
    ]
    return format_table(
        ["p_s", "control msgs", "msgs/event"],
        rows,
        title=(
            f"Extension -- maintenance cost of {churn_events} churn events "
            f"(N={n_peers})"
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
