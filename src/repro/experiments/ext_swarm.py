"""Extension experiment: swarm bulk transfer vs single-holder flash crowd.

Section 5.5's tracker mode exists for exactly one failure shape: a
popular item whose every download hits the one peer that stores it.
With ``repro.swarm`` the item is split into hashed pieces, the owner
t-peer tracks who holds what, and every fetcher that completes a piece
immediately becomes a source for it -- so a flash crowd's load spreads
over the crowd itself instead of concentrating on the publisher.

The simulator's delay model has no link serialization (a peer can
answer any number of requests in parallel), so wall-clock speedup is
the *live* bench's job (``scripts/bench_swarm.py``).  What the sim can
measure deterministically is the load shape: pieces served per peer,
counted off the trace bus.  The naive baseline needs no run at all --
a single holder serves every piece of every download by definition, so
its max-load column is exact: ``fetchers x pieces``.

Run: ``repro experiment swarm [--scale ...] [--seed N]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..metrics.report import format_table

__all__ = ["SwarmCell", "run", "main"]

FETCHER_COUNTS: Sequence[int] = (4, 8, 16)


@dataclass(frozen=True)
class SwarmCell:
    """Load shape of one flash crowd of ``fetchers`` concurrent peers."""

    fetchers: int
    pieces: int
    total_tx: int  # pieces served, all peers summed
    publisher_tx: int  # pieces served by the original publisher
    max_peer_tx: int  # busiest single peer (swarm)
    naive_max_tx: int  # busiest peer under single-holder = fetchers * pieces
    mean_ms: float  # mean fetch completion (protocol ms)
    integrity_failures: int

    @property
    def publisher_share(self) -> float:
        return self.publisher_tx / self.total_tx if self.total_tx else 0.0

    @property
    def concentration(self) -> float:
        """Busiest-peer share of the transfer: 1.0 = naive single holder."""
        return self.max_peer_tx / self.total_tx if self.total_tx else 0.0


def _flash_crowd(
    n_peers: int, n_fetchers: int, n_pieces: int, p_s: float, seed: int
) -> SwarmCell:
    config = HybridConfig(
        p_s=p_s,
        swarm_enabled=True,
        swarm_piece_size=1_000,
        swarm_inflight=4,
    )
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    s_peers = sorted(system.s_peers(), key=lambda p: p.address)
    if len(s_peers) < n_fetchers + 1:
        raise ValueError(
            f"need {n_fetchers + 1} s-peers, built {len(s_peers)} "
            f"(raise n_peers or p_s)"
        )
    publisher, fetchers = s_peers[0], s_peers[1 : n_fetchers + 1]

    tx_by_peer: Dict[int, int] = {}

    def _count_tx(rec) -> None:
        if rec.payload.get("dir") == "tx":
            peer = rec.payload.get("peer", -1)
            tx_by_peer[peer] = tx_by_peer.get(peer, 0) + 1

    system.trace.subscribe("swarm.piece", _count_tx)

    data = bytes(i % 251 for i in range(n_pieces * config.swarm_piece_size))
    manifest = publisher.swarm_publish("hot-item", data)
    system.settle(2_000.0)  # let the seed announce reach the tracker

    done: List[Dict[str, object]] = []

    def _make_cb():
        def _cb(result, info):
            done.append({"ok": result == data, **info})

        return _cb

    start = system.engine.now
    for peer in fetchers:
        peer.swarm_fetch(manifest, _make_cb())
    system.engine.run_while(lambda: len(done) < n_fetchers, 5_000_000)
    system.trace.unsubscribe("swarm.piece", _count_tx)

    if len(done) < n_fetchers:
        raise RuntimeError(
            f"flash crowd did not drain: {len(done)}/{n_fetchers} finished"
        )
    if not all(d["ok"] for d in done):
        raise RuntimeError("a fetcher assembled wrong bytes (integrity bug)")

    pieces = len(manifest["pieces"])
    return SwarmCell(
        fetchers=n_fetchers,
        pieces=pieces,
        total_tx=sum(tx_by_peer.values()),
        publisher_tx=tx_by_peer.get(publisher.address, 0),
        max_peer_tx=max(tx_by_peer.values(), default=0),
        naive_max_tx=n_fetchers * pieces,
        mean_ms=sum(float(d["duration_ms"]) for d in done) / n_fetchers,
        integrity_failures=sum(int(d["integrity_failures"]) for d in done),
    )


def run(
    n_peers: int = 40,
    fetcher_counts: Sequence[int] = FETCHER_COUNTS,
    n_pieces: int = 24,
    p_s: float = 0.7,
    seed: int = 0,
) -> List[SwarmCell]:
    return [
        _flash_crowd(n_peers, f, n_pieces, p_s, seed) for f in fetcher_counts
    ]


def main(n_peers: int = 40, seed: int = 0) -> str:
    cells = run(n_peers=n_peers, seed=seed)
    rows = [
        [
            cell.fetchers,
            cell.pieces,
            f"{cell.publisher_share:.1%}",
            f"{cell.max_peer_tx} ({cell.concentration:.1%})",
            f"{cell.naive_max_tx} (100.0%)",
            f"{cell.mean_ms:.0f}",
            cell.integrity_failures,
        ]
        for cell in cells
    ]
    return format_table(
        [
            "fetchers", "pieces", "publisher share",
            "max peer tx (swarm)", "max peer tx (naive)",
            "mean fetch ms", "bad pieces",
        ],
        rows,
        title=f"Extension -- swarm load spread vs single holder (N={n_peers})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
