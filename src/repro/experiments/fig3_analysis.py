"""Figure 3: the analytical join- and lookup-latency curves.

Fig. 3a plots equation (1) (average join latency vs p_s for several
degree caps δ); Fig. 3b plots the degree-constrained lookup-latency
expression.  Both are closed forms -- this experiment evaluates them on
the paper's grid and checks the shapes the paper reads off:

* 3a: U-shaped, minimum around p_s 0.7-0.8, larger δ -> lower curve;
* 3b: flat and δ-independent below p_s = 0.5, then decreasing, larger
  δ -> shorter latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..analysis.curves import AnalyticCurve, fig3a_join_latency, fig3b_lookup_latency
from ..metrics.report import format_series

__all__ = ["Fig3Result", "run", "main"]

DELTAS: Sequence[int] = (2, 3, 4, 5)


@dataclass
class Fig3Result:
    """Both panels of Fig. 3."""

    join: Dict[int, AnalyticCurve]  # delta -> curve (Fig. 3a)
    lookup: Dict[int, AnalyticCurve]  # delta -> curve (Fig. 3b)

    def optimal_ps(self, delta: int) -> float:
        """Where the join latency bottoms out for a given delta."""
        return self.join[delta].argmin()[0]


def run(n_peers: int = 1000, ttl: int = 4, points: int = 99) -> Fig3Result:
    """Evaluate both panels on the paper's parameters."""
    return Fig3Result(
        join=fig3a_join_latency(n_peers=n_peers, deltas=DELTAS, points=points),
        lookup=fig3b_lookup_latency(
            n_peers=n_peers, ttl=ttl, deltas=DELTAS, points=points
        ),
    )


def main(n_peers: int = 1000, points: int = 11) -> str:
    """Render both panels as tables (sampled grid) plus the optima."""
    result = run(n_peers=n_peers, points=points)
    grid = result.join[DELTAS[0]].p_s
    parts = [
        format_series(
            "p_s",
            [f"{x:.2f}" for x in grid],
            {f"delta={d}": list(np.round(result.join[d].hops, 2)) for d in DELTAS},
            title=f"Fig. 3a -- analytical average join latency (hops), N={n_peers}",
        ),
        "",
        format_series(
            "p_s",
            [f"{x:.2f}" for x in grid],
            {f"delta={d}": list(np.round(result.lookup[d].hops, 2)) for d in DELTAS},
            title=f"Fig. 3b -- analytical average lookup latency (hops), N={n_peers}",
        ),
        "",
        "join-latency optima: "
        + ", ".join(
            f"delta={d}: p_s*={result.optimal_ps(d):.2f}" for d in DELTAS
        ),
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(main())
