"""Extension experiment: hybrid vs pure Chord vs pure Gnutella.

The paper frames the hybrid design as interpolating between the two
pure architectures and compares against them *implicitly* (its own
p_s = 0 / p_s = 1 endpoints).  This experiment makes the comparison
explicit by running the same workload through the standalone baselines
(:mod:`repro.baselines`) and the hybrid system on the same physical
topology, reporting the three axes the introduction argues about:

* **accuracy** -- lookup failure ratio for keys that exist;
* **cost** -- peers contacted per lookup;
* **flexibility** -- maintenance effort per membership change
  (stabilization hops for Chord, link updates for Gnutella, control
  messages for the hybrid).

Expected outcome (the paper's thesis): Chord is accurate but expensive
to maintain; Gnutella is cheap to maintain but inaccurate at bounded
TTL; the hybrid at p_s ~ 0.7 is accurate *and* cheap to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..baselines.chord import ChordNetwork
from ..baselines.gnutella import GnutellaNetwork
from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.report import format_table
from ..net.routing import Router
from ..net.topology import config_for_size, generate_transit_stub
from ..overlay.idspace import IdSpace

__all__ = ["SystemScore", "run", "main"]


@dataclass(frozen=True)
class SystemScore:
    """One architecture's results on the common workload."""

    name: str
    failure_ratio: float
    contacts_per_lookup: float
    maintenance_per_event: float


def _common_substrate(n_peers: int, seed: int):
    rng = np.random.default_rng(seed)
    topology = generate_transit_stub(config_for_size(n_peers + 1), rng)
    return topology, Router(topology)


def _score_chord(
    n_peers: int, n_keys: int, n_lookups: int, churn: int, seed: int, router
) -> SystemScore:
    net = ChordNetwork(
        IdSpace(32),
        np.random.default_rng(seed),
        router=router,
        hosts=list(range(router.n)),
    )
    for _ in range(n_peers):
        net.join()
    net.stabilize()
    ids = [n.node_id for n in net.nodes.values() if n.alive]
    for i in range(n_keys):
        net.store(ids[i % len(ids)], f"k{i}", i)
    hops = []
    found = 0
    rng = np.random.default_rng(seed + 1)
    for i in range(n_lookups):
        origin = ids[int(rng.integers(0, len(ids)))]
        result = net.lookup(origin, f"k{i % n_keys}")
        hops.append(result.hops)
        found += result.found
    # Maintenance: alternate joins/graceful leaves, stabilizing after
    # each, and charge the stabilization + routing hops.
    before = net.total_maintenance_hops
    for i in range(churn):
        if i % 2 == 0:
            net.join()
        else:
            alive = [n.node_id for n in net.nodes.values() if n.alive]
            net.leave(int(rng.integers(0, len(alive))))
        net.stabilize()
    maintenance = (net.total_maintenance_hops - before) / max(1, churn)
    return SystemScore(
        name="chord",
        failure_ratio=1 - found / n_lookups,
        contacts_per_lookup=float(np.mean(hops)),
        maintenance_per_event=maintenance,
    )


def _score_gnutella(
    n_peers: int, n_keys: int, n_lookups: int, churn: int, seed: int, router, ttl: int
) -> SystemScore:
    net = GnutellaNetwork(
        np.random.default_rng(seed),
        links_per_join=3,
        router=router,
        hosts=list(range(router.n)),
    )
    for _ in range(n_peers):
        net.join()
    ids = [p.peer_id for p in net.peers.values() if p.alive]
    for i in range(n_keys):
        net.store(ids[i % len(ids)], f"k{i}", i)
    rng = np.random.default_rng(seed + 1)
    contacts, found = [], 0
    for i in range(n_lookups):
        origin = ids[int(rng.integers(0, len(ids)))]
        result = net.lookup(origin, f"k{i % n_keys}", ttl=ttl)
        contacts.append(result.contacts + result.duplicates)
        found += result.found
    # Maintenance: a join touches links_per_join peers; a leave notifies
    # each neighbor once.
    events = []
    for i in range(churn):
        if i % 2 == 0:
            peer = net.join()
            events.append(len(peer.neighbors))
        else:
            alive = [p.peer_id for p in net.peers.values() if p.alive]
            victim = int(rng.integers(0, len(alive)))
            events.append(len(net.peers[alive[victim]].neighbors))
            net.leave(alive[victim])
    return SystemScore(
        name=f"gnutella (ttl={ttl})",
        failure_ratio=1 - found / n_lookups,
        contacts_per_lookup=float(np.mean(contacts)),
        maintenance_per_event=float(np.mean(events)) if events else 0.0,
    )


def _score_hybrid(
    n_peers: int, n_keys: int, n_lookups: int, churn: int, seed: int,
    topology, p_s: float, ttl: int,
) -> SystemScore:
    system = HybridSystem(
        HybridConfig(p_s=p_s, ttl=ttl), n_peers=n_peers, seed=seed,
        topology=topology,
    )
    system.build()
    peers = [p.address for p in system.alive_peers()]
    system.populate([(peers[i % len(peers)], f"k{i}", i) for i in range(n_keys)])
    rng = system.rngs.stream("comparison")
    pairs = [
        (int(peers[int(rng.integers(0, len(peers)))]), f"k{i % n_keys}")
        for i in range(n_lookups)
    ]
    system.run_lookups(pairs)
    stats = system.query_stats()
    before = system.transport.messages_sent
    for i in range(churn):
        if i % 2 == 0:
            system.add_peer()
        else:
            alive = [p.address for p in system.alive_peers()]
            system.leave_peers([int(alive[int(rng.integers(0, len(alive)))])])
        system.engine.run()
    maintenance = (system.transport.messages_sent - before) / max(1, churn)
    return SystemScore(
        name=f"hybrid (p_s={p_s})",
        failure_ratio=stats.failure_ratio,
        contacts_per_lookup=stats.mean_contacts_per_lookup,
        maintenance_per_event=maintenance,
    )


def _score_one(task: tuple) -> SystemScore:
    """Dispatch one architecture's scoring run (picklable work unit)."""
    kind, args = task
    scorer = {
        "chord": _score_chord,
        "gnutella": _score_gnutella,
        "hybrid": _score_hybrid,
    }[kind]
    return scorer(*args)


def run(
    n_peers: int = 100,
    n_keys: int = 300,
    n_lookups: int = 300,
    churn: int = 20,
    seed: int = 0,
    ttl: int = 4,
    hybrid_ps: float = 0.7,
    executor: CellExecutor | None = None,
) -> Dict[str, SystemScore]:
    """Score the three architectures on a common substrate/workload."""
    executor = executor or CellExecutor.serial()
    topology, router = _common_substrate(n_peers, seed)
    tasks = [
        ("chord", (n_peers, n_keys, n_lookups, churn, seed, router)),
        ("gnutella", (n_peers, n_keys, n_lookups, churn, seed, router, ttl)),
        ("hybrid", (n_peers, n_keys, n_lookups, churn, seed, topology, hybrid_ps, ttl)),
    ]
    scores = executor.map_fn(_score_one, tasks, tag="comparison")
    return {s.name: s for s in scores}


def main(
    n_peers: int = 100, seed: int = 0, executor: CellExecutor | None = None
) -> str:
    scores = run(n_peers=n_peers, seed=seed, executor=executor)
    rows = [
        [
            s.name,
            f"{s.failure_ratio:.3f}",
            f"{s.contacts_per_lookup:.1f}",
            f"{s.maintenance_per_event:.1f}",
        ]
        for s in scores.values()
    ]
    return format_table(
        ["system", "failure", "contacts/lookup", "maintenance/event"],
        rows,
        title=f"Extension -- architecture comparison (N={n_peers})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
