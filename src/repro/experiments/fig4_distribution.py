"""Figure 4: PDF of data items per peer, placement scheme 1 vs 2.

The paper inserts data into 1,000-peer systems at p_s in {0, 0.4, 0.9}
and plots the per-peer item-count PDF for both placement schemes.  The
headline observations to reproduce:

* scheme 1 ("direct"): at high p_s almost all data piles onto the few
  t-peers -- 85% of peers hold nothing at p_s = 0.9, max > 500;
* scheme 2 ("spread"): the zero-item fraction collapses (12% in the
  paper's Fig. 4f) and loads flatten;
* at small p_s the schemes coincide (t-peers are most of the system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.config import PLACEMENT_DIRECT, PLACEMENT_SPREAD, HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.distributions import DistributionSummary, items_pdf, summarize_distribution
from ..metrics.report import format_table
from ..workloads.keys import KeyWorkload
from .common import Scale

__all__ = ["Fig4Cell", "run", "main"]

PS_VALUES: Sequence[float] = (0.0, 0.4, 0.9)
SCHEMES: Sequence[str] = (PLACEMENT_DIRECT, PLACEMENT_SPREAD)


@dataclass
class Fig4Cell:
    """One panel of Fig. 4: a placement scheme at one p_s."""

    placement: str
    p_s: float
    counts: np.ndarray
    pdf: Tuple[np.ndarray, np.ndarray]
    summary: DistributionSummary


@dataclass(frozen=True)
class _PanelSpec:
    """Work unit of one panel (picklable across the process pool)."""

    placement: str
    p_s: float
    scale: Scale
    delta: int
    items_per_peer: int


def _panel_cell(spec: _PanelSpec) -> Fig4Cell:
    """Build one system, insert the workload, measure the distribution."""
    config = HybridConfig(p_s=spec.p_s, delta=spec.delta, placement=spec.placement)
    system = HybridSystem(config, n_peers=spec.scale.n_peers, seed=spec.scale.seed)
    system.build()
    addresses = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        spec.items_per_peer * spec.scale.n_peers,
        addresses,
        system.rngs.stream("workload"),
    )
    system.populate(workload.store_plan())
    counts = system.data_distribution()
    return Fig4Cell(
        placement=spec.placement,
        p_s=spec.p_s,
        counts=counts,
        pdf=items_pdf(counts),
        summary=summarize_distribution(counts),
    )


def run(
    scale: Scale,
    ps_values: Sequence[float] = PS_VALUES,
    delta: int = 3,
    items_per_peer: int = 20,
    executor: CellExecutor | None = None,
) -> Dict[Tuple[str, float], Fig4Cell]:
    """Measure one (scheme, p_s) placement panel per cell.

    ``items_per_peer`` matches the paper's density (Fig. 4a shows
    counts up to ~80 for 1,000 peers).
    """
    executor = executor or CellExecutor.serial()
    specs = [
        _PanelSpec(placement, p_s, scale, delta, items_per_peer)
        for placement in SCHEMES
        for p_s in ps_values
    ]
    panels = executor.map_fn(_panel_cell, specs, tag="fig4")
    return {(s.placement, s.p_s): cell for s, cell in zip(specs, panels)}


def main(scale: Scale | None = None, executor: CellExecutor | None = None) -> str:
    """Render the six panels' summary statistics as a table."""
    scale = scale or Scale.quick()
    cells = run(scale, executor=executor)
    rows = []
    for (placement, p_s), cell in sorted(cells.items()):
        s = cell.summary
        rows.append(
            [
                placement,
                f"{p_s:.1f}",
                s.total_items,
                f"{s.fraction_zero:.0%}",
                f"{s.fraction_below_20:.0%}",
                s.max,
                f"{s.gini:.3f}",
            ]
        )
    return format_table(
        ["scheme", "p_s", "items", "zero", "<20", "max", "gini"],
        rows,
        title=(
            "Fig. 4 -- data items per peer under the two placement schemes "
            f"(N={scale.n_peers})"
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
