"""Reproduction experiments: one module per paper table/figure.

* :mod:`~repro.experiments.fig3_analysis` -- Fig. 3a/3b (closed forms);
* :mod:`~repro.experiments.fig4_distribution` -- Fig. 4 (placement PDFs);
* :mod:`~repro.experiments.fig5_failure` -- Fig. 5a/5b (failure ratio);
* :mod:`~repro.experiments.fig6_latency` -- Fig. 6a/6b (latency and
  the heterogeneity/topology-awareness enhancements);
* :mod:`~repro.experiments.table2_connum` -- Table 2 (connum grid).

Shared sweep machinery lives in :mod:`~repro.experiments.common`; every
driver declares its cells up front and maps them through a
:class:`~repro.exec.CellExecutor` (``executor=`` parameter; pass one
configured with ``jobs > 1`` and a :class:`~repro.exec.CellCache` to
fan the grid out over worker processes with on-disk memoization -- see
EXPERIMENTS.md, "Running paper scale fast").  The benchmark suite under
``benchmarks/`` calls these drivers with ``Scale.quick()``, while
EXPERIMENTS.md records the larger runs.
"""

from .common import DEFAULT_PS_GRID, CellResult, Scale, run_cell

__all__ = ["DEFAULT_PS_GRID", "CellResult", "Scale", "run_cell"]
