"""Extension experiment: durable replication vs crash-induced data loss.

Fig. 5b shows the paper's single-copy design loses exactly the crashed
fraction of its data.  This extension routes storage through the
``repro.replica`` durability protocol -- each owner t-peer replicates
its segment to the next ``k-1`` t-peers on the ring, anti-entropy
repairs divergence, and §4 crash detection promotes the first live
successor to serve the crashed segment from its replica store.  A
lookup then fails only when the owner *and* every chained successor
crashed before repair, so the failure ratio drops from ~f toward ~f^k
(attenuated by ring-adjacent placement: consecutive t-peers crashing
together wipes a whole chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.report import format_grid
from ..workloads.keys import KeyWorkload

__all__ = ["ReplicationCell", "run", "main"]

FACTORS: Sequence[int] = (1, 2, 3)
FRACTIONS: Sequence[float] = (0.1, 0.2, 0.3)


@dataclass(frozen=True)
class ReplicationCell:
    """Failure ratio for one (replication factor, crash fraction).

    ``stored_copies`` counts every durable copy in the system before
    the crash: primary items at their owner t-peers plus the replica
    copies held by successor chains (so ~``k`` x item count at
    ``replication_factor=k``).
    """

    factor: int
    crash_fraction: float
    failure_ratio: float
    stored_copies: int


def _replication_cell(args: tuple) -> ReplicationCell:
    """Measure one (replication factor, crash fraction) cell."""
    factor, fraction, n_peers, n_keys, n_lookups, p_s, seed = args
    config = HybridConfig(
        p_s=p_s,
        ttl=8,
        heartbeats_enabled=True,
        lookup_timeout=20_000.0,
        replication_factor=factor,
        # Anti-entropy on, so surviving successors repair their chains
        # during the post-crash settle window (inert at factor=1).
        replica_sync_period=5_000.0 if factor > 1 else 0.0,
    )
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(n_keys, peers, system.rngs.stream("workload"))
    system.populate(workload.store_plan())
    copies = system.total_items() + system.total_replicas()
    system.crash_random_fraction(fraction)
    system.settle(40_000.0)
    alive = [p.address for p in system.alive_peers()]
    system.run_lookups(workload.sample_lookups(n_lookups, alive))
    return ReplicationCell(
        factor=factor,
        crash_fraction=fraction,
        failure_ratio=system.query_stats().failure_ratio,
        stored_copies=copies,
    )


def run(
    n_peers: int = 80,
    n_keys: int = 240,
    n_lookups: int = 240,
    factors: Sequence[int] = FACTORS,
    fractions: Sequence[float] = FRACTIONS,
    p_s: float = 0.7,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> Dict[tuple, ReplicationCell]:
    executor = executor or CellExecutor.serial()
    keys = [(factor, fraction) for factor in factors for fraction in fractions]
    tasks = [
        (factor, fraction, n_peers, n_keys, n_lookups, p_s, seed)
        for factor, fraction in keys
    ]
    cells = executor.map_fn(_replication_cell, tasks, tag="replication")
    return {key: cell for key, cell in zip(keys, cells)}


def main(n_peers: int = 80, executor: CellExecutor | None = None) -> str:
    cells = run(n_peers=n_peers, executor=executor)
    grid = {
        f"k={k}": {
            f"crash={f:.1f}": f"{cells[(k, f)].failure_ratio:.3f}"
            for f in FRACTIONS
        }
        for k in FACTORS
    }
    return format_grid(
        "replicas",
        [f"k={k}" for k in FACTORS],
        "",
        [f"crash={f:.1f}" for f in FRACTIONS],
        grid,
        title=f"Extension -- replication vs crash loss (N={n_peers}, p_s=0.7)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
