"""Shared experiment machinery.

Every reproduction experiment is a parameter sweep over the system
parameter ``p_s`` (and one more axis: TTL, crash fraction, an
enhancement toggle...).  :class:`Scale` fixes the workload size --
``Scale.paper()`` matches the paper's setup (1,000 peers), while
``Scale.quick()`` is the CI/benchmark size that preserves every
qualitative shape at a fraction of the cost.  :func:`run_cell` executes
one cell of a sweep and returns the standard metric bundle.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional, Sequence

from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..workloads.keys import KeyWorkload

__all__ = ["Scale", "CellResult", "run_cell", "DEFAULT_PS_GRID"]

# The paper sweeps p_s from 0 to 1; 0.99 stands in for the pure-
# unstructured endpoint (p_s = 1 has no t-network to anchor s-networks,
# the degenerate case the paper plots as "Gnutella").
DEFAULT_PS_GRID: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class Scale:
    """Workload size of one experiment run.

    ``bulk_build`` selects :meth:`HybridSystem.build_bulk` -- direct
    O(n log n) construction of the joined state instead of replaying
    every join through the message protocol (O(n_t^2) events).  Results
    at a given seed are deterministic either way, but not comparable
    *across* the two build paths, so the large presets that need it set
    it explicitly and the golden-baselined small scales leave it off.
    """

    n_peers: int
    n_keys: int
    n_lookups: int
    seed: int = 0
    wave_size: int = 200
    bulk_build: bool = False

    @classmethod
    def paper(cls, seed: int = 0) -> "Scale":
        """The paper's setup: 1,000-node topologies."""
        return cls(n_peers=1000, n_keys=5000, n_lookups=5000, seed=seed)

    @classmethod
    def medium(cls, seed: int = 0) -> "Scale":
        """Laptop-minutes scale; shapes match the paper run."""
        return cls(n_peers=300, n_keys=1200, n_lookups=1200, seed=seed)

    @classmethod
    def quick(cls, seed: int = 0) -> "Scale":
        """CI/benchmark scale (seconds per cell)."""
        return cls(n_peers=120, n_keys=400, n_lookups=400, seed=seed)

    @classmethod
    def large(cls, seed: int = 0) -> "Scale":
        """10^5 peers: the first point past the paper's reach.

        Requires the bulk build; pair with ``shards > 1`` (see
        :mod:`repro.shard`) to spread the lookup phase across cores.
        """
        return cls(
            n_peers=100_000, n_keys=20_000, n_lookups=5_000,
            seed=seed, wave_size=500, bulk_build=True,
        )

    @classmethod
    def huge(cls, seed: int = 0) -> "Scale":
        """10^6 peers: the paper's "millions of users", literally."""
        return cls(
            n_peers=1_000_000, n_keys=50_000, n_lookups=10_000,
            seed=seed, wave_size=1000, bulk_build=True,
        )

    def with_seed(self, seed: int) -> "Scale":
        return replace(self, seed=seed)


@dataclass(frozen=True)
class CellResult:
    """Metrics of one sweep cell."""

    p_s: float
    failure_ratio: float
    mean_latency: float
    median_latency: float
    connum: int
    mean_contacts: float
    successes: int
    failures: int
    n_t_peers: int
    n_s_peers: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; floats survive exactly (repr round-trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        """Inverse of :meth:`to_dict`; rejects missing/unknown keys.

        Strictness is what lets the cell cache treat any schema drift
        as a miss instead of resurrecting a result with silently
        defaulted fields.
        """
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown CellResult fields: {sorted(unknown)}")
        missing = names - set(data)
        if missing:
            raise ValueError(f"missing CellResult fields: {sorted(missing)}")
        return cls(**data)


def run_cell(
    config: HybridConfig,
    scale: Scale,
    crash_fraction: float = 0.0,
    settle_after_crash: float = 30_000.0,
    system_out: Optional[Dict[str, HybridSystem]] = None,
    shards: int = 1,
    shard_backend: Optional[str] = None,
    shards_strict: Optional[bool] = None,
) -> CellResult:
    """Build + populate + (crash) + look up; return the metric bundle.

    ``system_out["system"]`` receives the built system when a dict is
    passed, for experiments that need to inspect more than the bundle.
    With ``shards > 1`` the cell executes on the sharded substrate
    (:mod:`repro.shard`) -- bit-identical metrics, workers in parallel;
    ``system_out`` then receives the shard diagnostics under
    ``"shard_info"`` instead of a system object.  ``shard_backend``
    picks the cross-shard transport (pipe/shm); ``shards_strict``
    (or ``REPRO_SHARDS_STRICT``) turns the silent single-process
    fallback for unshardable configs into a raised ValueError.
    """
    if shards > 1:
        from ..shard import (
            check_shardable,
            resolve_shards_strict,
            run_cell_sharded,
        )

        try:
            check_shardable(config)
        except ValueError as exc:
            # Sweep-wide shard settings (--shards / REPRO_SHARDS) must not
            # break cells the sharded substrate cannot host (heartbeats,
            # replication, walks): fall back to the single-process path,
            # which is bit-identical anyway.  The fallback is loud --
            # the warning names the offending config fields -- and
            # strict mode forbids it outright.
            if resolve_shards_strict(shards_strict):
                raise
            logging.getLogger("repro.shard").warning(
                "cell is not shardable (%s); falling back to "
                "single-process execution", exc,
            )
            shards = 1
        else:
            info: Dict[str, object] = {}
            result = run_cell_sharded(
                config, scale, crash_fraction, settle_after_crash,
                shards=shards,
                backend=shard_backend,
                info_out=info if system_out is not None else None,
            )
            if system_out is not None:
                system_out["shard_info"] = info
            return result
    system = HybridSystem(config, n_peers=scale.n_peers, seed=scale.seed)
    if scale.bulk_build:
        system.build_bulk()
    else:
        system.build()
    addresses = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        scale.n_keys, addresses, system.rngs.stream("workload")
    )
    system.populate(workload.store_plan())
    if crash_fraction > 0.0:
        system.crash_random_fraction(crash_fraction)
        system.settle(settle_after_crash)
    alive = [p.address for p in system.alive_peers()]
    pairs = workload.sample_lookups(scale.n_lookups, alive)
    system.run_lookups(pairs, wave_size=scale.wave_size)
    stats = system.query_stats()
    if system_out is not None:
        system_out["system"] = system
    return CellResult(
        p_s=config.p_s,
        failure_ratio=stats.failure_ratio,
        mean_latency=stats.mean_latency,
        median_latency=stats.median_latency,
        connum=stats.connum,
        mean_contacts=stats.mean_contacts_per_lookup,
        successes=stats.successes,
        failures=stats.failures,
        n_t_peers=len(system.t_peers()),
        n_s_peers=len(system.s_peers()),
    )
