"""Table 2: total *connum* under different p_s and TTL values.

connum is "the number of peers all the data lookup requests contact
during the simulation" -- a bandwidth proxy.  Expected shape
(Section 6.3):

* connum falls roughly linearly as p_s grows (the ring leg, which is
  proportional to the t-peer count, dominates);
* at p_s = 0.9 connum is ~10% of the structured endpoint;
* TTL only matters at high p_s, and then only slightly (larger TTL ->
  slightly larger connum).

The paper's absolute numbers (4.88M at p_s = 0) come from ~10k lookups
over 1,000 peers with linear ring forwarding; scaled-down runs keep the
shape because every term is linear in lookups x peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import HybridConfig
from ..exec import CellExecutor, CellSpec
from ..metrics.report import format_grid
from .common import CellResult, Scale

__all__ = ["Table2Result", "run", "main"]

TTLS: Sequence[int] = (1, 2, 4)
PS_GRID: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class Table2Result:
    """connum indexed [p_s][ttl]."""

    cells: Dict[float, Dict[int, CellResult]]

    def connum(self, p_s: float, ttl: int) -> int:
        return self.cells[p_s][ttl].connum


def run(
    scale: Scale,
    ps_values: Sequence[float] = PS_GRID,
    ttls: Sequence[int] = TTLS,
    delta: int = 3,
    executor: CellExecutor | None = None,
) -> Table2Result:
    """Sweep (p_s, TTL) with linear ring forwarding (the paper's mode)."""
    executor = executor or CellExecutor.serial()
    keys = [(p_s, ttl) for p_s in ps_values for ttl in ttls]
    specs = [
        CellSpec(
            HybridConfig(p_s=p_s, delta=delta, ttl=ttl, ring_routing="linear"),
            scale,
            tag="table2",
        )
        for p_s, ttl in keys
    ]
    cells: Dict[float, Dict[int, CellResult]] = {}
    for (p_s, ttl), cell in zip(keys, executor.map(specs)):
        cells.setdefault(p_s, {})[ttl] = cell
    return Table2Result(cells=cells)


def main(
    scale: Scale | None = None,
    ps_values: Sequence[float] = PS_GRID,
    executor: CellExecutor | None = None,
) -> str:
    scale = scale or Scale.quick()
    result = run(scale, ps_values=ps_values, executor=executor)
    grid = {
        f"{ps:.1f}": {f"TTL={t}": result.connum(ps, t) for t in TTLS}
        for ps in ps_values
    }
    return format_grid(
        "p_s",
        [f"{ps:.1f}" for ps in ps_values],
        "",
        [f"TTL={t}" for t in TTLS],
        grid,
        title=(
            f"Table 2 -- total connum, N={scale.n_peers}, "
            f"{scale.n_lookups} lookups"
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
