"""Figure 6: average lookup latency and the Section 5 enhancements.

Panel (a): latency vs p_s, with and without link-heterogeneity
consideration (Section 5.1).  Expected: latency decreases in p_s
(fewer t-peers on the ring leg), and the heterogeneity-aware variant
sits below the base curve, most visibly for p_s in [0.4, 0.8] (the
paper quotes ~20% at p_s = 0.7).

Panel (b): latency vs p_s, basic vs topology-aware binning with 8 and
12 landmarks (Section 5.2).  Expected: identical at p_s = 0, the
binned curves drop faster as p_s grows, more landmarks help more, and
all curves converge by p_s ~ 0.9 (many small s-networks are already
physically local).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import ASSIGN_BALANCED, ASSIGN_BINNED, HybridConfig
from ..exec import CellExecutor, CellSpec
from ..metrics.report import format_series
from .common import CellResult, Scale

__all__ = ["Fig6aResult", "Fig6bResult", "run_6a", "run_6b", "main"]

PS_GRID: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)
LANDMARK_COUNTS: Sequence[int] = (8, 12)


@dataclass
class Fig6aResult:
    """latency indexed [variant][p_s]; variants 'base', 'hetero'."""

    cells: Dict[str, Dict[float, CellResult]]

    def latency(self, variant: str, p_s: float) -> float:
        return self.cells[variant][p_s].mean_latency


@dataclass
class Fig6bResult:
    """latency indexed [variant][p_s]; variants 'base', 'bin8', 'bin12'."""

    cells: Dict[str, Dict[float, CellResult]]

    def latency(self, variant: str, p_s: float) -> float:
        return self.cells[variant][p_s].mean_latency


def run_6a(
    scale: Scale,
    ps_values: Sequence[float] = PS_GRID,
    delta: int = 3,
    ttl: int = 4,
    executor: CellExecutor | None = None,
) -> Fig6aResult:
    """With/without heterogeneity-aware role assignment + connect points."""
    executor = executor or CellExecutor.serial()
    keys = []
    specs = []
    for p_s in ps_values:
        base = HybridConfig(p_s=p_s, delta=delta, ttl=ttl)
        hetero = base.with_changes(
            heterogeneity_aware=True, connect_policy="link_usage"
        )
        keys += [("base", p_s), ("hetero", p_s)]
        specs += [
            CellSpec(base, scale, tag="fig6a"),
            CellSpec(hetero, scale, tag="fig6a"),
        ]
    cells: Dict[str, Dict[float, CellResult]] = {"base": {}, "hetero": {}}
    for (variant, p_s), cell in zip(keys, executor.map(specs)):
        cells[variant][p_s] = cell
    return Fig6aResult(cells=cells)


def run_6b(
    scale: Scale,
    ps_values: Sequence[float] = PS_GRID,
    landmark_counts: Sequence[int] = LANDMARK_COUNTS,
    delta: int = 3,
    ttl: int = 4,
    executor: CellExecutor | None = None,
) -> Fig6bResult:
    """Basic vs landmark-binned s-network assignment."""
    executor = executor or CellExecutor.serial()
    keys = []
    specs = []
    for p_s in ps_values:
        base = HybridConfig(p_s=p_s, delta=delta, ttl=ttl, assignment=ASSIGN_BALANCED)
        keys.append(("base", p_s))
        specs.append(CellSpec(base, scale, tag="fig6b"))
        for n in landmark_counts:
            binned = base.with_changes(assignment=ASSIGN_BINNED, n_landmarks=n)
            keys.append((f"bin{n}", p_s))
            specs.append(CellSpec(binned, scale, tag="fig6b"))
    cells: Dict[str, Dict[float, CellResult]] = {"base": {}}
    for n in landmark_counts:
        cells[f"bin{n}"] = {}
    for (variant, p_s), cell in zip(keys, executor.map(specs)):
        cells[variant][p_s] = cell
    return Fig6bResult(cells=cells)


def main(scale: Scale | None = None, executor: CellExecutor | None = None) -> str:
    scale = scale or Scale.quick()
    a = run_6a(scale, executor=executor)
    b = run_6b(scale, executor=executor)
    xs = [f"{ps:.1f}" for ps in PS_GRID]
    parts = [
        format_series(
            "p_s", xs,
            {
                "base": [f"{a.latency('base', ps):.0f}" for ps in PS_GRID],
                "heterogeneity": [f"{a.latency('hetero', ps):.0f}" for ps in PS_GRID],
            },
            title=f"Fig. 6a -- mean lookup latency, ms (N={scale.n_peers})",
        ),
        "",
        format_series(
            "p_s", xs,
            {
                "base": [f"{b.latency('base', ps):.0f}" for ps in PS_GRID],
                **{
                    f"{n} landmarks": [
                        f"{b.latency(f'bin{n}', ps):.0f}" for ps in PS_GRID
                    ]
                    for n in LANDMARK_COUNTS
                },
            },
            title=f"Fig. 6b -- mean lookup latency, ms (N={scale.n_peers})",
        ),
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(main())
