"""Extension experiment: service quality under *sustained* churn.

The paper's churn experiment (Fig. 5b) is a single batch of crashes.
Measurement studies it cites [refs 21, 22] show real systems churn
continuously, so this experiment drives Poisson joins and exponential
lifetimes *while* the lookup workload runs and reports how the hybrid
degrades with the churn intensity.

Expected: failure ratio grows with churn rate (data dies with crashed
peers faster than the repair machinery can matter -- the system has no
replication), but the topology invariants hold throughout and graceful
departures cost nothing (their data is handed over).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.report import format_table
from ..workloads.churn import PoissonChurn, apply_churn
from ..workloads.keys import KeyWorkload

__all__ = ["ChurnCell", "run", "main"]

# Mean lifetimes in ms; smaller = harsher churn.
LIFETIMES: Sequence[float] = (600_000.0, 240_000.0, 120_000.0)


@dataclass(frozen=True)
class ChurnCell:
    """Outcome of one churn intensity."""

    mean_lifetime: float
    crash_probability: float
    joins: int
    departures: int
    failure_ratio: float
    mean_latency: float

    @property
    def label(self) -> str:
        return f"{self.mean_lifetime / 1000:.0f}s"


def _churn_cell(args: tuple) -> ChurnCell:
    """Run one churn intensity end to end."""
    lifetime, n_peers, n_keys, n_lookups, churn_window, crash_probability, seed = args
    config = HybridConfig(
        p_s=0.7,
        ttl=6,
        heartbeats_enabled=True,
        lookup_timeout=20_000.0,
    )
    system = HybridSystem(config, n_peers=n_peers, seed=seed)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(n_keys, peers, system.rngs.stream("workload"))
    system.populate(workload.store_plan())
    churn = PoissonChurn(
        join_rate=n_peers / (2.0 * lifetime),  # roughly steady population
        mean_lifetime=lifetime,
        crash_probability=crash_probability,
    )
    events = churn.generate(
        churn_window, existing=peers, rng=system.rngs.stream("churn-schedule")
    )
    joins, leaves, crashes = apply_churn(system, events)
    system.settle(30_000.0)  # let repairs finish before measuring
    alive = [p.address for p in system.alive_peers()]
    system.run_lookups(workload.sample_lookups(n_lookups, alive))
    stats = system.query_stats()
    return ChurnCell(
        mean_lifetime=lifetime,
        crash_probability=crash_probability,
        joins=joins,
        departures=leaves + crashes,
        failure_ratio=stats.failure_ratio,
        mean_latency=stats.mean_latency,
    )


def run(
    n_peers: int = 80,
    n_keys: int = 240,
    n_lookups: int = 240,
    lifetimes: Sequence[float] = LIFETIMES,
    churn_window: float = 60_000.0,
    crash_probability: float = 0.5,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> Dict[float, ChurnCell]:
    """One cell per churn intensity (mean peer lifetime)."""
    executor = executor or CellExecutor.serial()
    tasks = [
        (lifetime, n_peers, n_keys, n_lookups, churn_window, crash_probability, seed)
        for lifetime in lifetimes
    ]
    cells = executor.map_fn(_churn_cell, tasks, tag="churn")
    return {lifetime: cell for lifetime, cell in zip(lifetimes, cells)}


def main(n_peers: int = 80, executor: CellExecutor | None = None) -> str:
    cells = run(n_peers=n_peers, executor=executor)
    rows = [
        [
            cell.label,
            cell.joins,
            cell.departures,
            f"{cell.failure_ratio:.3f}",
            f"{cell.mean_latency:.0f}",
        ]
        for cell in cells.values()
    ]
    return format_table(
        ["mean lifetime", "joins", "departures", "failure", "latency (ms)"],
        rows,
        title=(
            f"Extension -- sustained churn over a 60 s window "
            f"(N={n_peers}, p_s=0.7, 50% crashes)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
