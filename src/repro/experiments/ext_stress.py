"""Extension experiment: physical link stress, basic vs binned.

Section 5.2 motivates topology awareness through *link stress* -- "the
number of copies of a message transmitted over a certain physical
link" -- but Fig. 6b only reports latency.  This experiment measures
the stress itself: run the same workload with and without landmark
binning and compare the per-physical-link transmission counts.

Expected: binning co-locates s-networks with their members, so intra-
s-network traffic (floods, join walks, heartbeats) stops criss-crossing
the backbone; total transmissions and the hot-link maximum both drop at
mid-to-high p_s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.config import ASSIGN_BALANCED, ASSIGN_BINNED, HybridConfig
from ..core.hybrid import HybridSystem
from ..exec import CellExecutor
from ..metrics.report import format_table
from ..net.stress import StressSummary
from ..workloads.keys import KeyWorkload

__all__ = ["StressCell", "run", "main"]

PS_GRID: Sequence[float] = (0.4, 0.7, 0.9)


@dataclass(frozen=True)
class StressCell:
    """Link-stress outcome of one configuration."""

    p_s: float
    variant: str  # "base" | "binned"
    summary: StressSummary
    lookups: int

    @property
    def transmissions_per_lookup(self) -> float:
        return self.summary.total_transmissions / max(1, self.lookups)


def _stress_cell(args: tuple) -> StressCell:
    """Run one (p_s, variant) workload with link-stress tracking on."""
    p_s, variant, n_peers, n_keys, n_lookups, n_landmarks, seed = args
    config = HybridConfig(
        p_s=p_s,
        assignment=ASSIGN_BINNED if variant == "binned" else ASSIGN_BALANCED,
        n_landmarks=n_landmarks if variant == "binned" else 0,
    )
    system = HybridSystem(config, n_peers=n_peers, seed=seed, track_stress=True)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(n_keys, peers, system.rngs.stream("workload"))
    system.populate(workload.store_plan())
    # Only lookup traffic counts toward the comparison.
    system.stress.reset()
    system.run_lookups(workload.sample_lookups(n_lookups, peers))
    return StressCell(
        p_s=p_s,
        variant=variant,
        summary=system.stress.summary(),
        lookups=n_lookups,
    )


def run(
    n_peers: int = 100,
    n_keys: int = 300,
    n_lookups: int = 300,
    ps_values: Sequence[float] = PS_GRID,
    n_landmarks: int = 8,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> Dict[tuple, StressCell]:
    """Measure link stress for (p_s, variant) cells."""
    executor = executor or CellExecutor.serial()
    keys = [(p_s, variant) for p_s in ps_values for variant in ("base", "binned")]
    tasks = [
        (p_s, variant, n_peers, n_keys, n_lookups, n_landmarks, seed)
        for p_s, variant in keys
    ]
    cells = executor.map_fn(_stress_cell, tasks, tag="stress")
    return {key: cell for key, cell in zip(keys, cells)}


def main(
    n_peers: int = 100,
    ps_values: Sequence[float] = PS_GRID,
    executor: CellExecutor | None = None,
) -> str:
    cells = run(n_peers=n_peers, ps_values=ps_values, executor=executor)
    rows = []
    for p_s in ps_values:
        for variant in ("base", "binned"):
            cell = cells[(p_s, variant)]
            rows.append(
                [
                    f"{p_s:.1f}",
                    variant,
                    cell.summary.total_transmissions,
                    f"{cell.transmissions_per_lookup:.0f}",
                    cell.summary.max_stress,
                ]
            )
    return format_table(
        ["p_s", "variant", "transmissions", "per lookup", "hottest link"],
        rows,
        title=f"Extension -- physical link stress (Section 5.2), N={n_peers}",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
