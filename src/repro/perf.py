"""Performance instrumentation for the simulation substrate.

The reproduction's experiment sweeps are bounded by raw event-loop
throughput, so this module gives every driver a uniform way to answer
"how fast did that run, and where did the time go":

* :func:`measure` -- context manager that times a block and snapshots
  engine/transport counters into a :class:`PerfReport` (wall seconds,
  events executed, events/sec, messages by direction and -- optionally
  -- by message type via :meth:`Transport.enable_type_counts`).
* :func:`maybe_profile` -- cProfile hook gated on the ``REPRO_PROFILE=1``
  environment variable; zero overhead when the variable is unset, a
  sorted hot-spot table on stderr when it is.

``scripts/bench_perf.py`` builds on both to track the substrate against
the pre-optimisation baseline recorded in ``BENCH_substrate.json``.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from .overlay.transport import Transport
from .sim.engine import Engine

__all__ = [
    "PROFILE_ENV",
    "PROFILE_DIR_ENV",
    "PerfReport",
    "measure",
    "maybe_profile",
    "profiling_enabled",
    "rss_kb",
    "memory_info",
    "PhaseSampler",
]

#: Set this environment variable to ``1`` to wrap :func:`maybe_profile`
#: blocks in cProfile and dump the hottest functions on exit.
PROFILE_ENV = "REPRO_PROFILE"

#: When set (alongside ``REPRO_PROFILE=1``), each profiled block also
#: dumps binary pstats to ``$REPRO_PROFILE_DIR/profile<tag>.pstats`` --
#: one file per block, so the shard workers of a sharded run each leave
#: their own ``profile-shard<N>.pstats`` instead of vanishing into a
#: parent-only profile.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"


@dataclass
class PerfReport:
    """Counters harvested from one measured block.

    Populated by :func:`measure` when the ``with`` block exits; until
    then every field holds its zero value.
    """

    wall_seconds: float = 0.0
    events_executed: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    message_type_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by ``scripts/bench_perf.py``)."""
        return {
            "wall_seconds": self.wall_seconds,
            "events_executed": self.events_executed,
            "events_per_second": self.events_per_second,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "message_type_counts": dict(
                sorted(self.message_type_counts.items(), key=lambda kv: -kv[1])
            ),
        }


@contextmanager
def measure(
    engine: Engine,
    transport: Optional[Transport] = None,
    count_types: bool = False,
) -> Iterator[PerfReport]:
    """Time a block and snapshot substrate counters into a report.

    Counter fields are deltas across the block, so an engine/transport
    that already did work can be measured mid-life.  When
    ``count_types`` is true the transport's per-message-type accounting
    is switched on for the duration of the block (and restored after).
    """
    report = PerfReport()
    events0 = engine.events_executed
    if transport is not None:
        sent0 = transport.messages_sent
        delivered0 = transport.messages_delivered
        dropped0 = transport.messages_dropped
        types0 = dict(transport.message_type_counts)
        counting0 = transport._count_types
        if count_types:
            transport.enable_type_counts()
    start = time.perf_counter()
    try:
        yield report
    finally:
        report.wall_seconds = time.perf_counter() - start
        report.events_executed = engine.events_executed - events0
        if transport is not None:
            report.messages_sent = transport.messages_sent - sent0
            report.messages_delivered = transport.messages_delivered - delivered0
            report.messages_dropped = transport.messages_dropped - dropped0
            report.message_type_counts = {
                name: count - types0.get(name, 0)
                for name, count in transport.message_type_counts.items()
                if count - types0.get(name, 0)
            }
            if count_types and not counting0:
                transport.disable_type_counts()


# ----------------------------------------------------------------------
# Memory sampling
# ----------------------------------------------------------------------
def rss_kb() -> int:
    """Current resident set size (VmRSS) in kB; 0 where unsupported.

    Sampled, not peak: ``ru_maxrss`` is useless for forked shard
    workers -- they inherit the parent's copy-on-write peak -- while a
    VmRSS sample taken after compaction reflects what the worker
    actually keeps resident.
    """
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def memory_info() -> Dict[str, int]:
    """Resident/proportional/private footprint of this process, in kB.

    ``pss_kb`` (proportional set size) is the honest per-process figure
    when several forked workers share copy-on-write pages with their
    parent: each shared page is charged ``1/n``-th to each mapper,
    so worker PSS values sum to the physical truth instead of counting
    the shared image once per worker the way VmRSS does.  All zeros
    where ``/proc`` is unavailable.
    """
    info = {"vm_rss_kb": rss_kb(), "pss_kb": 0, "private_kb": 0, "shared_kb": 0}
    try:
        with open("/proc/self/smaps_rollup", "rb") as fh:
            for line in fh:
                key, _, rest = line.partition(b":")
                if key == b"Pss":
                    info["pss_kb"] = int(rest.split()[0])
                elif key in (b"Private_Clean", b"Private_Dirty"):
                    info["private_kb"] += int(rest.split()[0])
                elif key in (b"Shared_Clean", b"Shared_Dirty"):
                    info["shared_kb"] += int(rest.split()[0])
    except OSError:
        pass
    return info


class PhaseSampler:
    """Per-phase wall/RSS/IPC trace of one run.

    ``mark(name)`` closes the phase that just ran: it records the wall
    seconds since the previous mark and a fresh memory sample, plus any
    caller-supplied counters (e.g. ``ipc_bytes``).  Drivers attach the
    resulting list to their diagnostics so a memory regression can be
    pinned to build/fork/lookup/merge instead of a run-wide peak.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.phases: list = []

    def mark(self, name: str, **extra: object) -> Dict[str, object]:
        now = time.perf_counter()
        sample: Dict[str, object] = {
            "phase": name,
            "wall_seconds": now - self._t0,
            "vm_rss_kb": rss_kb(),
        }
        sample.update(extra)
        self._t0 = now
        self.phases.append(sample)
        return sample

    def as_list(self) -> list:
        return list(self.phases)


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE=1`` is set in the environment."""
    return os.environ.get(PROFILE_ENV, "") == "1"


@contextmanager
def maybe_profile(
    sort: str = "tottime",
    limit: int = 25,
    stream=None,
    tag: str = "",
) -> Iterator[Optional[cProfile.Profile]]:
    """cProfile a block iff ``REPRO_PROFILE=1``; otherwise a no-op.

    Yields the active :class:`cProfile.Profile` (or None when disabled)
    and prints the ``limit`` hottest functions, sorted by ``sort``, to
    ``stream`` (default stderr) on exit.  ``tag`` labels the block in
    the printed header and in the per-block pstats file written when
    ``REPRO_PROFILE_DIR`` is set -- that is how each worker process of a
    sharded run leaves its own ``profile-shard<N>.pstats`` instead of
    only the parent getting profiled.
    """
    if not profiling_enabled():
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        dump_dir = os.environ.get(PROFILE_DIR_ENV, "")
        if dump_dir:
            os.makedirs(dump_dir, exist_ok=True)
            pstats.Stats(profiler).dump_stats(
                os.path.join(dump_dir, f"profile{tag}.pstats")
            )
        out = stream if stream is not None else sys.stderr
        if tag:
            print(f"--- profile {tag} ---", file=out)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort).print_stats(limit)
