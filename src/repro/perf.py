"""Performance instrumentation for the simulation substrate.

The reproduction's experiment sweeps are bounded by raw event-loop
throughput, so this module gives every driver a uniform way to answer
"how fast did that run, and where did the time go":

* :func:`measure` -- context manager that times a block and snapshots
  engine/transport counters into a :class:`PerfReport` (wall seconds,
  events executed, events/sec, messages by direction and -- optionally
  -- by message type via :meth:`Transport.enable_type_counts`).
* :func:`maybe_profile` -- cProfile hook gated on the ``REPRO_PROFILE=1``
  environment variable; zero overhead when the variable is unset, a
  sorted hot-spot table on stderr when it is.

``scripts/bench_perf.py`` builds on both to track the substrate against
the pre-optimisation baseline recorded in ``BENCH_substrate.json``.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from .overlay.transport import Transport
from .sim.engine import Engine

__all__ = [
    "PROFILE_ENV",
    "PROFILE_DIR_ENV",
    "PerfReport",
    "measure",
    "maybe_profile",
    "profiling_enabled",
]

#: Set this environment variable to ``1`` to wrap :func:`maybe_profile`
#: blocks in cProfile and dump the hottest functions on exit.
PROFILE_ENV = "REPRO_PROFILE"

#: When set (alongside ``REPRO_PROFILE=1``), each profiled block also
#: dumps binary pstats to ``$REPRO_PROFILE_DIR/profile<tag>.pstats`` --
#: one file per block, so the shard workers of a sharded run each leave
#: their own ``profile-shard<N>.pstats`` instead of vanishing into a
#: parent-only profile.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"


@dataclass
class PerfReport:
    """Counters harvested from one measured block.

    Populated by :func:`measure` when the ``with`` block exits; until
    then every field holds its zero value.
    """

    wall_seconds: float = 0.0
    events_executed: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    message_type_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by ``scripts/bench_perf.py``)."""
        return {
            "wall_seconds": self.wall_seconds,
            "events_executed": self.events_executed,
            "events_per_second": self.events_per_second,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "message_type_counts": dict(
                sorted(self.message_type_counts.items(), key=lambda kv: -kv[1])
            ),
        }


@contextmanager
def measure(
    engine: Engine,
    transport: Optional[Transport] = None,
    count_types: bool = False,
) -> Iterator[PerfReport]:
    """Time a block and snapshot substrate counters into a report.

    Counter fields are deltas across the block, so an engine/transport
    that already did work can be measured mid-life.  When
    ``count_types`` is true the transport's per-message-type accounting
    is switched on for the duration of the block (and restored after).
    """
    report = PerfReport()
    events0 = engine.events_executed
    if transport is not None:
        sent0 = transport.messages_sent
        delivered0 = transport.messages_delivered
        dropped0 = transport.messages_dropped
        types0 = dict(transport.message_type_counts)
        counting0 = transport._count_types
        if count_types:
            transport.enable_type_counts()
    start = time.perf_counter()
    try:
        yield report
    finally:
        report.wall_seconds = time.perf_counter() - start
        report.events_executed = engine.events_executed - events0
        if transport is not None:
            report.messages_sent = transport.messages_sent - sent0
            report.messages_delivered = transport.messages_delivered - delivered0
            report.messages_dropped = transport.messages_dropped - dropped0
            report.message_type_counts = {
                name: count - types0.get(name, 0)
                for name, count in transport.message_type_counts.items()
                if count - types0.get(name, 0)
            }
            if count_types and not counting0:
                transport.disable_type_counts()


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE=1`` is set in the environment."""
    return os.environ.get(PROFILE_ENV, "") == "1"


@contextmanager
def maybe_profile(
    sort: str = "tottime",
    limit: int = 25,
    stream=None,
    tag: str = "",
) -> Iterator[Optional[cProfile.Profile]]:
    """cProfile a block iff ``REPRO_PROFILE=1``; otherwise a no-op.

    Yields the active :class:`cProfile.Profile` (or None when disabled)
    and prints the ``limit`` hottest functions, sorted by ``sort``, to
    ``stream`` (default stderr) on exit.  ``tag`` labels the block in
    the printed header and in the per-block pstats file written when
    ``REPRO_PROFILE_DIR`` is set -- that is how each worker process of a
    sharded run leaves its own ``profile-shard<N>.pstats`` instead of
    only the parent getting profiled.
    """
    if not profiling_enabled():
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        dump_dir = os.environ.get(PROFILE_DIR_ENV, "")
        if dump_dir:
            os.makedirs(dump_dir, exist_ok=True)
            pstats.Stats(profiler).dump_stats(
                os.path.join(dump_dir, f"profile{tag}.pstats")
            )
        out = stream if stream is not None else sys.stderr
        if tag:
            print(f"--- profile {tag} ---", file=out)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats(sort).print_stats(limit)
