"""Generator-based processes on top of the event engine.

Most of the protocol code in this reproduction is written in plain
callback style, but longer scripted behaviours -- churn schedules,
workload drivers, multi-phase experiment scenarios -- read much better
as sequential coroutines.  :class:`Process` runs a generator that yields
delays (floats); the process resumes after each yielded delay elapses.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> log = []
>>> def script():
...     log.append(("start", eng.now))
...     yield 2.0
...     log.append(("mid", eng.now))
...     yield 3.0
...     log.append(("end", eng.now))
>>> p = Process(eng, script())
>>> eng.run()
>>> log
[('start', 0.0), ('mid', 2.0), ('end', 5.0)]
>>> p.finished
True
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import Engine, Event

__all__ = ["Process"]


class Process:
    """Drive a generator of delays on the engine.

    The generator may yield:

    * a non-negative ``float``/``int`` -- sleep that long, or
    * ``None`` -- yield control for zero time (reschedule immediately).

    The process starts immediately (its first segment runs at creation
    time, at the current simulated instant) unless ``start=False``.
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Any, None, None],
        start: bool = True,
    ) -> None:
        self._engine = engine
        self._gen = generator
        self._event: Optional[Event] = None
        self.finished = False
        self.failed: Optional[BaseException] = None
        if start:
            # Run the first segment at the current instant but *after*
            # whatever event is currently executing, keeping causality
            # simple for callers that create processes mid-event.
            self._event = engine.call_later(0.0, self._advance)

    @property
    def alive(self) -> bool:
        """True while the generator has more work scheduled."""
        return not self.finished and self.failed is None

    def interrupt(self) -> None:
        """Stop the process: close the generator, cancel its wakeup."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if not self.finished:
            self._gen.close()
            self.finished = True

    def _advance(self) -> None:
        self._event = None
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            return
        except BaseException as exc:  # surface script bugs loudly
            self.failed = exc
            self.finished = True
            raise
        if delay is None:
            delay = 0.0
        if delay < 0:
            self.failed = ValueError(f"process yielded negative delay {delay}")
            self.finished = True
            raise self.failed
        self._event = self._engine.call_later(float(delay), self._advance)
