"""Structured event tracing.

A lightweight publish/subscribe trace bus used by the protocol code to
announce interesting happenings (message sent, peer joined, lookup
failed, timer expired, ...).  Metrics collectors subscribe to the bus;
tests use it to assert on protocol behaviour without reaching into
private state.

Records are plain tuples ``(time, category, payload)`` where ``payload``
is a dict.  Tracing is off unless someone subscribes, so the hot path
costs a single attribute check.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, NamedTuple, Optional

__all__ = ["TraceRecord", "TraceBus"]


class TraceRecord(NamedTuple):
    """One trace event."""

    time: float
    category: str
    payload: Dict[str, Any]


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe bus for simulation trace events.

    Subscribers register per-category or for all categories (``"*"``).
    A built-in ring-buffer recorder can be enabled for debugging.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Subscriber]] = defaultdict(list)
        self._any_subs: List[Subscriber] = []
        self._record_buffer: Optional[List[TraceRecord]] = None
        self._record_categories: Optional[set] = None
        self.emitted = 0
        # Bumped whenever the set of listeners changes; hot-path
        # publishers cache their wants() answer against it.
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True if anyone is listening (publish is a no-op otherwise)."""
        return bool(self._subs) or bool(self._any_subs) or self._record_buffer is not None

    def wants(self, category: str) -> bool:
        """True if publishing ``category`` would reach any listener.

        Unlike :attr:`active` (bus-global), this is per-category: a bus
        with only a ``"data.stored"`` subscriber does not want
        ``"transport.send"`` records, so hot-path publishers can skip
        building the payload entirely.  Conservatively True while
        recording or when a wildcard subscriber is installed.
        """
        if self._any_subs or self._record_buffer is not None:
            return True
        return bool(self._subs.get(category))

    def subscribe(self, category: str, fn: Subscriber) -> None:
        """Register ``fn`` for records of ``category`` ("*" = all)."""
        if category == "*":
            self._any_subs.append(fn)
        else:
            self._subs[category].append(fn)
        self.version += 1

    def unsubscribe(self, category: str, fn: Subscriber) -> None:
        """Remove a subscriber; raises ValueError if absent."""
        if category == "*":
            self._any_subs.remove(fn)
        else:
            subs = self._subs[category]
            subs.remove(fn)
            if not subs:
                # Prune the empty list so ``active`` (truthiness of the
                # dict) goes back to False after the last listener
                # leaves -- otherwise publish keeps building records
                # nobody receives.
                del self._subs[category]
        self.version += 1

    # ------------------------------------------------------------------
    def start_recording(self, categories: Optional[List[str]] = None) -> None:
        """Begin buffering records (optionally only given categories)."""
        self._record_buffer = []
        self._record_categories = set(categories) if categories else None
        self.version += 1

    def stop_recording(self) -> List[TraceRecord]:
        """Stop buffering and return what was captured."""
        buf = self._record_buffer or []
        self._record_buffer = None
        self._record_categories = None
        self.version += 1
        return buf

    @property
    def records(self) -> List[TraceRecord]:
        """Records captured so far (empty when not recording)."""
        return list(self._record_buffer or [])

    # ------------------------------------------------------------------
    def publish(self, time: float, category: str, **payload: Any) -> None:
        """Emit one trace record to all interested parties."""
        if not self.active:
            return
        rec = TraceRecord(time, category, payload)
        self.emitted += 1
        if self._record_buffer is not None and (
            self._record_categories is None or category in self._record_categories
        ):
            self._record_buffer.append(rec)
        # Iterate over snapshots: a subscriber may unsubscribe itself
        # (or others) while handling the record, and list mutation
        # during iteration would silently skip the next subscriber.
        subs = self._subs.get(category)
        if subs:
            for fn in tuple(subs):
                fn(rec)
        if self._any_subs:
            for fn in tuple(self._any_subs):
                fn(rec)
