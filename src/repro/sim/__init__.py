"""Discrete-event simulation substrate.

Replaces the NS2 simulator used in the paper's evaluation: an event
heap with a simulated clock (:mod:`~repro.sim.engine`), resettable and
periodic timers (:mod:`~repro.sim.timers`), generator-based scripted
processes (:mod:`~repro.sim.process`), named deterministic RNG streams
(:mod:`~repro.sim.rng`), and a trace bus for metrics and tests
(:mod:`~repro.sim.trace`).
"""

from .engine import Engine, Event, SimulationError
from .process import Process
from .rng import RngRegistry, stable_hash32
from .timers import PeriodicTimer, Timer
from .trace import TraceBus, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "Process",
    "RngRegistry",
    "stable_hash32",
    "PeriodicTimer",
    "Timer",
    "TraceBus",
    "TraceRecord",
]
