"""Discrete-event simulation engine.

This module is the substrate that replaces NS2 in the original paper's
evaluation.  It provides a classic event-heap simulator: callbacks are
scheduled at absolute or relative simulated times and executed in
timestamp order.  Ties are broken by insertion order so that runs are
fully deterministic for a given seed.

The hot path is allocation-free beyond one tuple per event: the heap
holds plain ``(time, seq, fn, args)`` tuples, so ordering comparisons
are C-level tuple comparisons instead of Python ``__lt__`` calls.  Only
the *cancellable* minority of events (timers, heartbeats) allocates an
:class:`Event` handle; those ride the heap as ``(time, seq, None,
event)`` entries and are skipped lazily when popped after cancellation,
which keeps :meth:`Event.cancel` O(1).  A live-event counter makes
:attr:`Engine.pending_count` O(1) as well.

Two scheduling tiers:

* :meth:`Engine.schedule_at` / :meth:`Engine.schedule_after` /
  :meth:`Engine.schedule_batch` -- the fast fire-and-forget tier used
  for message delivery (no handle, not cancellable);
* :meth:`Engine.call_at` / :meth:`Engine.call_later` -- the handle tier
  for anything that may need :meth:`Event.cancel`.

Example
-------
>>> eng = Engine()
>>> hits = []
>>> _ = eng.call_at(5.0, hits.append, "b")
>>> _ = eng.call_later(1.0, hits.append, "a")
>>> eng.run()
>>> hits
['a', 'b']
>>> eng.now
5.0
"""

from __future__ import annotations

import heapq
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, Optional, Tuple

__all__ = ["Event", "Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is driven in an inconsistent way.

    Examples: scheduling an event in the past, or running a finished
    engine with ``strict=True``.
    """


class Event:
    """A scheduled, cancellable callback handle.

    Instances are returned by :meth:`Engine.call_at` /
    :meth:`Engine.call_later` and act as handles: holding one allows the
    caller to :meth:`cancel` the event before it fires.

    Attributes
    ----------
    time:
        Absolute simulated time at which the event fires.
    seq:
        Monotone sequence number used to break ties deterministically.
    fn:
        The callback; ``None`` once the event fired or was cancelled.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled", "_engine")

    def __init__(
        self,
        engine: "Engine",
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self._engine = engine
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.

        Idempotent, and a true no-op on an event that already fired
        (including from inside its own callback): the handle keeps its
        "fired" state -- ``cancelled`` stays False -- instead of
        retroactively claiming the callback never ran.
        """
        if self.cancelled or self.fn is None:
            return
        # Still pending: it no longer counts as live.
        self._engine._live -= 1
        self.cancelled = True
        # Drop references early so cancelled events pin no memory while
        # they wait to be popped off the heap.
        self.fn = None
        self.args = ()
        self.kwargs = {}

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6g} seq={self.seq} {state}>"


class Engine:
    """The event loop.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (default 0.0).

    Notes
    -----
    * The clock only moves forward, and only while events execute.
    * Callbacks run synchronously; anything they schedule lands back on
      the same heap.
    * ``max_events`` guards (in :meth:`run`) catch accidental infinite
      event cascades in tests.
    * Heap entries are ``(time, seq, fn, args)`` tuples; ``fn is None``
      marks a cancellable :class:`Event` carried in the ``args`` slot.
      ``(time, seq)`` is unique, so tuple comparison never reaches the
      callback.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list = []
        self._seq = 0
        self._live = 0
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still in the heap (O(1))."""
        return self._live

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    # Scheduling -- fast tier (fire-and-forget, not cancellable)
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` without a handle.

        The fast path for bulk traffic (message delivery): pushes one
        plain tuple, allocates no :class:`Event`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        self._live += 1

    def schedule_after(self, delay: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` ``delay`` time units from now (no handle)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heappush(self._heap, (self._now + delay, self._seq, fn, args))
        self._seq += 1
        self._live += 1

    def schedule_batch(
        self, entries: Iterable[Tuple[float, Callable[..., Any], tuple]]
    ) -> int:
        """Bulk-insert ``(time, fn, args)`` entries; returns the count.

        Sequence numbers are assigned in iteration order, so a batch is
        observationally identical to the equivalent sequence of
        :meth:`schedule_at` calls.  When the batch is large relative to
        the heap the entries are appended and the heap re-heapified
        (``heapq.merge``-style O(n + k) instead of O(k log n)).
        """
        heap = self._heap
        seq = self._seq
        now = self._now
        staged = []
        for time, fn, args in entries:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at t={time} before current time t={now}"
                )
            staged.append((time, seq, fn, args))
            seq += 1
        if not staged:
            return 0
        if len(staged) > 8 and len(staged) * 4 >= len(heap):
            heap.extend(staged)
            heapify(heap)
        else:
            for entry in staged:
                heappush(heap, entry)
        self._seq = seq
        self._live += len(staged)
        return len(staged)

    # ------------------------------------------------------------------
    # Scheduling -- handle tier (cancellable)
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` at absolute time ``time``.

        Returns a cancellable :class:`Event` handle; prefer
        :meth:`schedule_at` for traffic that never cancels.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        ev = Event(self, time, self._seq, fn, args, kwargs)
        heappush(self._heap, (time, self._seq, None, ev))
        self._seq += 1
        self._live += 1
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args, **kwargs)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    # The dispatch logic is intentionally inlined into each run loop:
    # one Python frame per event is the difference between the engine
    # and the protocol dominating the profile.

    def step(self) -> bool:
        """Execute the single next live event.

        Returns
        -------
        bool
            True if an event was executed, False if the heap was empty.
        """
        heap = self._heap
        while heap:
            time, _seq, fn, args = heappop(heap)
            if fn is None:
                ev = args
                if ev.cancelled:
                    continue  # lazily discarded; not counted as executed
                fn, args, kwargs = ev.fn, ev.args, ev.kwargs
                # Mark fired before invoking so re-entrant inspection via
                # the handle sees a consistent state.
                ev.fn = None
                self._now = time
                self._live -= 1
                self._events_executed += 1
                fn(*args, **kwargs)
                return True
            self._now = time
            self._live -= 1
            self._events_executed += 1
            fn(*args)
            return True
        return False

    def run(self, max_events: int = 50_000_000) -> int:
        """Run until the heap is exhausted.

        Parameters
        ----------
        max_events:
            Safety cap on the number of events executed by this call.

        Returns
        -------
        int
            Number of events executed by this call.

        Raises
        ------
        SimulationError
            If the cap is exceeded (almost always an event livelock,
            e.g. a timer rescheduling itself unconditionally).
        """
        heap = self._heap
        pop = heappop
        executed = 0
        # See run_while for the deferred _live/_events_executed
        # accounting.
        try:
            while heap:
                time, _seq, fn, args = pop(heap)
                if fn is None:
                    ev = args
                    if ev.cancelled:
                        continue
                    fn, args, kwargs = ev.fn, ev.args, ev.kwargs
                    ev.fn = None
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely an event livelock"
                        )
                    fn(*args, **kwargs)
                else:
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely an event livelock"
                        )
                    fn(*args)
        finally:
            self._live -= executed
            self._events_executed += executed
        return executed

    def run_until(self, deadline: float, max_events: int = 50_000_000) -> int:
        """Run events with ``time <= deadline`` and advance the clock.

        The clock is left at ``deadline`` even if the heap empties
        earlier, matching the common "simulate for T seconds" idiom.
        Each live event is popped exactly once: the loop peeks only at
        the cheap tuple head, then dispatches the popped entry directly
        instead of delegating to :meth:`step` (which would re-pop).
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline t={deadline} is before current time t={self._now}"
            )
        heap = self._heap
        pop = heappop
        executed = 0
        while heap:
            entry = heap[0]
            fn = entry[2]
            if fn is None and entry[3].cancelled:
                pop(heap)  # lazily discard; costs no dispatch
                continue
            if entry[0] > deadline:
                break
            pop(heap)
            if fn is None:
                ev = entry[3]
                fn, args, kwargs = ev.fn, ev.args, ev.kwargs
                ev.fn = None
                self._now = entry[0]
                self._live -= 1
                self._events_executed += 1
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before deadline"
                    )
                fn(*args, **kwargs)
            else:
                self._now = entry[0]
                self._live -= 1
                self._events_executed += 1
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before deadline"
                    )
                fn(*entry[3])
        self._now = max(self._now, deadline)
        return executed

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` if idle.

        Cancelled handles at the head of the heap are lazily discarded
        on the way, so the answer reflects only events that will
        actually fire.  This is the "null message" a shard reports to
        the conservative-sync coordinator (see :mod:`repro.shard`).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is None and entry[3].cancelled:
                heappop(heap)
                continue
            return entry[0]
        return None

    def run_before(self, deadline: float, max_events: int = 50_000_000) -> int:
        """Run events with ``time < deadline`` (strictly).

        Unlike :meth:`run_until`, the clock is left at the last executed
        event rather than advanced to the deadline.  This is the window
        primitive of the sharded executor: a shard that negotiated a
        lower-bound timestamp may execute everything strictly below it,
        but its clock must stay free for the coordinator to align at the
        barrier (:meth:`pin_clock`).
        """
        heap = self._heap
        pop = heappop
        executed = 0
        # Deferred _live/_events_executed accounting, as in run_while.
        try:
            while heap:
                entry = heap[0]
                fn = entry[2]
                if fn is None and entry[3].cancelled:
                    pop(heap)  # lazily discard; costs no dispatch
                    continue
                if entry[0] >= deadline:
                    break
                pop(heap)
                if fn is None:
                    ev = entry[3]
                    fn, args, kwargs = ev.fn, ev.args, ev.kwargs
                    ev.fn = None
                    self._now = entry[0]
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} in run_before"
                        )
                    fn(*args, **kwargs)
                else:
                    self._now = entry[0]
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} in run_before"
                        )
                    fn(*entry[3])
        finally:
            self._live -= executed
            self._events_executed += executed
        return executed

    def pin_clock(self, time: float) -> None:
        """Set the clock to ``time`` without executing anything.

        The sharded executor uses this to align every shard's clock at a
        synchronization barrier.  Moving *backwards* is allowed -- after
        :meth:`run_before` the clock sits at the last executed event,
        which may lie beyond the globally agreed timestamp -- but only
        while no pending event would end up in the past.
        """
        nxt = self.next_event_time()
        if nxt is not None and nxt < time:
            raise SimulationError(
                f"cannot pin clock to t={time}: next pending event at t={nxt}"
            )
        self._now = float(time)

    def run_while(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> int:
        """Run while ``predicate()`` is true and events remain.

        Useful for "pump the network until this lookup resolves" loops in
        tests and experiment drivers.
        """
        heap = self._heap
        pop = heappop
        executed = 0
        # _live/_events_executed are maintained via `executed` and
        # written back on exit (including via callbacks raising):
        # callbacks observe a momentarily stale pending_count, never a
        # wrong clock.
        try:
            while predicate() and heap:
                time, _seq, fn, args = pop(heap)
                if fn is None:
                    ev = args
                    if ev.cancelled:
                        continue
                    fn, args, kwargs = ev.fn, ev.args, ev.kwargs
                    ev.fn = None
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} in run_while"
                        )
                    fn(*args, **kwargs)
                else:
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} in run_while"
                        )
                    fn(*args)
        finally:
            self._live -= executed
            self._events_executed += executed
        return executed
