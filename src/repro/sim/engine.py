"""Discrete-event simulation engine.

This module is the substrate that replaces NS2 in the original paper's
evaluation.  It provides a classic event-heap simulator: callbacks are
scheduled at absolute or relative simulated times and executed in
timestamp order.  Ties are broken by insertion order so that runs are
fully deterministic for a given seed.

The engine is deliberately minimal and allocation-light: an event is a
small object carrying ``(time, seq, fn, args)`` plus a ``cancelled``
flag.  Cancellation is lazy -- cancelled events stay in the heap and are
skipped when popped -- which keeps :meth:`Engine.cancel` O(1).

Example
-------
>>> eng = Engine()
>>> hits = []
>>> _ = eng.call_at(5.0, hits.append, "b")
>>> _ = eng.call_later(1.0, hits.append, "a")
>>> eng.run()
>>> hits
['a', 'b']
>>> eng.now
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Engine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is driven in an inconsistent way.

    Examples: scheduling an event in the past, or running a finished
    engine with ``strict=True``.
    """


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.call_at` /
    :meth:`Engine.call_later` and act as handles: holding one allows the
    caller to :meth:`cancel` the event before it fires.

    Attributes
    ----------
    time:
        Absolute simulated time at which the event fires.
    seq:
        Monotone sequence number used to break ties deterministically.
    fn:
        The callback; ``None`` once the event is cancelled.
    """

    __slots__ = ("time", "seq", "fn", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.

        Idempotent; cancelling an event that already fired is a no-op.
        """
        self.cancelled = True
        # Drop references early so cancelled events pin no memory while
        # they wait to be popped off the heap.
        self.fn = None
        self.args = ()
        self.kwargs = {}

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled/fired."""
        return not self.cancelled and self.fn is not None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6g} seq={self.seq} {state}>"


class Engine:
    """The event loop.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (default 0.0).

    Notes
    -----
    * The clock only moves forward, and only while events execute.
    * Callbacks run synchronously; anything they schedule lands back on
      the same heap.
    * ``max_events`` guards (in :meth:`run`) catch accidental infinite
      event cascades in tests.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still in the heap."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __len__(self) -> int:
        return self.pending_count

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` at absolute time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        ev = Event(time, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args, **kwargs)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next live event.

        Returns
        -------
        bool
            True if an event was executed, False if the heap was empty.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled or ev.fn is None:
                continue
            self._now = ev.time
            fn, args, kwargs = ev.fn, ev.args, ev.kwargs
            # Mark fired before invoking so re-entrant inspection via the
            # handle sees a consistent state.
            ev.fn = None
            self._events_executed += 1
            fn(*args, **kwargs)
            return True
        return False

    def run(self, max_events: int = 50_000_000) -> int:
        """Run until the heap is exhausted.

        Parameters
        ----------
        max_events:
            Safety cap on the number of events executed by this call.

        Returns
        -------
        int
            Number of events executed by this call.

        Raises
        ------
        SimulationError
            If the cap is exceeded (almost always an event livelock,
            e.g. a timer rescheduling itself unconditionally).
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely an event livelock"
                )
        return executed

    def run_until(self, deadline: float, max_events: int = 50_000_000) -> int:
        """Run events with ``time <= deadline`` and advance the clock.

        The clock is left at ``deadline`` even if the heap empties
        earlier, matching the common "simulate for T seconds" idiom.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline t={deadline} is before current time t={self._now}"
            )
        executed = 0
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled or nxt.fn is None:
                heapq.heappop(self._heap)
                continue
            if nxt.time > deadline:
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before deadline"
                )
        self._now = max(self._now, deadline)
        return executed

    def run_while(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> int:
        """Run while ``predicate()`` is true and events remain.

        Useful for "pump the network until this lookup resolves" loops in
        tests and experiment drivers.
        """
        executed = 0
        while predicate() and self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} in run_while"
                )
        return executed
