"""Seeded random-number streams.

Every source of randomness in the reproduction flows through a named
stream derived from a single root seed, so that (a) whole experiments
are bit-reproducible and (b) changing how one subsystem consumes
randomness (e.g. the churn schedule) does not perturb another (e.g. the
topology), which keeps A/B comparisons between configurations honest.

Streams are ``numpy.random.Generator`` instances spawned from a
``SeedSequence`` keyed by the stream name, mirroring the recommended
NumPy practice for parallel/independent streams.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["RngRegistry", "stable_hash32"]


def stable_hash32(text: str) -> int:
    """Map a string to a stable 32-bit integer (CRC32).

    Python's builtin :func:`hash` is salted per process, so it cannot key
    seed material.  CRC32 is stable across runs and platforms and is
    plenty for distinguishing stream names.
    """
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class RngRegistry:
    """A factory of named, independent random streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  Two registries with the same root
        seed hand out identical streams for identical names.

    Example
    -------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("churn")
    >>> b = RngRegistry(42).stream("churn")
    >>> bool(a.integers(1 << 30) == b.integers(1 << 30))
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (and therefore a single advancing stream), which is what
        protocol code wants.
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.root_seed, stable_hash32(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (not cached).

        Useful in tests that want to replay a stream from its origin.
        """
        seq = np.random.SeedSequence([self.root_seed, stable_hash32(name)])
        return np.random.default_rng(seq)

    def names(self) -> List[str]:
        """Names of streams created so far (sorted)."""
        return sorted(self._streams)

    def spawn(self, names: Iterable[str]) -> Dict[str, np.random.Generator]:
        """Materialise several streams at once (convenience)."""
        return {name: self.stream(name) for name in names}
