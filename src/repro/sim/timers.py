"""Resettable timers built on the event engine.

The hybrid P2P protocol in the paper is timer-heavy: HELLO heartbeat
timers, per-neighbor crash-detection timeouts, lookup expiration timers
with TTL re-flooding, acknowledgment timers, and the acknowledgment
*suppress* timer of Section 3.2.2.  All of them share the same shape --
"fire a callback unless reset/cancelled first" -- captured here by
:class:`Timer`, with :class:`PeriodicTimer` layering repetition on top.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Engine, Event

__all__ = ["Timer", "PeriodicTimer"]


class Timer:
    """A one-shot timer that can be reset before it expires.

    Mirrors the paper's neighbor timeout: every HELLO (or acknowledgment)
    message resets the timer; if it ever fires, the neighbor is declared
    crashed.

    Parameters
    ----------
    engine:
        The event engine that provides time.
    timeout:
        Duration from (re)start to expiry.
    on_expire:
        Callback invoked (with no arguments) when the timer fires.
    """

    def __init__(
        self,
        engine: Engine,
        timeout: float,
        on_expire: Callable[[], Any],
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timer timeout must be positive, got {timeout}")
        self._engine = engine
        self.timeout = timeout
        self._on_expire = on_expire
        self._event: Optional[Event] = None
        self._expired = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the timer is armed and has not fired."""
        return self._event is not None and self._event.pending

    @property
    def expired(self) -> bool:
        """True once the timer has fired (until the next start/reset)."""
        return self._expired

    @property
    def deadline(self) -> Optional[float]:
        """Absolute expiry time, or None when not running."""
        if self._event is not None and self._event.pending:
            return self._event.time
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the timer ``timeout`` from now (restarts if running)."""
        self.cancel()
        self._expired = False
        self._event = self._engine.call_later(self.timeout, self._fire)

    def reset(self) -> None:
        """Push the deadline back to ``now + timeout``.

        Equivalent to :meth:`start`; named separately to match protocol
        prose ("the timer is reset on receiving a HELLO message").
        """
        self.start()

    def cancel(self) -> None:
        """Disarm the timer without firing it."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._expired = True
        self._on_expire()


class PeriodicTimer:
    """A timer that fires every ``period`` until stopped.

    Used for the HELLO heartbeat broadcast.  Supports :meth:`defer`,
    which skips/postpones the next scheduled firing -- this implements
    the paper's bandwidth optimisation where a pending HELLO is cancelled
    when an acknowledgment message has recently proven liveness.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        on_tick: Callable[[], Any],
    ) -> None:
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._engine = engine
        self.period = period
        self._on_tick = on_tick
        self._event: Optional[Event] = None
        self._stopped = True
        self.ticks = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        """Begin ticking; first tick is one full period from now."""
        self.stop()
        self._stopped = False
        self._event = self._engine.call_later(self.period, self._fire)

    def stop(self) -> None:
        """Stop ticking."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def defer(self) -> None:
        """Postpone the next tick to a full period from now.

        In the paper, receiving/sending an acknowledgment cancels the
        scheduled HELLO message to save bandwidth; liveness has already
        been demonstrated, so the heartbeat restarts its countdown.
        """
        if not self._stopped:
            if self._event is not None:
                self._event.cancel()
            self._event = self._engine.call_later(self.period, self._fire)

    def _fire(self) -> None:
        self._event = None
        self.ticks += 1
        self._on_tick()
        # on_tick may have called stop() (or start(), which re-arms).
        if not self._stopped and self._event is None:
            self._event = self._engine.call_later(self.period, self._fire)
