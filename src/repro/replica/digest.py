"""Segment digests for anti-entropy comparison.

An owner t-peer summarises its segment as a single hash; each replica
holder computes the same hash over the copies it keeps for that
segment.  Equal digests prove the replica is current without shipping
any items; a mismatch triggers a full-segment exchange (segments are
small enough -- thousands of items, not millions -- that a flat digest
beats the bookkeeping cost of a Merkle tree; the message flow is shaped
so a tree can slot in later without protocol changes).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

__all__ = ["segment_digest", "items_in_segment"]


def segment_digest(items: Iterable) -> str:
    """Order-independent hex digest over ``DataItem``-like objects.

    Hashes the sorted ``(key, d_id, repr(value))`` triples so dict
    insertion order never matters.  ``repr`` keeps the digest
    dependency-free and deterministic for the JSON-ish value types the
    wire codec carries.
    """
    lines = sorted(
        f"{item.key}\x00{item.d_id}\x00{item.value!r}" for item in items
    )
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8", "surrogatepass"))
        h.update(b"\x1e")
    return h.hexdigest()


def items_in_segment(store, idspace, lo: int, hi: int) -> List:
    """Items of ``store`` whose ``d_id`` falls in the arc ``(lo, hi]``.

    A replica holder keeps copies for several owners at once; this
    filter carves out the one segment a digest exchange is about.
    """
    contains = idspace.owner_segment_contains
    return [item for item in store if contains(item.d_id, lo, hi)]
