"""The replication protocol: quorum writes, anti-entropy, failover.

:class:`ReplicationMixin` is composed into
:class:`~repro.core.hybridpeer.HybridPeer` and is entirely inert at
``replication_factor == 1`` (the paper's exact behaviour, and what the
determinism golden test pins down).  At ``k > 1`` every t-peer plays
two parts:

* **owner** of its own segment ``(pred_pid, p_id]`` -- holds the
  primary copy of each item in ``self.database`` and fans a
  :class:`~repro.overlay.messages.ReplicaWrite` chain down its
  ``k - 1`` ring successors;
* **replica holder** for up to ``k - 1`` predecessor segments -- keeps
  those copies in ``self.replicas`` (a second
  :class:`~repro.core.datastore.DataStore`), separate from the primary
  database so lookup-correctness invariants (one authoritative holder
  per item) and ``HybridSystem.total_items()`` accounting stay intact.

Three write flavours share one message:

* ``write_id == -1, ack_to == -1`` -- *untracked*: fire-and-forget
  fan-out used by the sim's bulk ``store`` (no timers, so the sim event
  stream stays cheap and deterministic) and by anti-entropy pushes;
* tracked -- the owner records a pending entry, arms a retry timer and
  reports a verdict (:class:`ReplicaAck` with ``final=True``) to the
  write's origin once ``write_quorum`` copies exist (its own included)
  or retries are exhausted;
* the origin, when it is the owner itself, takes the verdict as a
  direct call -- no self-addressed messages.

Failover is pull-based: whoever assumes ownership of a segment (a
promoted s-peer with an empty database, or the successor absorbing an
excised segment) immediately runs one anti-entropy round; an empty or
stale digest makes every surviving holder answer with its full copy of
the segment, and the new owner re-replicates down its own chain.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from ..overlay.messages import (
    ReplicaAck,
    ReplicaSyncRequest,
    ReplicaSyncResponse,
    ReplicaWrite,
    StoreRequest,
)
from ..sim.timers import PeriodicTimer, Timer
from .digest import items_in_segment, segment_digest

__all__ = ["ReplicationMixin"]


class _PendingReplicaWrite:
    """Owner-side state of one tracked write awaiting its quorum."""

    __slots__ = (
        "key", "value", "d_id", "origin", "origin_wid",
        "needed", "chain", "acks", "attempts", "timer",
    )

    def __init__(
        self, key: str, value: Any, d_id: int, origin: int,
        origin_wid: int, needed: int, chain: int,
    ) -> None:
        self.key = key
        self.value = value
        self.d_id = d_id
        self.origin = origin
        self.origin_wid = origin_wid
        self.needed = needed  # replica acks still required (own copy counted out)
        self.chain = chain  # replica holders addressed per attempt
        self.acks: set = set()
        self.attempts = 0
        self.timer: Optional[Timer] = None


class ReplicationMixin:
    """k-successor replication: quorum writes, repair, failover."""

    # ------------------------------------------------------------------
    # State (called from HybridPeer.__init__)
    # ------------------------------------------------------------------
    def _init_replica_state(self, idspace) -> None:
        from ..core.datastore import DataStore

        # Copies held for predecessor segments, apart from the primary db.
        self.replicas = DataStore(idspace)
        # Owner side: tracked writes awaiting their quorum.
        self._replica_pending: Dict[int, _PendingReplicaWrite] = {}
        self._replica_write_seq = 0
        # Origin side: callbacks awaiting a durability verdict.
        self._write_watchers: Dict[int, Tuple[Callable[[bool, float], Any], float]] = {}
        self._write_watch_seq = 0
        self._replica_sync_timer: Optional[PeriodicTimer] = None

    @property
    def _replication_on(self) -> bool:
        return self.config.replication_factor > 1

    # ------------------------------------------------------------------
    # Origin side: tracked writes
    # ------------------------------------------------------------------
    def store_durable(
        self, key: str, value: Any, on_verdict: Callable[[bool, float], Any]
    ) -> Tuple[int, int]:
        """Store with a durability verdict.

        ``on_verdict(committed, latency_ms)`` runs exactly once: after
        ``write_quorum`` copies exist, or after the owner exhausts its
        retries, or never if the owner crashes mid-write (callers bound
        the wait; see :meth:`cancel_write_watch`).  Returns
        ``(watch_id, d_id)``.
        """
        d_id = self.idspace.hash_key(key)
        self._write_watch_seq += 1
        wid = self._write_watch_seq
        self._write_watchers[wid] = (on_verdict, self.engine.now)
        if not self._replication_on:
            # k == 1: same routing as :meth:`store` (placement spreading
            # included), but the landing peer reports back through
            # ``write_id`` so a daemon can hold its put ack until the
            # single copy actually exists instead of acking on send.
            if self.owns_locally(d_id):
                self._insert_as_holder(
                    key, value, d_id, origin=self.address, write_id=wid
                )
            else:
                target = self.t_peer if self.role == "s" else self.ring_next_hop(d_id)
                self.send(
                    target,
                    StoreRequest(
                        key=key, value=value, d_id=d_id,
                        origin=self.address, write_id=wid,
                    ),
                )
            return wid, d_id
        if self.role == "t" and self.owns(d_id):
            self._replica_ingest(key, value, d_id, origin=self.address, origin_wid=wid)
        elif self.role == "s":
            self.send(
                self.t_peer,
                StoreRequest(
                    key=key, value=value, d_id=d_id,
                    origin=self.address, write_id=wid,
                ),
            )
        else:
            self.send(
                self.ring_next_hop(d_id),
                StoreRequest(
                    key=key, value=value, d_id=d_id,
                    origin=self.address, write_id=wid,
                ),
            )
        return wid, d_id

    def cancel_write_watch(self, wid: int) -> None:
        """Drop a verdict callback (origin-side wait timed out)."""
        self._write_watchers.pop(wid, None)

    def _write_verdict(self, wid: int, committed: bool) -> None:
        entry = self._write_watchers.pop(wid, None)
        if entry is None:
            return
        on_verdict, started = entry
        latency = self.engine.now - started
        self.emit("replica.commit", committed=committed, latency=latency)
        on_verdict(committed, latency)

    # ------------------------------------------------------------------
    # Owner side: ingest + fan-out
    # ------------------------------------------------------------------
    def _replica_ingest(
        self, key: str, value: Any, d_id: int, origin: int, origin_wid: int = -1
    ) -> None:
        """Owner t-peer accepts a write: primary copy, then the chain.

        ``origin_wid == -1`` is the untracked path (sim bulk stores):
        fire-and-forget, no pending state, no timers.
        """
        self._insert_as_holder(key, value, d_id, origin)
        chain = self.config.replication_factor - 1
        if self.successor in (-1, self.address):
            chain = 0  # single-member ring: no holders to address
        if origin_wid == -1:
            if chain > 0:
                self._send_replica_chain(key, value, d_id, ack_to=-1,
                                         write_id=-1, remaining=chain - 1)
            return
        needed = self.config.write_quorum - 1  # our own copy counts
        if needed <= 0:
            # Quorum already satisfied locally: verdict now, replicate
            # untracked behind it (anti-entropy covers any lost copy).
            if chain > 0:
                self._send_replica_chain(key, value, d_id, ack_to=-1,
                                         write_id=-1, remaining=chain - 1)
            self._owner_verdict(origin, origin_wid, True)
            return
        if chain == 0:
            # Quorum > 1 demanded but no holders exist to provide it.
            self._owner_verdict(origin, origin_wid, False)
            return
        self._replica_write_seq += 1
        pwid = self._replica_write_seq
        pending = _PendingReplicaWrite(
            key, value, d_id, origin, origin_wid, needed, chain
        )
        pending.timer = Timer(
            self.engine,
            self.config.replica_ack_timeout,
            partial(self._replica_write_timeout, pwid),
        )
        self._replica_pending[pwid] = pending
        self._send_replica_chain(key, value, d_id, ack_to=self.address,
                                 write_id=pwid, remaining=chain - 1)
        pending.timer.start()

    def _send_replica_chain(
        self, key: str, value: Any, d_id: int,
        ack_to: int, write_id: int, remaining: int,
    ) -> None:
        self.send(
            self.successor,
            ReplicaWrite(
                key=key, value=value, d_id=d_id, owner=self.address,
                ack_to=ack_to, write_id=write_id, remaining=remaining,
            ),
        )

    def _owner_verdict(self, origin: int, origin_wid: int, committed: bool) -> None:
        if origin == self.address:
            self._write_verdict(origin_wid, committed)
        else:
            self.send(
                origin,
                ReplicaAck(
                    write_id=origin_wid, replica=self.address,
                    committed=committed, final=True,
                ),
            )

    def _replica_write_timeout(self, pwid: int) -> None:
        pending = self._replica_pending.get(pwid)
        if pending is None or not self.alive:
            return
        if pending.attempts < self.config.replica_write_retries:
            pending.attempts += 1
            # Re-fan the whole chain: holders that already stored the
            # item re-insert idempotently and re-ack, and a successor
            # substituted in by failover gets its copy on this pass.
            self._send_replica_chain(
                pending.key, pending.value, pending.d_id,
                ack_to=self.address, write_id=pwid,
                remaining=pending.chain - 1,
            )
            pending.timer.start()
            return
        del self._replica_pending[pwid]
        committed = len(pending.acks) >= pending.needed
        self._owner_verdict(pending.origin, pending.origin_wid, committed)

    def on_ReplicaAck(self, msg: ReplicaAck) -> None:
        if msg.final:
            # Owner's verdict arriving back at the write's origin.
            self._write_verdict(msg.write_id, msg.committed)
            return
        pending = self._replica_pending.get(msg.write_id)
        if pending is None:
            return  # quorum already met, or verdict already issued
        if msg.committed:
            pending.acks.add(msg.replica)
        if len(pending.acks) >= pending.needed:
            del self._replica_pending[msg.write_id]
            if pending.timer is not None:
                pending.timer.cancel()
            self._owner_verdict(pending.origin, pending.origin_wid, True)

    # ------------------------------------------------------------------
    # Replica-holder side
    # ------------------------------------------------------------------
    def on_ReplicaWrite(self, msg: ReplicaWrite) -> None:
        if msg.owner == self.address:
            return  # chain wrapped the whole ring back to the owner
        if self.role != "t":
            # Promotion/handoff race: the chain reached an s-peer whose
            # t-peer is the intended holder.
            self.send(self.t_peer, msg)
            return
        if self.owns(msg.d_id):
            # Ownership moved to us before the copy arrived (failover
            # landed first): adopt it as a primary copy.  No
            # "data.stored" emit -- the original owner already counted
            # this item.
            self.database.insert(msg.key, msg.value, msg.d_id)
        else:
            self.replicas.insert(msg.key, msg.value, msg.d_id)
        if msg.ack_to not in (-1, self.address):
            self.send(
                msg.ack_to,
                ReplicaAck(write_id=msg.write_id, replica=self.address),
            )
        if msg.remaining > 0 and self.successor not in (-1, self.address, msg.owner):
            self.send(
                self.successor,
                ReplicaWrite(
                    key=msg.key, value=msg.value, d_id=msg.d_id,
                    owner=msg.owner, ack_to=msg.ack_to,
                    write_id=msg.write_id, remaining=msg.remaining - 1,
                ),
            )

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def start_replica_sync(self) -> None:
        """Arm the periodic digest exchange (owner role, k > 1)."""
        if (
            not self._replication_on
            or self.config.replica_sync_period <= 0
            or self.role != "t"
            or not self.alive
        ):
            return
        if self._replica_sync_timer is None:
            self._replica_sync_timer = PeriodicTimer(
                self.engine,
                self.config.replica_sync_period,
                self._replica_sync_tick,
            )
        if not self._replica_sync_timer.running:
            self._replica_sync_timer.start()

    def stop_replica_sync(self) -> None:
        if self._replica_sync_timer is not None:
            self._replica_sync_timer.stop()

    def replica_shutdown(self) -> None:
        """Cancel every replica timer (leave/crash path)."""
        self.stop_replica_sync()
        for pending in self._replica_pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._replica_pending.clear()
        self._write_watchers.clear()

    def _replica_sync_tick(self) -> None:
        if self.role == "t" and self.alive:
            self.replica_resync_now()

    def replica_resync_now(self) -> None:
        """One anti-entropy round: digest our segment down the chain."""
        if not self._replication_on or self.role != "t":
            return
        if self.successor in (-1, self.address):
            return
        lo, hi = self.predecessor_pid, self.p_id
        own = items_in_segment(self.database, self.idspace, lo, hi)
        self.send(
            self.successor,
            ReplicaSyncRequest(
                lo=lo, hi=hi, digest=segment_digest(own),
                origin=self.address,
                remaining=self.config.replication_factor - 2,
            ),
        )

    def on_ReplicaSyncRequest(self, msg: ReplicaSyncRequest) -> None:
        if msg.origin == self.address:
            return  # probe wrapped the whole ring
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        mine = items_in_segment(self.replicas, self.idspace, msg.lo, msg.hi)
        if self.owns(msg.lo) or self.owns(msg.hi):
            # Segment boundaries moved under the probe (we absorbed part
            # of the range): answer from the primary db too, so the
            # owner-of-record learns what we promoted.
            mine = mine + items_in_segment(self.database, self.idspace, msg.lo, msg.hi)
        if segment_digest(mine) != msg.digest:
            self.send(
                msg.origin,
                ReplicaSyncResponse(
                    lo=msg.lo, hi=msg.hi,
                    items=tuple((i.key, i.value, i.d_id) for i in mine),
                ),
            )
        if msg.remaining > 0 and self.successor not in (-1, self.address, msg.origin):
            self.send(
                self.successor,
                ReplicaSyncRequest(
                    lo=msg.lo, hi=msg.hi, digest=msg.digest,
                    origin=msg.origin, remaining=msg.remaining - 1,
                ),
            )

    def on_ReplicaSyncResponse(self, msg: ReplicaSyncResponse) -> None:
        """Owner: pull what we miss, push what the responder misses."""
        if self.role != "t":
            return
        pulled = 0
        for key, value, d_id in msg.items:
            if self.owns(d_id) and self.database.get(key) is None:
                # A copy survived somewhere we lost the primary (crash
                # failover): restore it.  No "data.stored" emit -- the
                # item was already counted when first stored.
                self.database.insert(key, value, d_id)
                pulled += 1
        responder_keys = {key for key, _value, _d_id in msg.items}
        behind = [
            item
            for item in items_in_segment(self.database, self.idspace, msg.lo, msg.hi)
            if item.key not in responder_keys
        ]
        for item in behind:
            self.send(
                msg.sender,
                ReplicaWrite(
                    key=item.key, value=item.value, d_id=item.d_id,
                    owner=self.address, ack_to=-1, write_id=-1, remaining=0,
                ),
            )
        if pulled or behind:
            self.emit(
                "replica.repair", items=pulled + len(behind),
                pulled=pulled, pushed=len(behind), source=msg.sender,
            )
        self.emit("replica.lag", items=len(behind), replica=msg.sender)

    # ------------------------------------------------------------------
    # Failover hooks (called from the Section 4 crash machinery)
    # ------------------------------------------------------------------
    def replica_handle_promotion(self, crashed: int) -> None:
        """We were promoted into a crashed t-peer's ring position with
        an empty database: pull the whole segment from its replica set."""
        if not self._replication_on:
            return
        self.emit(
            "replica.failover", kind="promotion", crashed=crashed, p_id=self.p_id
        )
        self.start_replica_sync()
        # Empty-db digest never matches a non-empty holder, so every
        # surviving holder answers with its full copy of the segment.
        self.replica_resync_now()

    def replica_absorb_segment(
        self, new_lo: int, old_lo: int, failover: bool = True
    ) -> None:
        """Our segment grew down to ``new_lo``: copies we held for the
        absorbed range are now primary.

        ``failover=False`` marks the graceful-leave variant (the
        leaver's acked load dump is the primary data source; promoting
        our copies just closes the window until it lands) -- no
        ``replica.failover`` event in that case.
        """
        if not self._replication_on or new_lo == old_lo:
            return
        promoted = self.replicas.extract_segment(new_lo, old_lo)
        for item in promoted:
            if self.database.get(item.key) is None:
                self.database.insert_item(item)
        if failover:
            self.emit(
                "replica.failover", kind="absorb", crashed=-1,
                p_id=self.p_id, items=len(promoted),
            )
        # Re-replicate the widened segment down our own chain (our
        # successors never held the absorbed range at depth k-1).
        self.replica_resync_now()

    def replica_chain_changed(self) -> None:
        """Our successor changed (crash repair): refresh its copies."""
        if self._replication_on:
            self.replica_resync_now()
