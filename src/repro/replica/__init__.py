"""repro.replica -- k-successor segment replication with live failover.

The durability layer of the reproduction: every t-peer's segment is
mirrored onto the next ``k-1`` t-peers along the ring
(``HybridConfig.replication_factor``), writes can demand an ack quorum
(``write_quorum``) before the origin reports them durable, a periodic
anti-entropy digest exchange (``replica_sync_period``) heals divergence
after churn, and the Section 4 crash machinery is extended so the first
live successor (or the promoted s-peer) assumes a crashed segment's
ownership without losing acknowledged writes.

See docs/REPLICATION.md for the protocol walkthrough and failure
timeline.
"""

from .digest import items_in_segment, segment_digest
from .protocol import ReplicationMixin

__all__ = ["ReplicationMixin", "segment_digest", "items_in_segment"]
