"""Sharded multi-core simulation substrate.

Runs one sweep cell across N worker shards -- each owning the peers of
a subset of s-networks with its own event heap -- under conservative
(null-message) time synchronization, producing results bit-identical
to the single-process :func:`repro.experiments.common.run_cell`.

Public surface:

* :func:`run_cell_sharded` / :func:`resolve_shards` -- the executor and
  the ``--shards`` / ``REPRO_SHARDS`` plumbing;
* :class:`NullMessageSync` -- the lower-bound-timestamp window logic;
* :class:`ShardQueryRegistry` / :func:`merge_registries` -- exact
  metric aggregation across shards;
* :class:`CompactPeerState` -- numpy columnar peer state for
  partitioning and large-scale metrics.
"""

from .partition import partition_snetworks, shard_loads
from .runner import (
    SHARDS_ENV,
    check_shardable,
    merge_registries,
    resolve_shards,
    run_cell_sharded,
)
from .state import CompactPeerState, PeerStub, ShardQueryRegistry
from .sync import NullMessageSync, ShardSyncError
from .worker import ShardWorker

__all__ = [
    "SHARDS_ENV",
    "CompactPeerState",
    "NullMessageSync",
    "PeerStub",
    "ShardQueryRegistry",
    "ShardSyncError",
    "ShardWorker",
    "check_shardable",
    "merge_registries",
    "partition_snetworks",
    "resolve_shards",
    "run_cell_sharded",
    "shard_loads",
]
