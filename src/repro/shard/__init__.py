"""Sharded multi-core simulation substrate.

Runs one sweep cell across N worker shards -- each owning the peers of
a subset of s-networks with its own event heap -- under conservative
(null-message) time synchronization, producing results bit-identical
to the single-process :func:`repro.experiments.common.run_cell`.

Public surface:

* :func:`run_cell_sharded` / :func:`resolve_shards` /
  :func:`resolve_shard_backend` -- the executor and the ``--shards`` /
  ``REPRO_SHARDS`` / ``--shard-backend`` / ``REPRO_SHARD_BACKEND``
  plumbing (plus ``REPRO_SHARDS_STRICT`` via
  :func:`resolve_shards_strict`);
* :class:`NullMessageSync` -- the lower-bound-timestamp window logic;
* :class:`SpscRing` / :class:`ShardFrameCodec` -- the shared-memory
  ring transport and struct frame encoding of the shm backend
  (:mod:`repro.shard.ipc`);
* :class:`ShardQueryRegistry` / :func:`merge_registries` -- exact
  metric aggregation across shards;
* :class:`CompactPeerState` -- numpy columnar peer state for
  partitioning and large-scale metrics.
"""

from .ipc import (
    RingClosed,
    RingError,
    RingTimeout,
    ShardFrameCodec,
    SpscRing,
)
from .partition import partition_snetworks, shard_loads
from .runner import (
    SHARD_BACKEND_ENV,
    SHARDS_ENV,
    SHARDS_STRICT_ENV,
    check_shardable,
    merge_registries,
    resolve_shard_backend,
    resolve_shards,
    resolve_shards_strict,
    run_cell_sharded,
)
from .state import CompactPeerState, PeerStub, ShardQueryRegistry
from .sync import NullMessageSync, ShardSyncError
from .worker import ShardWorker

__all__ = [
    "SHARDS_ENV",
    "SHARD_BACKEND_ENV",
    "SHARDS_STRICT_ENV",
    "CompactPeerState",
    "NullMessageSync",
    "PeerStub",
    "RingClosed",
    "RingError",
    "RingTimeout",
    "ShardFrameCodec",
    "ShardQueryRegistry",
    "ShardSyncError",
    "ShardWorker",
    "SpscRing",
    "check_shardable",
    "merge_registries",
    "partition_snetworks",
    "resolve_shard_backend",
    "resolve_shards",
    "resolve_shards_strict",
    "run_cell_sharded",
    "shard_loads",
]
