"""Shared-memory IPC for sharded cell runs.

The pipe backend moves every cross-shard delivery twice through
``pickle`` and twice through a coordinator pipe.  This module replaces
that path with single-producer/single-consumer ring buffers in
:mod:`multiprocessing.shared_memory`:

* one **data ring per ordered shard pair** ``i -> j`` carrying overlay
  messages encoded with the compiled per-class struct layouts of wire
  codec v2 (:mod:`repro.runtime.codec`) behind a fixed 25-byte delivery
  envelope -- the consumer decodes straight out of the shared buffer as
  a zero-copy memoryview slice;
* one **control ring pair per worker** (coordinator->worker and back)
  carrying struct-packed ``issue``/``window``/``finish``/``stop`` frames
  and the worker's state replies.

Ring layout (all offsets relative to the shared block)::

    [0:8)    write counter  (u64, monotone, owned by the producer)
    [8:16)   read counter   (u64, monotone, owned by the consumer)
    [16]     producer-closed flag
    [17]     consumer-closed flag
    [64:...) frame area of ``capacity`` bytes

Frames are contiguous -- ``u32 length | u8 kind | payload`` -- so a
frame never wraps: when the tail of the buffer is too small the
producer emits a ``PAD`` marker (length ``0xFFFFFFFF``) and continues
at offset 0, and a tail shorter than a frame header is skipped
implicitly.  Counters are monotone u64s published with single aligned
8-byte stores *after* the frame bytes, which is what makes the
SPSC hand-off safe without locks on cache-coherent hardware.

Deadlock discipline: data rings are written with :meth:`SpscRing.
try_write` only -- a full ring spills the frame to the worker's control
ring, where the coordinator buffers it and forwards it with the next
``window`` request.  Blocking writes happen only toward a peer that is
guaranteed to be draining (the coordinator while collecting replies,
the worker while handling a request), and every blocking operation
watches a liveness callback so a dead peer raises :class:`RingClosed`
instead of hanging (see the worker-death test in
``tests/test_shard_determinism.py``).
"""

from __future__ import annotations

import math
import os
import pickle
import struct
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.codec import CodecError, MessageCodec, default_codec

__all__ = [
    "SpscRing",
    "RingError",
    "RingClosed",
    "RingTimeout",
    "ShardFrameCodec",
    "WorkerEndpoint",
    "ENVELOPE",
    "DATA_RING_BYTES",
    "CTRL_RING_BYTES",
    "RING_BYTES_ENV",
    "K_CTRL",
    "K_STATE",
    "K_MSG",
    "K_PMSG",
    "K_BLOB",
    "K_BLOBC",
    "K_ERR",
    "encode_issue",
    "encode_window",
    "encode_finish",
    "encode_stop",
    "encode_state",
    "decode_ctrl",
    "decode_state",
]

# ----------------------------------------------------------------------
# Frame kinds
# ----------------------------------------------------------------------
K_CTRL = 1   #: coordinator -> worker control frame (opcode leads payload)
K_STATE = 2  #: worker -> coordinator state reply (+ per-dst summaries)
K_MSG = 3    #: delivery envelope + wire-codec-v2 message body
K_PMSG = 4   #: delivery envelope + pickled message body (codec fallback)
K_BLOB = 5   #: pickled object (finish export), final chunk
K_BLOBC = 6  #: blob continuation chunk (more follow)
K_ERR = 7    #: UTF-8 worker traceback

_PAD = 0xFFFFFFFF
_LEN = struct.Struct("<I")
_LENKIND = struct.Struct("<IB")  # length + kind header in one pack
_FRAME_OVERHEAD = _LENKIND.size

_OFF_W = 0
_OFF_R = 8
_OFF_WCLOSED = 16
_OFF_RCLOSED = 17
HEADER_BYTES = 64

#: Default capacities.  Data rings see at most one window's worth of
#: cross-shard traffic for one ordered pair; overflow spills through
#: the control path, so these are throughput knobs, not correctness
#: limits.  ``REPRO_SHARD_RING_BYTES`` overrides the data-ring size
#: (the determinism suite shrinks it to force the spill path).
DATA_RING_BYTES = 4 << 20
CTRL_RING_BYTES = 1 << 20
RING_BYTES_ENV = "REPRO_SHARD_RING_BYTES"

#: How much pickled blob travels per frame (finish exports can exceed
#: the control-ring capacity at large scales; the coordinator is
#: draining concurrently, so chunked blocking writes stream through).
_BLOB_CHUNK = 256 << 10


class RingError(RuntimeError):
    """Base class for ring-transport failures."""


class RingClosed(RingError):
    """The peer closed its end (or its process died) with no data left."""


class RingTimeout(RingError):
    """A blocking ring operation exceeded its deadline."""


def resolve_data_ring_bytes() -> int:
    """Data-ring capacity: ``REPRO_SHARD_RING_BYTES`` or the default."""
    raw = os.environ.get(RING_BYTES_ENV, "").strip()
    if not raw:
        return DATA_RING_BYTES
    value = int(raw)
    if value < 256:
        raise ValueError(f"{RING_BYTES_ENV} must be >= 256, got {value}")
    return value


class SpscRing:
    """Single-producer/single-consumer frame ring over a shared buffer.

    One process calls only the producer methods (``try_write``,
    ``write``, ``close_producer``), the other only the consumer methods
    (``read``, ``close_consumer``).  A memoryview returned by ``read``
    aliases the shared buffer and stays valid until the *next* read
    call, which is when the consumed region is released to the
    producer -- decode before reading on.
    """

    __slots__ = (
        "_buf", "_cap", "_shm", "_w", "_r", "_hdr",
        "bytes_written", "frames_written", "bytes_read", "frames_read",
        "_pending_advance",
    )

    def __init__(self, buf, capacity: int, shm=None) -> None:
        if capacity < 256:
            raise ValueError("ring capacity must be >= 256 bytes")
        self._buf = memoryview(buf)
        # u64 view over the write/read counters (indices 0 and 1): one
        # aligned 8-byte load/store per access on the hot path, against
        # int.from_bytes/to_bytes on a fresh slice.  Native byte order
        # -- both ends of a ring are forks of the same interpreter.
        self._hdr = self._buf[:16].cast("Q")
        self._cap = int(capacity)
        self._shm = shm
        self._w = self._hdr[0]
        self._r = self._hdr[1]
        self._pending_advance = 0
        self.bytes_written = 0
        self.frames_written = 0
        self.bytes_read = 0
        self.frames_read = 0

    @classmethod
    def create(cls, capacity: int) -> "SpscRing":
        """Allocate a fresh ring in POSIX shared memory."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=HEADER_BYTES + int(capacity)
        )
        shm.buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
        return cls(shm.buf, capacity, shm=shm)

    @classmethod
    def over(cls, capacity: int) -> "SpscRing":
        """In-process ring over a plain bytearray (tests, micro-bench)."""
        return cls(bytearray(HEADER_BYTES + int(capacity)), capacity)

    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def producer_closed(self) -> bool:
        return self._buf[_OFF_WCLOSED] != 0

    def close_producer(self) -> None:
        self._buf[_OFF_WCLOSED] = 1

    def close_consumer(self) -> None:
        self._buf[_OFF_RCLOSED] = 1

    # -- producer --------------------------------------------------------
    def _place(self, kind: int, payload, need: int) -> None:
        """Write one frame at the (pre-checked) head; publish last."""
        buf = self._buf
        cap = self._cap
        w = self._w
        pos = w % cap
        tail = cap - pos
        if tail < need:
            if tail >= _LEN.size:
                _LEN.pack_into(buf, HEADER_BYTES + pos, _PAD)
            w += tail
            pos = 0
        base = HEADER_BYTES + pos
        _LENKIND.pack_into(buf, base, need - _FRAME_OVERHEAD, kind)
        buf[base + 5:base + need] = payload
        self._w = w + need
        self._hdr[0] = self._w
        self.bytes_written += need
        self.frames_written += 1

    def _free_for(self, need: int) -> bool:
        cap = self._cap
        used = self._w - self._hdr[1]
        pos = self._w % cap
        tail = cap - pos
        pad = tail if tail < need else 0
        return cap - used >= pad + need

    def try_write(self, kind: int, payload) -> bool:
        """Write one frame if space permits; never blocks.

        Returns False when the ring is full *or* the frame cannot fit
        at all -- the caller spills either way.
        """
        need = _FRAME_OVERHEAD + len(payload)
        if need > self._cap:
            return False
        if not self._free_for(need):
            return False
        self._place(kind, payload, need)
        return True

    def write(
        self,
        kind: int,
        payload,
        peer_alive: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Blocking write; only safe toward a peer known to be draining."""
        need = _FRAME_OVERHEAD + len(payload)
        if need > self._cap:
            raise ValueError(
                f"frame of {need} bytes exceeds ring capacity {self._cap}"
            )
        if not self._free_for(need):  # fast path: no closure, no loop
            self._block_until(lambda: self._free_for(need), peer_alive, timeout)
        self._place(kind, payload, need)

    # -- consumer --------------------------------------------------------
    def _release(self) -> None:
        if self._pending_advance:
            self._r += self._pending_advance
            self._pending_advance = 0
            self._hdr[1] = self._r

    def _has_data(self) -> bool:
        return self._hdr[0] > self._r + self._pending_advance

    def try_read(self) -> Optional[Tuple[int, memoryview]]:
        """Read one frame if available: (kind, zero-copy payload view)."""
        pending = self._pending_advance
        r = self._r
        if pending:
            r += pending
            self._r = r
            self._pending_advance = 0
            self._hdr[1] = r
        buf = self._buf
        cap = self._cap
        hdr = self._hdr
        while True:
            if hdr[0] <= r:
                return None
            pos = r % cap
            tail = cap - pos
            if tail < _FRAME_OVERHEAD:
                r = self._r = r + tail
                hdr[1] = r
                continue
            base = HEADER_BYTES + pos
            length, kind = _LENKIND.unpack_from(buf, base)
            if length == _PAD:
                r = self._r = r + tail
                hdr[1] = r
                continue
            need = _FRAME_OVERHEAD + length
            # Consumed space is released on the *next* read so the
            # returned view stays valid meanwhile.
            self._pending_advance = need
            self.bytes_read += need
            self.frames_read += 1
            return kind, buf[base + 5:base + need]

    def read(
        self,
        peer_alive: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, memoryview]:
        """Blocking read; RingClosed when the producer is gone and empty."""
        while True:
            frame = self.try_read()
            if frame is not None:
                return frame
            if self.producer_closed and not self._has_data():
                raise RingClosed("producer closed the ring")
            self._block_until(
                self._has_data, peer_alive, timeout, check_producer=True
            )

    # -- waiting ---------------------------------------------------------
    def _block_until(
        self,
        cond: Callable[[], bool],
        peer_alive: Optional[Callable[[], bool]],
        timeout: Optional[float],
        check_producer: bool = False,
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        next_liveness = time.monotonic() + 0.05
        while not cond():
            if check_producer and self.producer_closed and not self._has_data():
                raise RingClosed("producer closed the ring")
            spins += 1
            if spins < 50:
                # Brief politeness window: the peer usually answers
                # within a scheduling quantum on a loaded box.
                time.sleep(0)
            else:
                time.sleep(0.0002 if spins < 500 else 0.002)
            now = time.monotonic()
            if now >= next_liveness:
                next_liveness = now + 0.05
                if peer_alive is not None and not peer_alive():
                    if cond():
                        return
                    raise RingClosed("ring peer died")
                if deadline is not None and now >= deadline:
                    raise RingTimeout("ring operation timed out")

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Detach from the shared block (both sides call this)."""
        self._release()
        self._hdr.release()
        self._buf.release()
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        """Remove the shared block (creator only, after close)."""
        if self._shm is not None:
            self._shm.unlink()


# ----------------------------------------------------------------------
# Delivery envelope + control frames
# ----------------------------------------------------------------------
#: Cross-shard delivery envelope: deliver_time (f64), destination
#: address (i64), per-origin sequence number (u64), origin shard (u8).
#: The (time, origin, seq) triple is the deterministic delivery sort
#: key -- per-origin capture order under an origin-first tie-break is
#: exactly PR 8's (time, origin, global capture order).
ENVELOPE = struct.Struct("!dqQB")

OP_ISSUE = 1
OP_WINDOW = 2
OP_FINISH = 3
OP_STOP = 4

_ISSUE = struct.Struct("!BdIId")      # op, wave_time, lo, hi, fold_time
_WINDOW_HEAD = struct.Struct("!BdI")  # op, w_end, n_spill; then owed u32s
_FINISH = struct.Struct("!Bd")        # op, cut_time
_STOP = struct.Struct("!B")
_OWED = struct.Struct("!I")

# has_next flag, next_time, unresolved, max_end, n_shards; then one
# summary per destination shard: frames written to its data ring this
# reply, total captured deliveries (ring + spill), min delivery time.
_STATE_HEAD = struct.Struct("!BdIdB")
_SUMMARY = struct.Struct("!IId")


def encode_issue(wave_time: float, lo: int, hi: int, fold_time: float) -> bytes:
    return _ISSUE.pack(OP_ISSUE, wave_time, lo, hi, fold_time)


def encode_window(w_end: float, n_spill: int, owed: Sequence[int]) -> bytes:
    parts = [_WINDOW_HEAD.pack(OP_WINDOW, w_end, n_spill)]
    parts.extend(_OWED.pack(n) for n in owed)
    return b"".join(parts)


def encode_finish(cut_time: float) -> bytes:
    return _FINISH.pack(OP_FINISH, cut_time)


def encode_stop() -> bytes:
    return _STOP.pack(OP_STOP)


def decode_ctrl(payload) -> tuple:
    """Parse a K_CTRL payload into the runner's request-tuple shape."""
    if len(payload) < 1:
        raise CodecError("empty control frame")
    op = payload[0]
    if op == OP_ISSUE:
        if len(payload) != _ISSUE.size:
            raise CodecError("malformed issue frame")
        _, wave_time, lo, hi, fold_time = _ISSUE.unpack_from(payload, 0)
        return ("issue", wave_time, lo, hi, fold_time)
    if op == OP_WINDOW:
        if len(payload) < _WINDOW_HEAD.size:
            raise CodecError("malformed window frame")
        _, w_end, n_spill = _WINDOW_HEAD.unpack_from(payload, 0)
        owed = []
        off = _WINDOW_HEAD.size
        if len(payload) - off < 0 or (len(payload) - off) % _OWED.size:
            raise CodecError("malformed window owed-counts")
        while off < len(payload):
            owed.append(_OWED.unpack_from(payload, off)[0])
            off += _OWED.size
        return ("window", w_end, n_spill, owed)
    if op == OP_FINISH:
        if len(payload) != _FINISH.size:
            raise CodecError("malformed finish frame")
        return ("finish", _FINISH.unpack_from(payload, 0)[1])
    if op == OP_STOP:
        return ("stop",)
    raise CodecError(f"unknown control opcode {op}")


def encode_state(
    next_time: Optional[float],
    unresolved: int,
    max_end: float,
    summaries: Sequence[Sequence],
) -> bytes:
    parts = [_STATE_HEAD.pack(
        1 if next_time is not None else 0,
        next_time if next_time is not None else 0.0,
        unresolved,
        max_end,
        len(summaries),
    )]
    for ring_frames, total, min_time in summaries:
        parts.append(_SUMMARY.pack(ring_frames, total, min_time))
    return b"".join(parts)


def decode_state(payload) -> Tuple[Optional[float], int, float, List[Tuple[int, int, float]]]:
    if len(payload) < _STATE_HEAD.size:
        raise CodecError("malformed state frame")
    has_next, next_time, unresolved, max_end, n = _STATE_HEAD.unpack_from(payload, 0)
    if len(payload) != _STATE_HEAD.size + n * _SUMMARY.size:
        raise CodecError("malformed state summaries")
    summaries = []
    off = _STATE_HEAD.size
    for _ in range(n):
        summaries.append(_SUMMARY.unpack_from(payload, off))
        off += _SUMMARY.size
    return (next_time if has_next else None, unresolved, max_end, summaries)


class ShardFrameCodec:
    """Encodes cross-shard deliveries for the rings.

    Wraps the runtime's :func:`default_codec` (wire codec v2: compiled
    per-class struct layouts) behind the delivery envelope; any message
    the codec cannot carry travels as a pickled ``K_PMSG`` frame
    instead, so the ring path is total over message types.
    """

    __slots__ = ("_codec", "_encode", "_decode", "pickled_fallbacks")

    def __init__(self, codec: Optional[MessageCodec] = None) -> None:
        self._codec = codec if codec is not None else default_codec()
        self._encode = self._codec.encode  # bound once: hot-path calls
        self._decode = self._codec.decode
        self.pickled_fallbacks = 0

    def encode_delivery(
        self,
        deliver_time: float,
        dst_address: int,
        seq: int,
        origin_shard: int,
        msg,
        _pack=ENVELOPE.pack,
    ) -> Tuple[int, bytes]:
        head = _pack(deliver_time, dst_address, seq, origin_shard)
        try:
            return K_MSG, head + self._encode(msg)
        except CodecError:
            self.pickled_fallbacks += 1
            return K_PMSG, head + pickle.dumps(
                msg, protocol=pickle.HIGHEST_PROTOCOL
            )

    def decode_delivery(
        self, kind: int, payload, _unpack=ENVELOPE.unpack_from,
        _env_size=ENVELOPE.size,
    ) -> Tuple[float, int, int, int, object]:
        """Inverse of :meth:`encode_delivery`; raises CodecError on any
        malformed or truncated input (never a silent misparse)."""
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        if len(view) < _env_size:
            raise CodecError("truncated delivery envelope")
        deliver_time, dst_address, seq, origin = _unpack(view, 0)
        body = view[_env_size:]
        try:
            if kind == K_MSG:
                msg = self._decode(body)
            elif kind == K_PMSG:
                msg = pickle.loads(bytes(body))
            else:
                raise CodecError(f"not a delivery frame kind: {kind}")
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"malformed delivery body: {exc!r}") from exc
        return deliver_time, dst_address, seq, origin, msg

    @staticmethod
    def peek_destination(payload) -> int:
        """Destination address from an envelope, without decoding."""
        if len(payload) < ENVELOPE.size:
            raise CodecError("truncated delivery envelope")
        return ENVELOPE.unpack_from(payload, 0)[1]


# ----------------------------------------------------------------------
# Worker-side protocol endpoint
# ----------------------------------------------------------------------
class WorkerEndpoint:
    """One worker's view of the shm transport.

    Owns the worker's control ring pair and its row/column of the data
    ring matrix; translates between the runner's request/reply tuples
    and ring frames.  The per-origin sequence counter lives here --
    monotone over the whole run, so the (time, origin, seq) delivery
    key is stable across windows.
    """

    def __init__(
        self,
        shard_index: int,
        n_shards: int,
        ctrl_in: SpscRing,
        ctrl_out: SpscRing,
        rings_in: Dict[int, SpscRing],
        rings_out: Dict[int, SpscRing],
        peer_alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._ctrl_in = ctrl_in
        self._ctrl_out = ctrl_out
        self._rings_in = rings_in
        self._rings_out = rings_out
        self._alive = peer_alive
        self._codec = ShardFrameCodec()
        self._seq = 0
        self.spilled_frames = 0

    # -- inbound ---------------------------------------------------------
    def recv_request(self) -> tuple:
        kind, view = self._ctrl_in.read(peer_alive=self._alive)
        if kind != K_CTRL:
            raise RingError(f"unexpected frame kind {kind} on control ring")
        req = decode_ctrl(view)
        if req[0] != "window":
            return req
        _, w_end, n_spill, owed = req
        spills = []
        for _ in range(n_spill):
            k, v = self._ctrl_in.read(peer_alive=self._alive)
            spills.append((k, bytes(v)))
        return ("window", w_end, owed, spills)

    def drain_inbox(
        self, owed: Sequence[int], spills: Sequence[Tuple[int, bytes]]
    ) -> List[Tuple[float, int, object]]:
        """Consume exactly the frames the coordinator accounted for.

        The owed counts come from state replies the coordinator has
        already collected, so every counted frame is fully published --
        the reads below never wait.  Draining by count (instead of
        "whatever is there") is what keeps the window contents exact
        while other workers are concurrently writing *next*-round
        frames into the same rings.
        """
        decode = self._codec.decode_delivery
        entries = []
        for origin, ring in self._rings_in.items():
            for _ in range(owed[origin]):
                kind, view = ring.read(peer_alive=self._alive)
                t, dst, seq, org, msg = decode(kind, view)
                entries.append((t, org, seq, dst, msg))
        for kind, payload in spills:
            t, dst, seq, org, msg = decode(kind, payload)
            entries.append((t, org, seq, dst, msg))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return [(e[0], e[3], e[4]) for e in entries]

    # -- outbound --------------------------------------------------------
    def send_state(self, state: dict) -> None:
        """Distribute the captured outbox to data rings; reply K_STATE."""
        summaries = [[0, 0, math.inf] for _ in range(self.n_shards)]
        spill = []
        encode = self._codec.encode_delivery
        me = self.shard_index
        for deliver_time, dst_shard, dst_address, msg in state["outbox"]:
            kind, frame = encode(deliver_time, dst_address, self._seq, me, msg)
            self._seq += 1
            s = summaries[dst_shard]
            s[1] += 1
            if deliver_time < s[2]:
                s[2] = deliver_time
            if self._rings_out[dst_shard].try_write(kind, frame):
                s[0] += 1
            else:
                spill.append((kind, frame))
        for kind, frame in spill:
            self._ctrl_out.write(kind, frame, peer_alive=self._alive)
        self.spilled_frames += len(spill)
        self._ctrl_out.write(
            K_STATE,
            encode_state(
                state["next_time"], state["unresolved"], state["max_end"],
                summaries,
            ),
            peer_alive=self._alive,
        )

    def send_blob(self, obj) -> None:
        """Stream one pickled object in chunks (finish export)."""
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        off = 0
        while len(blob) - off > _BLOB_CHUNK:
            self._ctrl_out.write(
                K_BLOBC, blob[off:off + _BLOB_CHUNK], peer_alive=self._alive
            )
            off += _BLOB_CHUNK
        self._ctrl_out.write(K_BLOB, blob[off:], peer_alive=self._alive)

    def send_error(self, text: str) -> None:
        try:
            self._ctrl_out.write(K_ERR, text.encode(), peer_alive=self._alive)
        except RingError:  # pragma: no cover - coordinator already gone
            pass

    # -- accounting / lifecycle -----------------------------------------
    def counters(self) -> Dict[str, int]:
        data_out = list(self._rings_out.values())
        data_in = list(self._rings_in.values())
        return {
            "data_bytes_out": sum(r.bytes_written for r in data_out),
            "data_frames_out": sum(r.frames_written for r in data_out),
            "data_bytes_in": sum(r.bytes_read for r in data_in),
            "data_frames_in": sum(r.frames_read for r in data_in),
            "ctrl_bytes_out": self._ctrl_out.bytes_written,
            "ctrl_bytes_in": self._ctrl_in.bytes_read,
            "spilled_frames": self.spilled_frames,
            "pickled_fallbacks": self._codec.pickled_fallbacks,
        }

    def close(self) -> None:
        for ring in self._rings_out.values():
            ring.close_producer()
        self._ctrl_out.close_producer()
