"""Sharded cell executor: one cell, N workers, bit-identical results.

:func:`run_cell_sharded` runs the same five phases as
:func:`repro.experiments.common.run_cell` but splits the lookup phase
across shard workers:

1. **Replicate** -- build + populate + crash + settle are deterministic
   functions of (config, scale), so they run once and every worker gets
   the finished state: the fork backend builds in the parent and forks
   (copy-on-write, no pickling); the inline backend -- used where fork
   is unavailable, and by the sync unit tests -- builds one replica per
   logical shard from the same seed.
2. **Partition** -- whole s-networks are assigned to shards
   (:mod:`repro.shard.partition`); each worker compacts the peers it
   does not own to stubs and installs the transport capture hook.
3. **Conservative lookup waves** -- the coordinator replays
   ``run_lookups``'s wave pacing: it pins every shard's clock to the
   wave timestamp, lets the owners issue their share, then negotiates
   null-message windows (:mod:`repro.shard.sync`) until the wave
   resolves.  Cross-shard messages travel coordinator-mediated, sorted
   by (delivery time, origin shard, capture order), so every delivery
   happens in global timestamp order.
4. **Merge** -- per-shard registries are stitched back into one
   :class:`~repro.core.lookup.QueryRegistry` in global pair order, with
   foreign contact counts folded in and the metric overrun past the
   single-process stopping point trimmed
   (:meth:`~repro.shard.state.ShardQueryRegistry.trim`), which is what
   makes the resulting :class:`CellResult` bit-identical to
   ``run_cell``'s.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import pickle
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SEARCH_WALK, SNETWORK_BITTORRENT, HybridConfig
from ..core.hybrid import HybridSystem
from ..core.lookup import PENDING, QueryRecord, QueryRegistry
from ..perf import PhaseSampler, memory_info
from ..workloads.keys import KeyWorkload
from .ipc import (
    CTRL_RING_BYTES,
    K_BLOB,
    K_BLOBC,
    K_CTRL,
    K_ERR,
    K_MSG,
    K_PMSG,
    K_STATE,
    RingClosed,
    ShardFrameCodec,
    SpscRing,
    WorkerEndpoint,
    decode_state,
    encode_finish,
    encode_issue,
    encode_stop,
    encode_window,
    resolve_data_ring_bytes,
)
from .partition import partition_snetworks, shard_loads
from .state import SHARD_ID_BITS, CompactPeerState, ShardQueryRegistry
from .sync import NullMessageSync, ShardSyncError
from .worker import ShardWorker, serve, serve_shm

__all__ = [
    "SHARDS_ENV",
    "SHARD_BACKEND_ENV",
    "SHARDS_STRICT_ENV",
    "resolve_shards",
    "resolve_shard_backend",
    "resolve_shards_strict",
    "check_shardable",
    "run_cell_sharded",
    "merge_registries",
]

#: Default shard count for drivers that take ``--shards`` (0/unset = 1).
SHARDS_ENV = "REPRO_SHARDS"

#: Cross-shard transport of the fork backend: "pipe" (pickled tuples
#: over multiprocessing pipes) or "shm" (struct-encoded frames in
#: shared-memory rings, :mod:`repro.shard.ipc`).
SHARD_BACKEND_ENV = "REPRO_SHARD_BACKEND"

#: When truthy, an unshardable cell raises instead of silently falling
#: back to single-process execution (see ``run_cell``).
SHARDS_STRICT_ENV = "REPRO_SHARDS_STRICT"


def resolve_shards(value: Optional[int] = None) -> int:
    """Shard count from an explicit value or the REPRO_SHARDS variable."""
    if value is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        value = int(raw) if raw else 1
    value = int(value)
    if value < 1:
        raise ValueError(f"shard count must be >= 1, got {value}")
    return value


def resolve_shard_backend(value: Optional[str] = None) -> str:
    """Backend from an explicit value or REPRO_SHARD_BACKEND (default pipe)."""
    if value is None:
        value = os.environ.get(SHARD_BACKEND_ENV, "").strip() or "pipe"
    if value not in ("pipe", "shm"):
        raise ValueError(f"unknown shard backend {value!r} (pipe|shm)")
    return value


def resolve_shards_strict(value: Optional[bool] = None) -> bool:
    """Strict-mode flag from an explicit value or REPRO_SHARDS_STRICT."""
    if value is not None:
        return bool(value)
    raw = os.environ.get(SHARDS_STRICT_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no")


def check_shardable(config: HybridConfig) -> None:
    """Reject configurations the sharded executor does not support.

    The partition argument requires the lookup phase to be the only
    thing running: periodic protocol machinery (heartbeats, replica
    anti-entropy) and the alternative data planes that keep background
    state flowing are out of scope and fail loudly here rather than
    diverging silently.
    """
    problems = []
    if config.heartbeats_enabled:
        problems.append("heartbeats_enabled")
    if config.replication_factor > 1:
        problems.append("replication_factor > 1")
    if config.replica_sync_period > 0:
        problems.append("replica_sync_period > 0")
    if config.search_mode == SEARCH_WALK:
        problems.append("search_mode == 'walk'")
    if config.snetwork_style == SNETWORK_BITTORRENT:
        problems.append("snetwork_style == 'bittorrent'")
    if getattr(config, "swarm_enabled", False):
        problems.append("swarm_enabled")
    if problems:
        raise ValueError(
            "configuration not supported by the sharded executor: "
            + ", ".join(problems)
        )


# ----------------------------------------------------------------------
# Replicated construction phases (must mirror run_cell exactly)
# ----------------------------------------------------------------------
def _build_phases(
    config: HybridConfig,
    scale,
    crash_fraction: float,
    settle_after_crash: float,
) -> Tuple[HybridSystem, List[Tuple[int, str]]]:
    """Build + populate + crash + settle + sample, as run_cell does."""
    system = HybridSystem(
        config, n_peers=scale.n_peers, seed=scale.seed,
        queries=ShardQueryRegistry(),
    )
    if getattr(scale, "bulk_build", False):
        system.build_bulk()
    else:
        system.build()
    addresses = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        scale.n_keys, addresses, system.rngs.stream("workload")
    )
    system.populate(workload.store_plan())
    if crash_fraction > 0.0:
        system.crash_random_fraction(crash_fraction)
        system.settle(settle_after_crash)
    alive = [p.address for p in system.alive_peers()]
    pairs = list(workload.sample_lookups(scale.n_lookups, alive))
    return system, pairs


# ----------------------------------------------------------------------
# Worker backends
# ----------------------------------------------------------------------
class _Handle:
    """Uniform request/reply surface over a worker backend."""

    def send(self, request: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> dict:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


class _InlineHandle(_Handle):
    """A logical shard living in this process (no fork available)."""

    def __init__(self, worker: ShardWorker) -> None:
        self._worker = worker
        self._reply: Optional[tuple] = None

    def send(self, request: tuple) -> None:
        self._reply = self._worker.handle(request)

    def recv(self) -> dict:
        status, payload = self._reply
        self._reply = None
        return payload

    def stop(self) -> None:
        self._reply = None


def _worker_failure(shard: int, detail: str) -> Exception:
    """A shard worker failed or died: raise with the shard named."""
    from ..exec.pool import CellExecutionError

    return CellExecutionError(f"shard {shard}", detail)


class _ForkHandle(_Handle):
    """A forked worker process behind a pipe."""

    def __init__(self, conn, process, shard: int) -> None:
        self._conn = conn
        self._process = process
        self._shard = shard

    def _dead(self) -> Exception:
        code = self._process.exitcode
        return _worker_failure(
            self._shard, f"worker process died (exit code {code})"
        )

    def send(self, request: tuple) -> None:
        try:
            self._conn.send(request)
        except (BrokenPipeError, OSError):
            raise self._dead() from None

    def recv(self) -> dict:
        # Poll instead of a bare blocking recv: a worker killed
        # mid-window must surface as a named failure, not a hang.
        while not self._conn.poll(0.2):
            if not self._process.is_alive() and not self._conn.poll(0):
                raise self._dead()
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError):
            raise self._dead() from None
        if status != "ok":
            raise _worker_failure(self._shard, payload)
        return payload

    def stop(self) -> None:
        try:
            self._conn.send(("stop",))
            self._conn.close()
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)


def _serve_forked(conn, system, shard_index, n_shards, owner, pairs) -> None:
    """Entry point of a forked worker (inherits the built system)."""
    worker = ShardWorker(system, shard_index, n_shards, owner, pairs)
    worker.compact(retain=True)
    try:
        serve(conn, worker)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Shared-memory backend
# ----------------------------------------------------------------------
class _ShmHub:
    """Coordinator-side state of the shm transport.

    Owns every ring: one control pair per worker plus the ``i -> j``
    data-ring matrix the workers exchange messages through.  Also
    buffers spilled frames (data ring full) and the per-destination
    counts of ring frames each worker is owed at its next window --
    draining by exact count is what keeps window contents deterministic
    while producers keep writing next-round frames concurrently.
    """

    def __init__(self, shards: int, owner: Dict[int, int]) -> None:
        self.shards = shards
        self.owner = owner
        data_bytes = resolve_data_ring_bytes()
        self.c2w = [SpscRing.create(CTRL_RING_BYTES) for _ in range(shards)]
        self.w2c = [SpscRing.create(CTRL_RING_BYTES) for _ in range(shards)]
        self.data: Dict[Tuple[int, int], SpscRing] = {
            (i, j): SpscRing.create(data_bytes)
            for i in range(shards)
            for j in range(shards)
            if i != j
        }
        # Spilled frames awaiting forwarding, per destination shard.
        self.spill: List[List[Tuple[int, bytes]]] = [[] for _ in range(shards)]
        # owed[dst][origin]: data-ring frames dst must drain at its
        # next window, accumulated from origin's state replies.
        self.owed: List[List[int]] = [[0] * shards for _ in range(shards)]
        self.spilled_frames = 0

    def endpoint(self, shard: int, peer_alive) -> WorkerEndpoint:
        """The worker-side view of shard ``shard`` (used post-fork)."""
        return WorkerEndpoint(
            shard,
            self.shards,
            ctrl_in=self.c2w[shard],
            ctrl_out=self.w2c[shard],
            rings_in={
                i: self.data[(i, shard)]
                for i in range(self.shards) if i != shard
            },
            rings_out={
                j: self.data[(shard, j)]
                for j in range(self.shards) if j != shard
            },
            peer_alive=peer_alive,
        )

    def ipc_totals(self, worker_counters: Sequence[Optional[dict]]) -> dict:
        totals = {
            "backend": "shm",
            "data_bytes": 0,
            "data_frames": 0,
            "ctrl_bytes": 0,
            "spilled_frames": self.spilled_frames,
            "pickled_fallbacks": 0,
        }
        for c in worker_counters:
            if not c:
                continue
            totals["data_bytes"] += c["data_bytes_out"]
            totals["data_frames"] += c["data_frames_out"]
            totals["ctrl_bytes"] += c["ctrl_bytes_out"] + c["ctrl_bytes_in"]
            totals["pickled_fallbacks"] += c["pickled_fallbacks"]
        return totals

    def close(self) -> None:
        for ring in (*self.c2w, *self.w2c, *self.data.values()):
            try:
                ring.close()
                ring.unlink()
            except Exception:  # pragma: no cover - already torn down
                pass


class _ShmHandle(_Handle):
    """A forked worker behind the shared-memory rings."""

    def __init__(self, hub: _ShmHub, shard: int, process) -> None:
        self._hub = hub
        self._shard = shard
        self._process = process
        self._alive = process.is_alive

    def _dead(self, cause: Exception) -> Exception:
        code = self._process.exitcode
        return _worker_failure(
            self._shard,
            f"worker process died (exit code {code}): {cause}",
        )

    def send(self, request: tuple) -> None:
        hub = self._hub
        ring = hub.c2w[self._shard]
        op = request[0]
        try:
            if op == "issue":
                ring.write(K_CTRL, encode_issue(*request[1:]), self._alive)
            elif op == "window":
                # The inbox argument is pipe-mode only; here the spill
                # buffer and owed counts replace it (and are reset --
                # the worker drains everything at this window).
                spills = hub.spill[self._shard]
                hub.spill[self._shard] = []
                owed = hub.owed[self._shard]
                hub.owed[self._shard] = [0] * hub.shards
                ring.write(
                    K_CTRL,
                    encode_window(request[1], len(spills), owed),
                    self._alive,
                )
                for kind, frame in spills:
                    ring.write(kind, frame, self._alive)
            elif op == "finish":
                ring.write(K_CTRL, encode_finish(request[1]), self._alive)
            else:
                raise ValueError(f"unknown shard request {op!r}")
        except RingClosed as exc:
            raise self._dead(exc) from None

    def recv(self) -> dict:
        hub = self._hub
        ring = hub.w2c[self._shard]
        blob_parts: List[bytes] = []
        try:
            while True:
                kind, view = ring.read(peer_alive=self._alive)
                if kind in (K_MSG, K_PMSG):
                    # A spilled delivery: buffer for the destination's
                    # next window.  Its count/min-time already ride in
                    # the state summary, so only routing happens here.
                    dst = hub.owner[ShardFrameCodec.peek_destination(view)]
                    hub.spill[dst].append((kind, bytes(view)))
                    hub.spilled_frames += 1
                elif kind == K_STATE:
                    next_time, unresolved, max_end, summaries = decode_state(view)
                    for dst, (ring_frames, _total, _min_t) in enumerate(summaries):
                        hub.owed[dst][self._shard] += ring_frames
                    return {
                        "next_time": next_time,
                        "unresolved": unresolved,
                        "max_end": max_end,
                        "outbox": [],
                        "summaries": summaries,
                    }
                elif kind == K_BLOBC:
                    blob_parts.append(bytes(view))
                elif kind == K_BLOB:
                    blob_parts.append(bytes(view))
                    return pickle.loads(b"".join(blob_parts))
                elif kind == K_ERR:
                    raise _worker_failure(self._shard, bytes(view).decode())
                else:
                    raise RuntimeError(
                        f"unexpected frame kind {kind} from shard {self._shard}"
                    )
        except RingClosed as exc:
            raise self._dead(exc) from None

    def stop(self) -> None:
        try:
            self._hub.c2w[self._shard].write(
                K_CTRL, encode_stop(), self._alive, timeout=5.0
            )
        except Exception:
            pass
        self._hub.c2w[self._shard].close_producer()
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)


def _serve_forked_shm(hub, system, shard_index, n_shards, owner, pairs) -> None:
    """Entry point of a forked worker on the shm backend."""
    parent = os.getppid()
    endpoint = hub.endpoint(shard_index, peer_alive=lambda: os.getppid() == parent)
    worker = ShardWorker(system, shard_index, n_shards, owner, pairs)
    worker.compact(retain=True)
    serve_shm(endpoint, worker)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _coordinate(
    handles: Sequence[_Handle],
    sync: NullMessageSync,
    n_pairs: int,
    wave_size: int,
    start_time: float,
) -> Tuple[float, int, int]:
    """Drive the wave/window protocol; returns (cut_time, waves, rounds).

    ``cut_time`` is the global resolution timestamp of the last wave --
    exactly where the single-process run's clock stops.
    """
    def absorb(shard: int, reply: dict) -> None:
        """Fold one state reply into the sync bookkeeping.

        Pipe/inline replies carry the captured messages themselves;
        shm replies carry per-destination (count, min time) summaries
        while the bodies sit in the data rings.
        """
        sync.note_state(shard, reply["next_time"])
        summaries = reply.get("summaries")
        if summaries is None:
            sync.add_messages(shard, reply["outbox"])
        else:
            for dst, (_ring_frames, total, min_time) in enumerate(summaries):
                sync.add_summary(dst, total, min_time)

    n_shards = len(handles)
    wave_time = start_time
    fold_time = float("-inf")
    global_max_end = start_time
    waves = rounds = 0
    lo = 0
    while lo < n_pairs:
        hi = min(lo + wave_size, n_pairs)
        unresolved = 0
        for handle in handles:
            handle.send(("issue", wave_time, lo, hi, fold_time))
        for shard, handle in enumerate(handles):
            reply = handle.recv()
            absorb(shard, reply)
            unresolved += reply["unresolved"]
            if reply["max_end"] > global_max_end:
                global_max_end = reply["max_end"]
        while unresolved > 0:
            w_end = sync.window_end()
            if w_end is None:
                raise ShardSyncError(
                    f"{unresolved} lookups unresolved but no shard has "
                    "pending events or in-flight messages"
                )
            for shard, handle in enumerate(handles):
                handle.send(("window", w_end, sync.take_inbox(shard)))
            unresolved = 0
            for shard, handle in enumerate(handles):
                reply = handle.recv()
                absorb(shard, reply)
                unresolved += reply["unresolved"]
                if reply["max_end"] > global_max_end:
                    global_max_end = reply["max_end"]
            rounds += 1
        wave_time = fold_time = global_max_end
        waves += 1
        lo = hi
    return global_max_end, waves, rounds


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_registries(
    shard_results: Sequence[dict],
    pairs: Sequence[Tuple[int, str]],
    owner: Dict[int, int],
) -> QueryRegistry:
    """Stitch per-shard registries into one, in global pair order.

    Each shard started its owned lookups in global pair order, so
    walking the pairs and consuming each owner's record stream in turn
    reproduces the single-process id assignment exactly; foreign
    contact counts are then folded onto the records they belong to.
    """
    merged = QueryRegistry()
    streams = [iter(r["records"]) for r in shard_results]
    # (shard, local index) -> global query id, for foreign fold-in.
    to_global: List[Dict[int, int]] = [dict() for _ in shard_results]
    for g, (origin, key) in enumerate(pairs):
        shard = owner[origin]
        (
            local_idx, rec_origin, rec_key, d_id, start_time, local,
            status, end_time, holder, refloods, via_bypass, hops,
        ) = next(streams[shard])
        if rec_origin != origin or rec_key != key:
            raise RuntimeError(
                f"shard {shard} record stream out of order at pair {g}: "
                f"expected ({origin}, {key!r}), got ({rec_origin}, {rec_key!r})"
            )
        to_global[shard][local_idx] = g
        rec = QueryRecord(
            query_id=g, origin=origin, key=key, d_id=d_id,
            start_time=start_time, local=local, status=status,
            end_time=end_time, holder=holder, refloods=refloods,
            via_bypass=via_bypass, hops=hops, registry=merged,
        )
        merged._records[g] = rec
        merged._contacts.append(shard_results[shard]["contacts"][local_idx])
        merged._duplicates.append(shard_results[shard]["duplicates"][local_idx])
        if status == PENDING:
            merged.unresolved += 1
    merged._next_id = len(pairs)
    for result in shard_results:
        for kind, column in (
            ("foreign_contacts", merged._contacts),
            ("foreign_duplicates", merged._duplicates),
        ):
            for qid, count in result[kind].items():
                shard = qid >> SHARD_ID_BITS
                local_idx = qid - (shard << SHARD_ID_BITS)
                column[to_global[shard][local_idx]] += count
    return merged


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_cell_sharded(
    config: HybridConfig,
    scale,
    crash_fraction: float = 0.0,
    settle_after_crash: float = 30_000.0,
    shards: int = 2,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    info_out: Optional[dict] = None,
):
    """Run one sweep cell across ``shards`` workers; returns CellResult.

    ``mode`` selects the worker substrate: "fork" (build once, fork
    workers -- the default where the platform supports it), "inline"
    (logical shards in-process, each building its own replica; slower,
    used for tests and as the portable fallback).  ``backend`` selects
    the fork-mode transport: "pipe" (pickled tuples over
    multiprocessing pipes) or "shm" (struct-encoded frames in
    shared-memory rings); defaults to ``REPRO_SHARD_BACKEND`` or
    "pipe", and is ignored inline.  ``info_out`` receives shard
    diagnostics (loads, window rounds, event/message totals, per-phase
    memory samples, IPC byte counts).
    """
    from ..experiments.common import CellResult

    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    check_shardable(config)
    backend = resolve_shard_backend(backend)
    if mode is None:
        # Daemonic processes (e.g. some pool workers) cannot fork
        # children; the inline backend is the universal fallback.
        can_fork = (
            "fork" in multiprocessing.get_all_start_methods()
            and not multiprocessing.current_process().daemon
        )
        mode = "fork" if can_fork else "inline"
    if mode not in ("fork", "inline"):
        raise ValueError(f"unknown shard mode {mode!r}")

    sampler = PhaseSampler()
    build_t0 = _time.perf_counter()
    system, pairs = _build_phases(
        config, scale, crash_fraction, settle_after_crash
    )
    build_wall = _time.perf_counter() - build_t0
    sampler.mark("build")

    compact = CompactPeerState(system)
    owner = partition_snetworks(compact, shards, system.server.address)
    n_t, n_s = compact.counts()
    lookahead = max(
        system.router.min_edge_latency(), system.transport.min_latency
    )
    start_time = system.engine.now
    build_events = system.engine.events_executed
    sampler.mark("partition")

    lookup_t0 = _time.perf_counter()
    handles: List[_Handle] = []
    hub: Optional[_ShmHub] = None
    frozen = False
    try:
        if mode == "fork":
            ctx = multiprocessing.get_context("fork")
            if backend == "shm":
                hub = _ShmHub(shards, owner)
            # Move every live object to the permanent generation before
            # forking: collector passes in the children would otherwise
            # touch gc headers across the whole inherited heap and
            # privatise the copy-on-write pages it lives in.
            gc.collect()
            gc.freeze()
            frozen = True
            for shard in range(shards):
                if hub is not None:
                    process = ctx.Process(
                        target=_serve_forked_shm,
                        args=(hub, system, shard, shards, owner, pairs),
                        daemon=True,
                    )
                    process.start()
                    handles.append(_ShmHandle(hub, shard, process))
                else:
                    parent_conn, child_conn = ctx.Pipe()
                    process = ctx.Process(
                        target=_serve_forked,
                        args=(child_conn, system, shard, shards, owner, pairs),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    handles.append(_ForkHandle(parent_conn, process, shard))
        else:
            backend = "inline"
            for shard in range(shards):
                if shard == 0:
                    replica = system
                else:
                    replica, _ = _build_phases(
                        config, scale, crash_fraction, settle_after_crash
                    )
                worker = ShardWorker(replica, shard, shards, owner, pairs)
                worker.compact()
                handles.append(_InlineHandle(worker))
        sampler.mark("workers_up")

        sync = NullMessageSync(shards, lookahead)
        cut_time, waves, rounds = _coordinate(
            handles, sync, len(pairs), scale.wave_size, start_time
        )
        results = []
        for handle in handles:
            handle.send(("finish", cut_time))
        for handle in handles:
            results.append(handle.recv())
    finally:
        for handle in handles:
            handle.stop()
        if frozen:
            gc.unfreeze()
        if hub is not None:
            hub.close()
    lookup_wall = _time.perf_counter() - lookup_t0
    ipc = (
        hub.ipc_totals([r.get("ipc") for r in results])
        if hub is not None
        else {"backend": backend}
    )
    sampler.mark(
        "lookup",
        ipc_bytes=ipc.get("data_bytes", 0) + ipc.get("ctrl_bytes", 0),
    )

    merged = merge_registries(results, pairs, owner)
    stats = merged.stats()
    sampler.mark("merge")
    if info_out is not None:
        try:
            import resource
            parent_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            parent_rss_kb = 0
        info_out.update({
            "shards": shards,
            "mode": mode,
            "backend": backend,
            "lookahead_ms": lookahead,
            "waves": waves,
            "window_rounds": rounds,
            "cut_time_ms": cut_time,
            "shard_loads": shard_loads(compact, owner, shards),
            "build_events": build_events,
            "lookup_events_per_shard": [r["events"] for r in results],
            "events_total": build_events + sum(r["events"] for r in results),
            "messages_sent": [r["messages_sent"] for r in results],
            "messages_delivered": [r["messages_delivered"] for r in results],
            "build_wall_seconds": build_wall,
            "lookup_wall_seconds": lookup_wall,
            "peak_rss_kb": {
                "parent": parent_rss_kb,
                "workers": [r["peak_rss_kb"] for r in results],
            },
            "memory": {
                "parent": memory_info(),
                "parent_phases": sampler.as_list(),
                "workers": [r.get("mem") for r in results],
            },
            "ipc": ipc,
            "registry": merged,
            "peer_state": compact,
        })
    return CellResult(
        p_s=config.p_s,
        failure_ratio=stats.failure_ratio,
        mean_latency=stats.mean_latency,
        median_latency=stats.median_latency,
        connum=stats.connum,
        mean_contacts=stats.mean_contacts_per_lookup,
        successes=stats.successes,
        failures=stats.failures,
        n_t_peers=n_t,
        n_s_peers=n_s,
    )
