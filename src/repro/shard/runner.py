"""Sharded cell executor: one cell, N workers, bit-identical results.

:func:`run_cell_sharded` runs the same five phases as
:func:`repro.experiments.common.run_cell` but splits the lookup phase
across shard workers:

1. **Replicate** -- build + populate + crash + settle are deterministic
   functions of (config, scale), so they run once and every worker gets
   the finished state: the fork backend builds in the parent and forks
   (copy-on-write, no pickling); the inline backend -- used where fork
   is unavailable, and by the sync unit tests -- builds one replica per
   logical shard from the same seed.
2. **Partition** -- whole s-networks are assigned to shards
   (:mod:`repro.shard.partition`); each worker compacts the peers it
   does not own to stubs and installs the transport capture hook.
3. **Conservative lookup waves** -- the coordinator replays
   ``run_lookups``'s wave pacing: it pins every shard's clock to the
   wave timestamp, lets the owners issue their share, then negotiates
   null-message windows (:mod:`repro.shard.sync`) until the wave
   resolves.  Cross-shard messages travel coordinator-mediated, sorted
   by (delivery time, origin shard, capture order), so every delivery
   happens in global timestamp order.
4. **Merge** -- per-shard registries are stitched back into one
   :class:`~repro.core.lookup.QueryRegistry` in global pair order, with
   foreign contact counts folded in and the metric overrun past the
   single-process stopping point trimmed
   (:meth:`~repro.shard.state.ShardQueryRegistry.trim`), which is what
   makes the resulting :class:`CellResult` bit-identical to
   ``run_cell``'s.
"""

from __future__ import annotations

import multiprocessing
import os
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SEARCH_WALK, SNETWORK_BITTORRENT, HybridConfig
from ..core.hybrid import HybridSystem
from ..core.lookup import PENDING, QueryRecord, QueryRegistry
from ..workloads.keys import KeyWorkload
from .partition import partition_snetworks, shard_loads
from .state import SHARD_ID_BITS, CompactPeerState, ShardQueryRegistry
from .sync import NullMessageSync, ShardSyncError
from .worker import ShardWorker, serve

__all__ = [
    "SHARDS_ENV",
    "resolve_shards",
    "check_shardable",
    "run_cell_sharded",
    "merge_registries",
]

#: Default shard count for drivers that take ``--shards`` (0/unset = 1).
SHARDS_ENV = "REPRO_SHARDS"


def resolve_shards(value: Optional[int] = None) -> int:
    """Shard count from an explicit value or the REPRO_SHARDS variable."""
    if value is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        value = int(raw) if raw else 1
    value = int(value)
    if value < 1:
        raise ValueError(f"shard count must be >= 1, got {value}")
    return value


def check_shardable(config: HybridConfig) -> None:
    """Reject configurations the sharded executor does not support.

    The partition argument requires the lookup phase to be the only
    thing running: periodic protocol machinery (heartbeats, replica
    anti-entropy) and the alternative data planes that keep background
    state flowing are out of scope and fail loudly here rather than
    diverging silently.
    """
    problems = []
    if config.heartbeats_enabled:
        problems.append("heartbeats_enabled")
    if config.replication_factor > 1:
        problems.append("replication_factor > 1")
    if config.replica_sync_period > 0:
        problems.append("replica_sync_period > 0")
    if config.search_mode == SEARCH_WALK:
        problems.append("search_mode == 'walk'")
    if config.snetwork_style == SNETWORK_BITTORRENT:
        problems.append("snetwork_style == 'bittorrent'")
    if getattr(config, "swarm_enabled", False):
        problems.append("swarm_enabled")
    if problems:
        raise ValueError(
            "configuration not supported by the sharded executor: "
            + ", ".join(problems)
        )


# ----------------------------------------------------------------------
# Replicated construction phases (must mirror run_cell exactly)
# ----------------------------------------------------------------------
def _build_phases(
    config: HybridConfig,
    scale,
    crash_fraction: float,
    settle_after_crash: float,
) -> Tuple[HybridSystem, List[Tuple[int, str]]]:
    """Build + populate + crash + settle + sample, as run_cell does."""
    system = HybridSystem(
        config, n_peers=scale.n_peers, seed=scale.seed,
        queries=ShardQueryRegistry(),
    )
    if getattr(scale, "bulk_build", False):
        system.build_bulk()
    else:
        system.build()
    addresses = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        scale.n_keys, addresses, system.rngs.stream("workload")
    )
    system.populate(workload.store_plan())
    if crash_fraction > 0.0:
        system.crash_random_fraction(crash_fraction)
        system.settle(settle_after_crash)
    alive = [p.address for p in system.alive_peers()]
    pairs = list(workload.sample_lookups(scale.n_lookups, alive))
    return system, pairs


# ----------------------------------------------------------------------
# Worker backends
# ----------------------------------------------------------------------
class _Handle:
    """Uniform request/reply surface over a worker backend."""

    def send(self, request: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> dict:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


class _InlineHandle(_Handle):
    """A logical shard living in this process (no fork available)."""

    def __init__(self, worker: ShardWorker) -> None:
        self._worker = worker
        self._reply: Optional[tuple] = None

    def send(self, request: tuple) -> None:
        self._reply = self._worker.handle(request)

    def recv(self) -> dict:
        status, payload = self._reply
        self._reply = None
        return payload

    def stop(self) -> None:
        self._reply = None


class _ForkHandle(_Handle):
    """A forked worker process behind a pipe."""

    def __init__(self, conn, process) -> None:
        self._conn = conn
        self._process = process

    def send(self, request: tuple) -> None:
        self._conn.send(request)

    def recv(self) -> dict:
        status, payload = self._conn.recv()
        if status != "ok":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def stop(self) -> None:
        try:
            self._conn.send(("stop",))
            self._conn.close()
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)


def _serve_forked(conn, system, shard_index, n_shards, owner, pairs) -> None:
    """Entry point of a forked worker (inherits the built system)."""
    worker = ShardWorker(system, shard_index, n_shards, owner, pairs)
    worker.compact()
    try:
        serve(conn, worker)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _coordinate(
    handles: Sequence[_Handle],
    sync: NullMessageSync,
    n_pairs: int,
    wave_size: int,
    start_time: float,
) -> Tuple[float, int, int]:
    """Drive the wave/window protocol; returns (cut_time, waves, rounds).

    ``cut_time`` is the global resolution timestamp of the last wave --
    exactly where the single-process run's clock stops.
    """
    n_shards = len(handles)
    wave_time = start_time
    fold_time = float("-inf")
    global_max_end = start_time
    waves = rounds = 0
    lo = 0
    while lo < n_pairs:
        hi = min(lo + wave_size, n_pairs)
        unresolved = 0
        for handle in handles:
            handle.send(("issue", wave_time, lo, hi, fold_time))
        for shard, handle in enumerate(handles):
            reply = handle.recv()
            sync.note_state(shard, reply["next_time"])
            sync.add_messages(shard, reply["outbox"])
            unresolved += reply["unresolved"]
            if reply["max_end"] > global_max_end:
                global_max_end = reply["max_end"]
        while unresolved > 0:
            w_end = sync.window_end()
            if w_end is None:
                raise ShardSyncError(
                    f"{unresolved} lookups unresolved but no shard has "
                    "pending events or in-flight messages"
                )
            for shard, handle in enumerate(handles):
                handle.send(("window", w_end, sync.take_inbox(shard)))
            unresolved = 0
            for shard, handle in enumerate(handles):
                reply = handle.recv()
                sync.note_state(shard, reply["next_time"])
                sync.add_messages(shard, reply["outbox"])
                unresolved += reply["unresolved"]
                if reply["max_end"] > global_max_end:
                    global_max_end = reply["max_end"]
            rounds += 1
        wave_time = fold_time = global_max_end
        waves += 1
        lo = hi
    return global_max_end, waves, rounds


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_registries(
    shard_results: Sequence[dict],
    pairs: Sequence[Tuple[int, str]],
    owner: Dict[int, int],
) -> QueryRegistry:
    """Stitch per-shard registries into one, in global pair order.

    Each shard started its owned lookups in global pair order, so
    walking the pairs and consuming each owner's record stream in turn
    reproduces the single-process id assignment exactly; foreign
    contact counts are then folded onto the records they belong to.
    """
    merged = QueryRegistry()
    streams = [iter(r["records"]) for r in shard_results]
    # (shard, local index) -> global query id, for foreign fold-in.
    to_global: List[Dict[int, int]] = [dict() for _ in shard_results]
    for g, (origin, key) in enumerate(pairs):
        shard = owner[origin]
        (
            local_idx, rec_origin, rec_key, d_id, start_time, local,
            status, end_time, holder, refloods, via_bypass, hops,
        ) = next(streams[shard])
        if rec_origin != origin or rec_key != key:
            raise RuntimeError(
                f"shard {shard} record stream out of order at pair {g}: "
                f"expected ({origin}, {key!r}), got ({rec_origin}, {rec_key!r})"
            )
        to_global[shard][local_idx] = g
        rec = QueryRecord(
            query_id=g, origin=origin, key=key, d_id=d_id,
            start_time=start_time, local=local, status=status,
            end_time=end_time, holder=holder, refloods=refloods,
            via_bypass=via_bypass, hops=hops, registry=merged,
        )
        merged._records[g] = rec
        merged._contacts.append(shard_results[shard]["contacts"][local_idx])
        merged._duplicates.append(shard_results[shard]["duplicates"][local_idx])
        if status == PENDING:
            merged.unresolved += 1
    merged._next_id = len(pairs)
    for result in shard_results:
        for kind, column in (
            ("foreign_contacts", merged._contacts),
            ("foreign_duplicates", merged._duplicates),
        ):
            for qid, count in result[kind].items():
                shard = qid >> SHARD_ID_BITS
                local_idx = qid - (shard << SHARD_ID_BITS)
                column[to_global[shard][local_idx]] += count
    return merged


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_cell_sharded(
    config: HybridConfig,
    scale,
    crash_fraction: float = 0.0,
    settle_after_crash: float = 30_000.0,
    shards: int = 2,
    mode: Optional[str] = None,
    info_out: Optional[dict] = None,
):
    """Run one sweep cell across ``shards`` workers; returns CellResult.

    ``mode`` selects the backend: "fork" (build once, fork workers --
    the default where the platform supports it), "inline" (logical
    shards in-process, each building its own replica; slower, used for
    tests and as the portable fallback).  ``info_out`` receives shard
    diagnostics (loads, window rounds, event/message totals, peak RSS).
    """
    from ..experiments.common import CellResult

    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    check_shardable(config)
    if mode is None:
        # Daemonic processes (e.g. some pool workers) cannot fork
        # children; the inline backend is the universal fallback.
        can_fork = (
            "fork" in multiprocessing.get_all_start_methods()
            and not multiprocessing.current_process().daemon
        )
        mode = "fork" if can_fork else "inline"
    if mode not in ("fork", "inline"):
        raise ValueError(f"unknown shard mode {mode!r}")

    build_t0 = _time.perf_counter()
    system, pairs = _build_phases(
        config, scale, crash_fraction, settle_after_crash
    )
    build_wall = _time.perf_counter() - build_t0

    compact = CompactPeerState(system)
    owner = partition_snetworks(compact, shards, system.server.address)
    n_t, n_s = compact.counts()
    lookahead = max(
        system.router.min_edge_latency(), system.transport.min_latency
    )
    start_time = system.engine.now
    build_events = system.engine.events_executed

    lookup_t0 = _time.perf_counter()
    handles: List[_Handle] = []
    try:
        if mode == "fork":
            ctx = multiprocessing.get_context("fork")
            for shard in range(shards):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_serve_forked,
                    args=(child_conn, system, shard, shards, owner, pairs),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handles.append(_ForkHandle(parent_conn, process))
        else:
            for shard in range(shards):
                if shard == 0:
                    replica = system
                else:
                    replica, _ = _build_phases(
                        config, scale, crash_fraction, settle_after_crash
                    )
                worker = ShardWorker(replica, shard, shards, owner, pairs)
                worker.compact()
                handles.append(_InlineHandle(worker))

        sync = NullMessageSync(shards, lookahead)
        cut_time, waves, rounds = _coordinate(
            handles, sync, len(pairs), scale.wave_size, start_time
        )
        results = []
        for handle in handles:
            handle.send(("finish", cut_time))
        for handle in handles:
            results.append(handle.recv())
    finally:
        for handle in handles:
            handle.stop()
    lookup_wall = _time.perf_counter() - lookup_t0

    merged = merge_registries(results, pairs, owner)
    stats = merged.stats()
    if info_out is not None:
        try:
            import resource
            parent_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            parent_rss_kb = 0
        info_out.update({
            "shards": shards,
            "mode": mode,
            "lookahead_ms": lookahead,
            "waves": waves,
            "window_rounds": rounds,
            "cut_time_ms": cut_time,
            "shard_loads": shard_loads(compact, owner, shards),
            "build_events": build_events,
            "lookup_events_per_shard": [r["events"] for r in results],
            "events_total": build_events + sum(r["events"] for r in results),
            "messages_sent": [r["messages_sent"] for r in results],
            "messages_delivered": [r["messages_delivered"] for r in results],
            "build_wall_seconds": build_wall,
            "lookup_wall_seconds": lookup_wall,
            "peak_rss_kb": {
                "parent": parent_rss_kb,
                "workers": [r["peak_rss_kb"] for r in results],
            },
            "registry": merged,
            "peer_state": compact,
        })
    return CellResult(
        p_s=config.p_s,
        failure_ratio=stats.failure_ratio,
        mean_latency=stats.mean_latency,
        median_latency=stats.median_latency,
        connum=stats.connum,
        mean_contacts=stats.mean_contacts_per_lookup,
        successes=stats.successes,
        failures=stats.failures,
        n_t_peers=n_t,
        n_s_peers=n_s,
    )
