"""One shard of a sharded cell run.

A :class:`ShardWorker` wraps a fully built :class:`HybridSystem` whose
construction phases (build, populate, crash, settle) already ran -- in
the fork backend every worker inherits the *same* built system from the
parent; in the inline backend each logical shard builds its own
identical replica from the seed.  From that point the worker:

* installs the transport's shard-capture hook so deliveries to peers
  owned by other shards are buffered instead of scheduled locally;
* optionally compacts non-owned peers to :class:`PeerStub` residues,
  freeing their protocol state (databases, trees, caches);
* answers the coordinator's three requests -- ``issue`` (pin the clock
  to the wave timestamp and start the owned lookups of the wave),
  ``window`` (schedule inbound cross-shard deliveries, run everything
  strictly below the negotiated barrier), and ``finish`` (trim the
  metric overrun and export records/counters for the merge).

The request/response loop is transport-agnostic: :func:`serve` speaks
it over a multiprocessing pipe, the inline backend calls
:meth:`ShardWorker.handle` directly.
"""

from __future__ import annotations

import gc
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from ..perf import maybe_profile, memory_info, rss_kb
from .ipc import RingClosed, WorkerEndpoint
from .state import PeerStub

__all__ = ["ShardWorker", "serve", "serve_shm", "release_freed_memory"]


def release_freed_memory() -> None:
    """Hand freed build-phase state back to the OS, best effort.

    ``gc.collect`` breaks the cycles the stub swap left behind;
    ``malloc_trim`` makes glibc return the emptied arenas, so the
    sampled VmRSS actually drops instead of sitting in free lists.
    """
    gc.collect()
    try:
        import ctypes

        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except Exception:  # pragma: no cover - non-glibc platforms
        pass


class ShardWorker:
    """Executes the lookup phase for one shard's peers."""

    def __init__(
        self,
        system,
        shard_index: int,
        n_shards: int,
        owner: Dict[int, int],
        pairs: Sequence[Tuple[int, str]],
    ) -> None:
        self.system = system
        self.engine = system.engine
        self.shard_index = int(shard_index)
        self.n_shards = int(n_shards)
        self.owner = owner
        self.pairs = pairs
        self.registry = system.queries
        self.registry.configure(self.shard_index, self.engine)
        # Captured cross-shard deliveries since the last reply:
        # (deliver_time, dst_shard, dst_address, msg).
        self._outbox: List[tuple] = []
        # Retired peer objects kept alive under compact(retain=True)
        # to preserve copy-on-write sharing with the fork parent.
        self._retired: List[object] = []
        # Per-phase VmRSS samples, exported with the finish payload.
        self._mem_phases: List[dict] = []
        # Counter baselines: construction-phase work is replicated in
        # every worker, so only lookup-phase deltas are reported.
        transport = system.transport
        self._events0 = self.engine.events_executed
        self._sent0 = transport.messages_sent
        self._delivered0 = transport.messages_delivered
        self._dropped0 = transport.messages_dropped
        transport._shard_capture = self._capture

    # ------------------------------------------------------------------
    def _capture(self, deliver_time: float, dst_address: int, msg) -> bool:
        dst_shard = self.owner[dst_address]
        if dst_shard == self.shard_index:
            return False
        self._outbox.append((deliver_time, dst_shard, dst_address, msg))
        return True

    def compact(self, retain: bool = False) -> int:
        """Replace non-owned peers with stubs; returns how many.

        Stubs keep exactly what the sender-side delay model reads
        (host, liveness, capacity) and crash on ``receive`` -- non-owned
        peers never execute handlers once the capture hook is in.

        ``retain`` selects the memory policy:

        * ``retain=False`` (inline backend, and any worker that owns
          its replica outright): the stubbed peers' protocol state
          (databases, children sets, seen-query dicts, fingers) becomes
          garbage and is eagerly returned to the OS, together with the
          transport's build-phase delay/row memos -- a shard of a
          million-peer cell then runs in a fraction of the build
          footprint.
        * ``retain=True`` (forked workers): the retired peer objects
          are *kept referenced*.  A forked worker shares the built
          system with its parent copy-on-write; freeing 1-1/N of it
          would write every refcount, privatising the very pages the
          fork shared and growing physical memory by the amount
          "freed".  Retaining keeps those pages clean and shared, so
          N workers cost ~one system, not N.
        """
        peers = self.system.peers
        transport = self.system.transport
        actors = transport._actors
        me = self.shard_index
        owner = self.owner
        retired: List[object] = []
        replaced = 0
        for addr, peer in list(peers.items()):
            if owner[addr] == me:
                continue
            stub = PeerStub(addr, peer.host, peer.alive, peer.capacity, peer.role)
            if retain:
                retired.append(peer)
            peers[addr] = stub
            if addr in actors:
                actors[addr] = stub
            replaced += 1
        if retain:
            self._retired = retired
        else:
            # Build-phase memos rebuild lazily (and deterministically:
            # pure functions of topology) for owned senders only.
            transport._delay_cache.clear()
            transport._rows.clear()
            transport._cap_cache.clear()
            release_freed_memory()
        self._mem_phases.append(
            {"phase": "compact", "vm_rss_kb": rss_kb(), "retained": retain}
        )
        return replaced

    # ------------------------------------------------------------------
    # Coordinator requests
    # ------------------------------------------------------------------
    def issue(self, time: float, lo: int, hi: int, fold_before: float) -> dict:
        """Start this shard's lookups of wave ``pairs[lo:hi]`` at ``time``."""
        self.registry.fold(fold_before)
        self.engine.pin_clock(time)
        owner = self.owner
        me = self.shard_index
        peers = self.system.peers
        pairs = self.pairs
        for i in range(lo, hi):
            origin, key = pairs[i]
            if owner[origin] != me:
                continue
            peer = peers[origin]
            if peer.alive:
                peer.lookup(key)
        return self._state()

    def window(self, w_end: float, inbox: Sequence[tuple]) -> dict:
        """Schedule inbound deliveries, run strictly below ``w_end``."""
        if inbox:
            deliver = self.system.transport._deliver
            self.engine.schedule_batch(
                (time, deliver, (dst, msg)) for time, dst, msg in inbox
            )
        self.engine.run_before(w_end)
        return self._state()

    def finish(self, cut_time: float) -> dict:
        """Trim metric overrun past ``cut_time``; export merge inputs."""
        registry = self.registry
        registry.trim(cut_time)
        transport = self.system.transport
        transport._shard_capture = None
        try:
            import resource
            peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except Exception:  # pragma: no cover - non-POSIX
            peak_rss_kb = 0
        mem = memory_info()
        self._mem_phases.append(
            {"phase": "finish", "vm_rss_kb": mem["vm_rss_kb"]}
        )
        mem["phases"] = self._mem_phases
        return {
            "mem": mem,
            "records": registry.export_records(),
            "contacts": list(registry._contacts),
            "duplicates": list(registry._duplicates),
            "foreign_contacts": dict(registry.foreign_contacts),
            "foreign_duplicates": dict(registry.foreign_duplicates),
            "events": self.engine.events_executed - self._events0,
            "messages_sent": transport.messages_sent - self._sent0,
            "messages_delivered": transport.messages_delivered - self._delivered0,
            "messages_dropped": transport.messages_dropped - self._dropped0,
            "peak_rss_kb": peak_rss_kb,
        }

    def _state(self) -> dict:
        outbox = self._outbox
        self._outbox = []
        return {
            "next_time": self.engine.next_event_time(),
            "unresolved": self.registry.unresolved,
            "max_end": self.registry.max_end,
            "outbox": outbox,
        }

    # ------------------------------------------------------------------
    def handle(self, request: tuple) -> tuple:
        """Dispatch one coordinator request; returns ("ok", payload)."""
        op = request[0]
        if op == "issue":
            return ("ok", self.issue(*request[1:]))
        if op == "window":
            return ("ok", self.window(*request[1:]))
        if op == "finish":
            return ("ok", self.finish(*request[1:]))
        raise ValueError(f"unknown shard request {op!r}")


def serve(conn, worker: ShardWorker) -> None:
    """Answer coordinator requests over a pipe until ``("stop",)``.

    Runs in the forked worker process.  Exceptions are reported back as
    ``("error", traceback_text)`` so the coordinator can re-raise with
    the worker's stack instead of hanging on a dead pipe.  With
    ``REPRO_PROFILE=1`` the whole serve loop is profiled under the
    ``-shard<N>`` tag (one profile per worker process).
    """
    with maybe_profile(tag=f"-shard{worker.shard_index}"):
        while True:
            request = conn.recv()
            if request[0] == "stop":
                return
            try:
                conn.send(worker.handle(request))
            except Exception:
                conn.send(("error", traceback.format_exc()))
                return


def serve_shm(endpoint: WorkerEndpoint, worker: ShardWorker) -> None:
    """Answer coordinator requests over shared-memory rings.

    The shm twin of :func:`serve`.  Requests arrive as struct-packed
    control frames; ``window`` inboxes are drained straight out of the
    per-pair data rings (zero-copy decode, exact frame counts -- see
    :meth:`~repro.shard.ipc.WorkerEndpoint.drain_inbox`); the outbox of
    every reply is distributed to the outbound data rings before the
    state frame is published.  Worker errors travel back as ``K_ERR``
    frames; a vanished coordinator surfaces as :class:`RingClosed` and
    ends the loop (the worker is an orphan at that point).
    """
    with maybe_profile(tag=f"-shard{worker.shard_index}"):
        try:
            while True:
                try:
                    request = endpoint.recv_request()
                except RingClosed:  # pragma: no cover - coordinator died
                    return
                op = request[0]
                if op == "stop":
                    return
                try:
                    if op == "issue":
                        endpoint.send_state(worker.issue(*request[1:]))
                    elif op == "window":
                        _, w_end, owed, spills = request
                        inbox = endpoint.drain_inbox(owed, spills)
                        endpoint.send_state(worker.window(w_end, inbox))
                    elif op == "finish":
                        payload = worker.finish(request[1])
                        payload["ipc"] = endpoint.counters()
                        endpoint.send_blob(payload)
                    else:
                        raise ValueError(f"unknown shard request {op!r}")
                except RingClosed:  # pragma: no cover - coordinator died
                    return
                except Exception:
                    endpoint.send_error(traceback.format_exc())
                    return
        finally:
            endpoint.close()
