"""Shard-local state: peer stubs, array-backed peer state, and the
shard-aware query registry.

A sharded run (see :mod:`repro.shard.runner`) replicates the
deterministic construction phases in every worker and then partitions
only the lookup phase.  Three representations support that split:

* :class:`PeerStub` -- what a worker keeps of a peer it does *not* own:
  just the fields the transport's delay model reads.  Stubs raise on
  ``receive`` so a partitioning bug is a crash, never a silent
  divergence.
* :class:`CompactPeerState` -- a numpy columnar snapshot of per-peer
  protocol state (ids, ring pointers, liveness, anchors, item counts),
  taken once after the replicated phases.  The coordinator computes
  partitions and per-peer metrics from these flat arrays instead of
  walking a million-object graph.
* :class:`ShardQueryRegistry` -- a :class:`~repro.core.lookup.QueryRegistry`
  that accepts contacts for lookups owned by *other* shards and logs
  every contact with its simulated time, which is what lets the merge
  step reproduce the single-process counters bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.lookup import QueryRegistry

__all__ = ["PeerStub", "CompactPeerState", "ShardQueryRegistry", "SHARD_ID_BITS"]

# Query ids are rebased per shard to ``shard_index << SHARD_ID_BITS``:
# ids stay globally unique (flood duplicate-suppression keys on the id)
# and the merge step can recover ``(shard, local index)`` from any id.
SHARD_ID_BITS = 32


class PeerStub:
    """Delay-model residue of a peer owned by another shard.

    The transport reads ``host``/``alive`` when computing a delivery and
    the system's capacity resolver reads ``capacity``; everything else
    about a foreign peer is unreachable by construction -- its messages
    are captured at the shard boundary before delivery.  ``receive``
    therefore raises: if it ever runs, the shard filter is broken.
    """

    __slots__ = ("address", "host", "alive", "capacity", "role")

    def __init__(
        self, address: int, host: int, alive: bool, capacity: float, role: str
    ) -> None:
        self.address = address
        self.host = host
        self.alive = alive
        self.capacity = capacity
        self.role = role

    def receive(self, msg) -> None:
        raise RuntimeError(
            f"peer {self.address} is owned by another shard but received "
            f"{type(msg).__name__}: cross-shard capture failed"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<PeerStub addr={self.address} host={self.host} alive={self.alive}>"


class CompactPeerState:
    """Columnar (numpy) snapshot of the per-peer protocol state.

    Rows are sorted by overlay address, which equals the peer-creation
    order -- the same order :meth:`HybridSystem.data_distribution`
    iterates -- so array reductions reproduce the object-walk results
    exactly.
    """

    __slots__ = (
        "address", "host", "p_id", "alive", "is_t", "anchor",
        "capacity", "items",
    )

    def __init__(self, system) -> None:
        peers = sorted(system.peers.values(), key=lambda p: p.address)
        n = len(peers)
        self.address = np.fromiter((p.address for p in peers), dtype=np.int64, count=n)
        self.host = np.fromiter((p.host for p in peers), dtype=np.int64, count=n)
        self.p_id = np.fromiter(
            ((p.p_id if p.p_id is not None else 0) for p in peers),
            dtype=np.uint64, count=n,
        )
        self.alive = np.fromiter((p.alive for p in peers), dtype=bool, count=n)
        self.is_t = np.fromiter((p.role == "t" for p in peers), dtype=bool, count=n)
        # Partition key: the s-network anchor (t-peers anchor themselves).
        self.anchor = np.fromiter(
            ((p.address if p.role == "t" else p.t_peer) for p in peers),
            dtype=np.int64, count=n,
        )
        self.capacity = np.fromiter((p.capacity for p in peers), dtype=np.float64, count=n)
        self.items = np.fromiter((len(p.database) for p in peers), dtype=np.int64, count=n)

    def __len__(self) -> int:
        return len(self.address)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the column arrays."""
        return sum(getattr(self, name).nbytes for name in self.__slots__)

    def counts(self) -> Tuple[int, int]:
        """(alive t-peers, alive s-peers) -- the CellResult tail fields."""
        alive = self.alive
        n_t = int(np.count_nonzero(alive & self.is_t))
        n_s = int(np.count_nonzero(alive & ~self.is_t))
        return n_t, n_s

    def data_distribution(self) -> np.ndarray:
        """Items per alive peer, identical to the object-graph walk."""
        return self.items[self.alive].copy()


class ShardQueryRegistry(QueryRegistry):
    """Query registry for one shard of a sharded cell run.

    Differences from the base registry, all in service of an exact merge
    (:func:`repro.shard.runner.merge_registries`):

    * ids are rebased to ``shard_index << SHARD_ID_BITS`` via
      :meth:`configure`, so every id is globally unique;
    * :meth:`contact` accepts *foreign* ids -- lookups owned by other
      shards whose flood/ring messages crossed into this one -- and
      accumulates them in side dicts instead of silently dropping them;
    * every contact is also logged with its simulated time.  The
      coordinator folds entries that are final after each wave
      (:meth:`fold`) and, at the end of the phase, undoes the counts
      recorded past the single-process stopping point (:meth:`trim`):
      windows are allowed to overrun the last resolution, the metrics
      are not;
    * the latest resolution time is tracked in :attr:`max_end`
      (monotone), from which the coordinator derives each wave's global
      resolution timestamp.
    """

    def __init__(self) -> None:
        super().__init__()
        self.shard_index = 0
        self._engine = None
        self.foreign_contacts: Dict[int, int] = {}
        self.foreign_duplicates: Dict[int, int] = {}
        self._contact_log: List[Tuple[float, int, bool]] = []
        self.max_end = float("-inf")

    def configure(self, shard_index: int, engine) -> None:
        """Bind the registry to its shard; must run before any lookup."""
        self.shard_index = int(shard_index)
        self._engine = engine
        self.rebase(self.shard_index << SHARD_ID_BITS)

    # ------------------------------------------------------------------
    def contact(self, query_id: int, duplicate: bool = False) -> None:
        i = query_id - self._base
        if duplicate:
            counts = self._duplicates
        else:
            counts = self._contacts
        if 0 <= i < len(counts):
            counts[i] += 1
        else:
            foreign = self.foreign_duplicates if duplicate else self.foreign_contacts
            foreign[query_id] = foreign.get(query_id, 0) + 1
        self._contact_log.append((self._engine.now, query_id, duplicate))

    def succeed(self, query_id: int, time: float, holder: int, hops: int = 0) -> bool:
        ok = super().succeed(query_id, time, holder, hops)
        if ok and time > self.max_end:
            self.max_end = time
        return ok

    def fail(self, query_id: int, time: float) -> bool:
        ok = super().fail(query_id, time)
        if ok and time > self.max_end:
            self.max_end = time
        return ok

    # ------------------------------------------------------------------
    def fold(self, safe_time: float) -> None:
        """Discard log entries at or before ``safe_time``.

        Called at each wave barrier with the wave's global resolution
        time: the final cut can only move forward, so those counts can
        never be trimmed and the log need not keep growing.
        """
        self._contact_log = [e for e in self._contact_log if e[0] > safe_time]

    def trim(self, cut_time: float) -> None:
        """Undo contacts recorded strictly after ``cut_time``.

        The single-process run stops at the event that resolves the last
        lookup (time ``cut_time``); shard windows run past it.  Contacts
        from that overrun are subtracted so the merged counters match
        the single-process run exactly.  Ties at ``cut_time`` are kept:
        the resolving event itself executed in both runs.
        """
        for time, query_id, duplicate in self._contact_log:
            if time <= cut_time:
                continue
            i = query_id - self._base
            counts = self._duplicates if duplicate else self._contacts
            if 0 <= i < len(counts):
                counts[i] -= 1
            else:
                foreign = self.foreign_duplicates if duplicate else self.foreign_contacts
                foreign[query_id] -= 1
        self._contact_log = []

    # ------------------------------------------------------------------
    def export_records(self) -> List[tuple]:
        """Records as plain tuples (start order), keyed by local index."""
        out = []
        base = self._base
        for rec in self._records.values():
            out.append((
                rec.query_id - base, rec.origin, rec.key, rec.d_id,
                rec.start_time, rec.local, rec.status, rec.end_time,
                rec.holder, rec.refloods, rec.via_bypass, rec.hops,
            ))
        return out
