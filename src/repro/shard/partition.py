"""Partitioning one built system across shards, by s-network.

The tree-shaped hierarchy is the sharding plan: an s-network (one
t-peer anchor plus its tree of s-peers) is a near-closed event domain --
floods never leave it -- so assigning whole s-networks to shards leaves
only t-network ring traffic, answer deliveries and bypass shortcuts
crossing shard boundaries.  Balancing is longest-processing-time
greedy over s-network sizes (the D3-Tree spirit: biggest trees placed
first), which is deterministic and within 4/3 of optimal.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from .state import CompactPeerState

__all__ = ["partition_snetworks", "shard_loads"]


def partition_snetworks(
    state: CompactPeerState,
    n_shards: int,
    server_address: int = 0,
) -> Dict[int, int]:
    """Map every overlay address (peers + server) to an owning shard.

    Each s-network goes to one shard wholesale; the server is pinned to
    shard 0.  Deterministic: groups are placed biggest-first (ties by
    anchor address) onto the least-loaded shard (ties by shard index).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    anchors, sizes = np.unique(state.anchor, return_counts=True)
    order = sorted(
        range(len(anchors)), key=lambda i: (-int(sizes[i]), int(anchors[i]))
    )
    loads = [(0, s) for s in range(n_shards)]
    heapq.heapify(loads)
    anchor_shard: Dict[int, int] = {}
    for i in order:
        load, shard = heapq.heappop(loads)
        anchor_shard[int(anchors[i])] = shard
        heapq.heappush(loads, (load + int(sizes[i]), shard))
    owner = {
        int(addr): anchor_shard[int(anchor)]
        for addr, anchor in zip(state.address, state.anchor)
    }
    owner[int(server_address)] = 0
    return owner


def shard_loads(
    state: CompactPeerState, owner: Dict[int, int], n_shards: int
) -> List[Tuple[int, int]]:
    """Per-shard (peers, stored items) -- balance diagnostics."""
    peers = [0] * n_shards
    items = [0] * n_shards
    for addr, cnt in zip(state.address, state.items):
        shard = owner[int(addr)]
        peers[shard] += 1
        items[shard] += int(cnt)
    return list(zip(peers, items))
