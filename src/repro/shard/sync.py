"""Conservative (null-message) time synchronization for sharded runs.

Classic lower-bound-timestamp logic, process-free so it can be unit
tested directly: the coordinator collects each shard's "null message"
(the timestamp of its earliest pending local event, or None when idle)
plus every captured cross-shard delivery, and computes the next safe
execution window.

Safety argument: let ``m`` be the minimum over all shards of (earliest
pending local event, earliest undelivered inbound message).  No shard
can execute anything before ``m``, and any event executed at time
``t >= m`` delivers cross-shard messages no earlier than ``t + L``,
where the lookahead ``L`` is the minimum latency any cross-shard hop
can incur (every cross-shard message travels between two *distinct*
physical hosts, so its delay is at least the smaller of the minimum
physical edge latency and the transport's latency floor -- both known
before the run).  Every event strictly below ``m + L`` is therefore
already present in some shard's heap or in the coordinator's pending
set, and all shards may execute up to (but excluding) ``m + L``
concurrently.  Empty stretches of simulated time are skipped for free:
``m`` jumps straight to the next pending timestamp, so a wave waiting
on a lookup timeout costs one window, not timeout/L of them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["NullMessageSync", "ShardSyncError"]


class ShardSyncError(RuntimeError):
    """The synchronization state is inconsistent (e.g. global stall)."""


class NullMessageSync:
    """LBTS bookkeeping for ``n_shards`` logical shards.

    The runner drives it in rounds: :meth:`note_state` with each
    shard's reported next-event time, :meth:`add_messages` with each
    shard's captured outbound deliveries, then :meth:`window_end` for
    the next barrier and :meth:`take_inbox` for what each shard must
    schedule before running it.
    """

    def __init__(self, n_shards: int, lookahead: float) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not (lookahead > 0.0):
            raise ValueError("lookahead must be positive")
        self.n_shards = n_shards
        self.lookahead = float(lookahead)
        self._next_times: List[Optional[float]] = [None] * n_shards
        # Undelivered cross-shard messages, per destination shard:
        # (deliver_time, origin_shard, origin_order, dst_address, msg).
        self._pending: List[List[tuple]] = [[] for _ in range(n_shards)]
        # Summary-mode pending (shm backend): the messages themselves
        # sit in per-pair data rings, the coordinator only tracks
        # (count, min delivery time) batches per destination shard.
        self._summaries: List[List[Tuple[int, float]]] = [
            [] for _ in range(n_shards)
        ]
        self._order = 0

    # ------------------------------------------------------------------
    def note_state(self, shard: int, next_time: Optional[float]) -> None:
        """Record a shard's null message (None = idle, nothing pending)."""
        self._next_times[shard] = next_time

    def add_messages(
        self, origin_shard: int, outbox: Sequence[Tuple[float, int, int, object]]
    ) -> None:
        """Accept captured deliveries: (deliver_time, dst_shard, dst, msg).

        Capture order within a shard is preserved (it is deterministic,
        being a pure function of that shard's execution), giving every
        in-flight message a stable global ordering key.
        """
        for deliver_time, dst_shard, dst_address, msg in outbox:
            self._pending[dst_shard].append(
                (deliver_time, origin_shard, self._order, dst_address, msg)
            )
            self._order += 1

    def add_summary(
        self, dst_shard: int, count: int, min_time: float
    ) -> None:
        """Account for in-flight messages the coordinator never holds.

        The shm backend moves message bodies worker-to-worker through
        shared-memory rings; each worker's state reply carries only a
        per-destination (count, min delivery time) summary.  The floor
        over batch minima equals the floor over the messages themselves
        (min-of-mins), so the LBTS safety argument is unchanged.
        """
        if count > 0:
            self._summaries[dst_shard].append((int(count), float(min_time)))

    # ------------------------------------------------------------------
    def floor(self) -> Optional[float]:
        """Earliest possible next action across all shards, or None."""
        lo: Optional[float] = None
        for t in self._next_times:
            if t is not None and (lo is None or t < lo):
                lo = t
        for box in self._pending:
            for entry in box:
                if lo is None or entry[0] < lo:
                    lo = entry[0]
        for batches in self._summaries:
            for _count, min_time in batches:
                if lo is None or min_time < lo:
                    lo = min_time
        return lo

    def window_end(self) -> Optional[float]:
        """Barrier for the next round: every shard may run ``< window_end``.

        None means the whole simulation is idle -- no shard has pending
        events and no message is in flight.
        """
        lo = self.floor()
        if lo is None:
            return None
        return lo + self.lookahead

    def take_inbox(self, shard: int) -> List[Tuple[float, int, object]]:
        """Drain pending deliveries for ``shard``, in deterministic order.

        Sorted by (deliver_time, origin_shard, capture order); the
        worker schedules them in this order, so equal-time deliveries
        tie-break identically on every run.
        """
        self._summaries[shard] = []
        box = self._pending[shard]
        if not box:
            return []
        box.sort(key=lambda e: (e[0], e[1], e[2]))
        self._pending[shard] = []
        return [(e[0], e[3], e[4]) for e in box]

    @property
    def in_flight(self) -> int:
        """Number of captured, not yet delivered cross-shard messages."""
        return sum(len(box) for box in self._pending) + sum(
            count for batches in self._summaries for count, _t in batches
        )
