"""Overlay message transport.

Delivers messages between overlay actors (peers, the bootstrap server)
over the physical network: each overlay hop corresponds to the physical
shortest path between the two hosts, so its delay is

``path propagation latency + message size / bottleneck access capacity``

(the second term only when a capacity model is installed; Section 5.1).

Messages to dead or unknown addresses are silently dropped -- that is
exactly how a crashed peer manifests to the rest of the system.

Two delivery paths share one delay model:

* :meth:`Transport.send` -- one message, one destination; the delay
  computation is inlined and feeds the engine's no-handle fast tier.
* :meth:`Transport.send_many` -- one message fanned out to many
  destinations (floods, tree broadcasts).  Propagation delays come from
  a single cached row slice of the router's latency matrix and all
  deliveries are bulk-inserted into the event heap in one call.

Both paths memoize per-address access capacities (invalidated on
``register``/``unregister``) and per-source-host latency rows, and both
preserve the exact delay values and sequence-number assignment order of
the equivalent loop of single sends -- deterministic runs stay
bit-identical.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, Iterable, List, Optional, Protocol

from ..net.routing import Router
from ..net.stress import LinkStress
from ..sim.engine import Engine
from ..sim.trace import TraceBus
from .messages import Message

__all__ = ["Actor", "TransportBase", "Transport"]


class Actor(Protocol):
    """Anything addressable on the overlay."""

    address: int
    host: int
    alive: bool

    def receive(self, msg: Message) -> None:  # pragma: no cover - protocol
        ...


class TransportBase:
    """The transport surface the protocol core programs against.

    Two implementations exist: the simulator's :class:`Transport` below
    (delay-modelled delivery through the event heap) and the live
    runtime's :class:`~repro.runtime.aio_transport.AioTransport` (real
    TCP sockets on an asyncio loop).  Peers and the bootstrap server
    only ever touch this surface -- ``send`` / ``send_many`` plus the
    registry queries -- which is what lets the same protocol code run
    bit-identically in simulation and as a live network.

    Contract notes shared by both backends:

    * ``send`` fills in ``msg.sender`` from ``src.address`` before
      delivery and returns False when the message was dropped at send
      time (unknown/dead destination);
    * ``send_many`` delivers the *same* message object (or its encoding)
      to every destination, so receivers must treat messages as
      immutable -- the protocol code already does;
    * ``is_reachable`` is a best-effort liveness hint; the live backend
      can only report what its last connection attempt observed.
    """

    def register(self, actor: Actor) -> None:
        raise NotImplementedError

    def unregister(self, address: int) -> None:
        raise NotImplementedError

    def actor(self, address: int) -> Optional[Actor]:
        raise NotImplementedError

    def is_reachable(self, address: int) -> bool:
        raise NotImplementedError

    def send(self, src: Actor, dst_address: int, msg: Message) -> bool:
        raise NotImplementedError

    def send_many(self, src: Actor, dst_addresses: Iterable[int], msg: Message) -> int:
        """Fan one message out; the default is a loop of :meth:`send`."""
        sent = 0
        for dst_address in dst_addresses:
            if self.send(src, dst_address, msg):
                sent += 1
        return sent


class Transport(TransportBase):
    """Address registry + delay model + delivery scheduler.

    Parameters
    ----------
    engine:
        The simulation engine used for delayed delivery.
    router:
        Physical routing table; when None every hop costs
        ``default_latency`` (useful for protocol unit tests).
    capacity_of:
        Optional map from actor address to access-link capacity; enables
        the heterogeneity-aware transfer-delay term.  Results are
        memoized per address until that address re-registers.
    stress:
        Optional link-stress accountant (records every physical link a
        message crosses); implies per-message path extraction, so leave
        it off for large sweeps unless stress is being measured.
    trace:
        Optional trace bus; publishes a ``transport.send`` record per
        message when someone subscribed to that category.
    """

    def __init__(
        self,
        engine: Engine,
        router: Optional[Router] = None,
        capacity_of: Optional[Callable[[int], float]] = None,
        stress: Optional[LinkStress] = None,
        trace: Optional[TraceBus] = None,
        default_latency: float = 1.0,
        min_latency: float = 0.05,
    ) -> None:
        if default_latency <= 0 or min_latency <= 0:
            raise ValueError("latencies must be positive")
        self._engine = engine
        self._router = router
        self._capacity_of = capacity_of
        self._stress = stress
        self._trace = trace
        self.default_latency = default_latency
        self.min_latency = min_latency
        self._actors: Dict[int, Actor] = {}
        self._cap_cache: Dict[int, float] = {}
        self._rows: Dict[int, List[float]] = {}
        # Memoized end-to-end delays keyed by (src addr, dst addr,
        # size): overlay links are traversed over and over (every ring
        # walk crosses the same edges), and the delay of a link is a
        # pure function of the two endpoints and the message size.
        # Invalidated wholesale whenever the registry changes.
        self._delay_cache: Dict[tuple, float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Opt-in per-message-type accounting (see repro.perf); one dict
        # update per send when enabled, a single attribute test when not.
        self._count_types = False
        self.message_type_counts: Dict[str, int] = {}
        # wants("transport.send") cached against the bus version.
        self._trace_version = -1
        self._trace_sends = False
        # Sharded execution hook (repro.shard): when set, called with
        # (deliver_time, dst_address, msg) after the delay model has run;
        # returning True means the destination lives on another shard and
        # the delivery was captured for cross-shard forwarding instead of
        # being scheduled on the local heap.  Sender-side accounting
        # (messages_sent, traces, stress, type counts) has already
        # happened at that point, exactly as in the single-process run.
        self._shard_capture: Optional[Callable[[float, int, Message], bool]] = None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Make ``actor`` reachable at ``actor.address``."""
        if actor.address in self._actors:
            raise ValueError(f"address {actor.address} already registered")
        self._actors[actor.address] = actor
        # The address may be reused by a different peer (churn): the
        # memoized capacities and delays no longer apply.
        self._cap_cache.pop(actor.address, None)
        self._delay_cache.clear()

    def unregister(self, address: int) -> None:
        """Remove an actor (it stops receiving even in-flight messages)."""
        self._actors.pop(address, None)
        self._cap_cache.pop(address, None)
        self._delay_cache.clear()

    def actor(self, address: int) -> Optional[Actor]:
        """The actor at ``address``, or None."""
        return self._actors.get(address)

    def is_reachable(self, address: int) -> bool:
        actor = self._actors.get(address)
        return actor is not None and actor.alive

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------------
    # Perf accounting
    # ------------------------------------------------------------------
    def enable_type_counts(self) -> None:
        """Start counting sends per message-type name (see repro.perf)."""
        self._count_types = True

    def disable_type_counts(self) -> None:
        self._count_types = False

    # ------------------------------------------------------------------
    # Delay model
    # ------------------------------------------------------------------
    def delay(self, src: Actor, dst: Actor, size: float) -> float:
        """Delivery delay for a message of ``size`` between two actors."""
        if self._router is not None:
            prop = self._latency_row(src.host)[dst.host]
        else:
            prop = self.default_latency
        prop = max(prop, self.min_latency)
        if self._capacity_of is not None:
            bottleneck = min(
                self._capacity(src.address), self._capacity(dst.address)
            )
            prop += size / bottleneck
        return prop

    def _latency_row(self, host: int) -> List[float]:
        row = self._rows.get(host)
        if row is None:
            row = self._rows[host] = self._router.latency_row(host)
        return row

    def _capacity(self, address: int) -> float:
        cap = self._cap_cache.get(address)
        if cap is None:
            cap = self._cap_cache[address] = self._capacity_of(address)
        return cap

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, src: Actor, dst_address: int, msg: Message) -> bool:
        """Schedule delivery of ``msg`` from ``src`` to ``dst_address``.

        Returns False (and drops the message) when the destination is
        unknown or dead at send time; delivery is also suppressed if the
        destination dies while the message is in flight.
        """
        self.messages_sent += 1
        dst = self._actors.get(dst_address)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return False
        src_address = src.address
        msg.sender = src_address
        size = msg.size
        # Delay model, inlined and memoized: this runs once per
        # simulated message, and most messages retrace known links.
        delay_key = (src_address, dst_address, size)
        prop = self._delay_cache.get(delay_key)
        router = self._router
        if prop is None:
            if router is not None:
                rows = self._rows
                src_host = src.host
                row = rows.get(src_host)
                if row is None:
                    row = rows[src_host] = router.latency_row(src_host)
                prop = row[dst.host]
            else:
                prop = self.default_latency
            if prop < self.min_latency:
                prop = self.min_latency
            capacity_of = self._capacity_of
            if capacity_of is not None:
                cache = self._cap_cache
                cap_src = cache.get(src_address)
                if cap_src is None:
                    cap_src = cache[src_address] = capacity_of(src_address)
                cap_dst = cache.get(dst_address)
                if cap_dst is None:
                    cap_dst = cache[dst_address] = capacity_of(dst_address)
                prop += size / (cap_dst if cap_dst < cap_src else cap_src)
            self._delay_cache[delay_key] = prop
        if self._stress is not None and router is not None:
            self._stress.record_path(router.path_edges(src.host, dst.host))
        trace = self._trace
        if trace is not None:
            if trace.version != self._trace_version:
                self._trace_version = trace.version
                self._trace_sends = trace.wants("transport.send")
            if self._trace_sends:
                trace.publish(
                    self._engine.now,
                    "transport.send",
                    src=src.address,
                    dst=dst_address,
                    kind=type(msg).__name__,
                    delay=prop,
                )
        if self._count_types:
            name = type(msg).__name__
            counts = self.message_type_counts
            counts[name] = counts.get(name, 0) + 1
        # Engine.schedule_after, inlined (one frame per simulated
        # message): ``prop >= min_latency > 0`` so the negative-delay
        # guard is statically satisfied.
        engine = self._engine
        capture = self._shard_capture
        if capture is not None and capture(engine._now + prop, dst_address, msg):
            return True
        heappush(engine._heap, (engine._now + prop, engine._seq, self._deliver, (dst_address, msg)))
        engine._seq += 1
        engine._live += 1
        return True

    def send_many(self, src: Actor, dst_addresses: Iterable[int], msg: Message) -> int:
        """Fan ``msg`` out from ``src`` to every address in ``dst_addresses``.

        The flood/broadcast primitive: one latency-matrix row slice
        supplies all propagation delays and the deliveries are inserted
        into the event heap in a single batch.  Destinations are
        processed in iteration order, so counters, delays, and event
        ordering are identical to the equivalent loop of :meth:`send`
        calls.  The *same* message object is delivered to every
        destination -- receivers must treat messages as immutable, which
        the protocol code already does.

        Returns the number of destinations actually scheduled (dead or
        unknown addresses are dropped, as in :meth:`send`).
        """
        actors = self._actors
        router = self._router
        stress = self._stress
        capacity_of = self._capacity_of
        src_address = src.address
        src_host = src.host
        msg.sender = src_address
        size = msg.size
        if router is not None:
            rows = self._rows
            row = rows.get(src_host)
            if row is None:
                row = rows[src_host] = router.latency_row(src_host)
        else:
            row = None
        min_latency = self.min_latency
        default_latency = self.default_latency
        cache = self._cap_cache
        if capacity_of is not None:
            cap_src = cache.get(src_address)
            if cap_src is None:
                cap_src = cache[src_address] = capacity_of(src_address)
        trace = self._trace
        tracing = trace is not None and trace.wants("transport.send")
        now = self._engine.now
        deliver = self._deliver
        entries = []
        append = entries.append
        kind = type(msg).__name__
        sent = 0
        dropped = 0
        for dst_address in dst_addresses:
            dst = actors.get(dst_address)
            if dst is None or not dst.alive:
                dropped += 1
                continue
            prop = row[dst.host] if row is not None else default_latency
            if prop < min_latency:
                prop = min_latency
            if capacity_of is not None:
                cap_dst = cache.get(dst_address)
                if cap_dst is None:
                    cap_dst = cache[dst_address] = capacity_of(dst_address)
                prop += size / (cap_dst if cap_dst < cap_src else cap_src)
            if stress is not None and router is not None:
                stress.record_path(router.path_edges(src_host, dst.host))
            if tracing:
                trace.publish(
                    now,
                    "transport.send",
                    src=src_address,
                    dst=dst_address,
                    kind=kind,
                    delay=prop,
                )
            capture = self._shard_capture
            if capture is not None and capture(now + prop, dst_address, msg):
                sent += 1
                continue
            append((now + prop, deliver, (dst_address, msg)))
            sent += 1
        attempted = sent + dropped
        self.messages_sent += attempted
        if dropped:
            self.messages_dropped += dropped
        if self._count_types and attempted:
            counts = self.message_type_counts
            counts[kind] = counts.get(kind, 0) + attempted
        if entries:
            self._engine.schedule_batch(entries)
        return sent

    def _deliver(self, dst_address: int, msg: Message) -> None:
        dst = self._actors.get(dst_address)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        dst.receive(msg)
