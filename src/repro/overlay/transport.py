"""Overlay message transport.

Delivers messages between overlay actors (peers, the bootstrap server)
over the physical network: each overlay hop corresponds to the physical
shortest path between the two hosts, so its delay is

``path propagation latency + message size / bottleneck access capacity``

(the second term only when a capacity model is installed; Section 5.1).

Messages to dead or unknown addresses are silently dropped -- that is
exactly how a crashed peer manifests to the rest of the system.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol

from ..net.routing import Router
from ..net.stress import LinkStress
from ..sim.engine import Engine
from ..sim.trace import TraceBus
from .messages import Message

__all__ = ["Actor", "Transport"]


class Actor(Protocol):
    """Anything addressable on the overlay."""

    address: int
    host: int
    alive: bool

    def receive(self, msg: Message) -> None:  # pragma: no cover - protocol
        ...


class Transport:
    """Address registry + delay model + delivery scheduler.

    Parameters
    ----------
    engine:
        The simulation engine used for delayed delivery.
    router:
        Physical routing table; when None every hop costs
        ``default_latency`` (useful for protocol unit tests).
    capacity_of:
        Optional map from actor address to access-link capacity; enables
        the heterogeneity-aware transfer-delay term.
    stress:
        Optional link-stress accountant (records every physical link a
        message crosses); implies per-message path extraction, so leave
        it off for large sweeps unless stress is being measured.
    trace:
        Optional trace bus; publishes a ``transport.send`` record per
        message when active.
    """

    def __init__(
        self,
        engine: Engine,
        router: Optional[Router] = None,
        capacity_of: Optional[Callable[[int], float]] = None,
        stress: Optional[LinkStress] = None,
        trace: Optional[TraceBus] = None,
        default_latency: float = 1.0,
        min_latency: float = 0.05,
    ) -> None:
        if default_latency <= 0 or min_latency <= 0:
            raise ValueError("latencies must be positive")
        self._engine = engine
        self._router = router
        self._capacity_of = capacity_of
        self._stress = stress
        self._trace = trace
        self.default_latency = default_latency
        self.min_latency = min_latency
        self._actors: Dict[int, Actor] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Make ``actor`` reachable at ``actor.address``."""
        if actor.address in self._actors:
            raise ValueError(f"address {actor.address} already registered")
        self._actors[actor.address] = actor

    def unregister(self, address: int) -> None:
        """Remove an actor (it stops receiving even in-flight messages)."""
        self._actors.pop(address, None)

    def actor(self, address: int) -> Optional[Actor]:
        """The actor at ``address``, or None."""
        return self._actors.get(address)

    def is_reachable(self, address: int) -> bool:
        actor = self._actors.get(address)
        return actor is not None and actor.alive

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------------
    # Delay model
    # ------------------------------------------------------------------
    def delay(self, src: Actor, dst: Actor, size: float) -> float:
        """Delivery delay for a message of ``size`` between two actors."""
        if self._router is not None:
            prop = self._router.latency(src.host, dst.host)
        else:
            prop = self.default_latency
        prop = max(prop, self.min_latency)
        if self._capacity_of is not None:
            bottleneck = min(
                self._capacity_of(src.address), self._capacity_of(dst.address)
            )
            prop += size / bottleneck
        return prop

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, src: Actor, dst_address: int, msg: Message) -> bool:
        """Schedule delivery of ``msg`` from ``src`` to ``dst_address``.

        Returns False (and drops the message) when the destination is
        unknown or dead at send time; delivery is also suppressed if the
        destination dies while the message is in flight.
        """
        self.messages_sent += 1
        dst = self._actors.get(dst_address)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return False
        msg.sender = src.address
        delay = self.delay(src, dst, msg.size)
        if self._stress is not None and self._router is not None:
            self._stress.record_path(self._router.path_edges(src.host, dst.host))
        if self._trace is not None and self._trace.active:
            self._trace.publish(
                self._engine.now,
                "transport.send",
                src=src.address,
                dst=dst_address,
                kind=type(msg).__name__,
                delay=delay,
            )
        self._engine.call_later(delay, self._deliver, dst_address, msg)
        return True

    def _deliver(self, dst_address: int, msg: Message) -> None:
        dst = self._actors.get(dst_address)
        if dst is None or not dst.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        dst.receive(msg)
