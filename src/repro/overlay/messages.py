"""Message taxonomy of the hybrid protocol.

Every overlay exchange in the system is one of the record types below.
Messages carry the sender's address (filled in by the transport), a
``size`` used by the heterogeneous-capacity delay model, and
type-specific payload fields.

Naming follows the paper's prose: ``TJoin*`` / ``TLeave*`` are the
join/leave triangles of Section 3.3, ``SJoin*`` the degree-constrained
tree join of Section 3.2.2, ``Hello``/``Ack`` the crash-detection
heartbeats, and ``FloodQuery`` the Gnutella-style TTL flood.  Requests
travelling along the t-network ring (``TJoinRequest``,
``StoreRequest``, ``LookupRequest``) are re-sent hop by hop rather than
wrapped: every t-peer re-evaluates ownership before forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Message",
    "CONTROL_SIZE",
    "ITEM_SIZE",
    # server
    "ServerJoin",
    "ServerJoinReply",
    "CrashReport",
    "PromoteToTPeer",
    # t-network membership
    "TJoinRequest",
    "TJoinSetNeighbors",
    "TJoinNotifySuccessor",
    "TJoinAck",
    "TLeaveRequest",
    "TLeaveToPre",
    "TLeaveToSuc",
    "TLeaveAck",
    "FingerSubstitute",
    "RoleHandoff",
    "RoleHandoffAck",
    # s-network membership
    "SJoinRequest",
    "SJoinAccept",
    "SLeaveNotify",
    "SRejoinRequest",
    # liveness
    "Hello",
    "Ack",
    # data plane
    "StoreRequest",
    "StoreAck",
    "SpreadStore",
    "LookupRequest",
    "FloodQuery",
    "WalkQuery",
    "PartialQuery",
    "PartialResult",
    "DataFound",
    "LoadTransfer",
    "LoadTransferAck",
    "CollectLoad",
    "SegmentGrow",
    "TPeerUpdate",
    "RingRepairRequest",
    "RingRepairReply",
    "RingNotify",
    "RejoinRedirect",
    "ServerUpdate",
    "CachePush",
    "ReplicaPush",
    "BTRegister",
    "BTLookup",
    "BTLookupReply",
    "BTFetch",
    # repro.replica: k-successor segment replication (appended in PR 7;
    # wire ids derive from position, so new classes only ever go here)
    "ReplicaWrite",
    "ReplicaAck",
    "ReplicaSyncRequest",
    "ReplicaSyncResponse",
    # repro.swarm: tracker-mode bulk transfer (appended in PR 8)
    "AnnounceRequest",
    "AnnounceResponse",
    "HaveAnnounce",
    "PieceRequest",
    "PieceResponse",
    # codec hook
    "wire_types",
]

# Nominal message sizes (in abstract size units consumed by the
# capacity model).  Control traffic is small; each data item adds
# ITEM_SIZE.  Only ratios matter.
CONTROL_SIZE: float = 1.0
ITEM_SIZE: float = 10.0


@dataclass(slots=True)
class Message:
    """Base class: transport metadata common to all messages."""

    # Filled by the transport on send; -1 means "not yet sent".
    sender: int = field(default=-1, init=False)
    hop_count: int = field(default=0, init=False)

    # Size in abstract units.  A plain class attribute (deliberately
    # unannotated, so not a dataclass field): control messages share
    # this constant, bulk messages override it with a @property.
    size = CONTROL_SIZE


# ----------------------------------------------------------------------
# Bootstrap server exchanges (Section 3.2)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ServerJoin(Message):
    """New peer asks the well-known server to join the system."""

    address: int = 0
    capacity: float = 1.0
    interest: Optional[str] = None
    coordinate: Optional[Tuple[int, ...]] = None  # landmark bin (Section 5.2)


@dataclass(slots=True)
class ServerJoinReply(Message):
    """Server's answer: assigned role, id material and an entry peer."""

    role: str = "s"  # "t" or "s"
    p_id: int = 0
    entry_peer: int = -1  # address of existing peer to contact (-1: first peer)
    landmarks: Tuple[int, ...] = ()


@dataclass(slots=True)
class CrashReport(Message):
    """A peer reports a suspected crashed neighbor to the server.

    For a crashed t-peer, disconnected s-peers "compete to replace the
    crashed t-peer by sending messages to the server" -- this is that
    message.
    """

    crashed: int = -1
    reporter: int = -1
    reporter_is_speer: bool = True


@dataclass(slots=True)
class PromoteToTPeer(Message):
    """Server tells the winning s-peer to take over a crashed t-peer."""

    crashed: int = -1
    p_id: int = 0
    predecessor: int = -1
    predecessor_pid: int = 0
    successor: int = -1
    successor_pid: int = 0


# ----------------------------------------------------------------------
# t-network membership (Sections 3.2.1, 3.3)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class TJoinRequest(Message):
    """Join request forwarded along the ring to the insertion point."""

    new_address: int = 0
    new_pid: int = 0


@dataclass(slots=True)
class TJoinSetNeighbors(Message):
    """Leg 1 of the join triangle: pre -> new, carrying suc's address."""

    pre: int = -1
    pre_pid: int = 0
    suc: int = -1
    suc_pid: int = 0
    assigned_pid: int = 0


@dataclass(slots=True)
class TJoinNotifySuccessor(Message):
    """Leg 2 of the join triangle: new -> suc."""

    new_address: int = 0
    new_pid: int = 0
    pre: int = -1


@dataclass(slots=True)
class TJoinAck(Message):
    """Leg 3 of the join triangle: suc -> pre, completing the join."""

    new_address: int = 0


@dataclass(slots=True)
class TLeaveRequest(Message):
    """Internal kick-off for a voluntary t-peer leave (self-addressed)."""


@dataclass(slots=True)
class TLeaveToPre(Message):
    """Leg 1 of the leave triangle: leaver -> pre, carrying suc."""

    leaver: int = -1
    suc: int = -1
    suc_pid: int = 0


@dataclass(slots=True)
class TLeaveToSuc(Message):
    """Leg 2 of the leave triangle: pre -> suc, naming the leaver."""

    leaver: int = -1
    pre: int = -1
    pre_pid: int = 0


@dataclass(slots=True)
class TLeaveAck(Message):
    """Leg 3 of the leave triangle: suc -> leaver."""


@dataclass(slots=True)
class FingerSubstitute(Message):
    """Replace ``old`` with ``new`` in finger tables (role handoff).

    The headline maintenance saving of the hybrid design: substitution
    keeps t-peer positions unchanged, so fingers need a pointer swap,
    never recomputation.
    """

    old: int = -1
    new: int = -1
    origin: int = -1  # initiator of a ring circulation
    circulate: bool = False  # forward around the ring (finger mode)


@dataclass(slots=True)
class RoleHandoff(Message):
    """A leaving t-peer transfers its role to a chosen s-peer.

    Carries the full t-peer state: ring pointers, finger table, data
    items, and the s-network neighbor list.
    """

    p_id: int = 0
    predecessor: int = -1
    predecessor_pid: int = 0
    successor: int = -1
    successor_pid: int = 0
    fingers: Tuple[Tuple[int, int], ...] = ()  # (pid, address) pairs
    items: Tuple[Tuple[str, Any, int], ...] = ()  # (key, value, d_id)
    s_neighbors: Tuple[int, ...] = ()

    @property
    def size(self) -> float:
        return CONTROL_SIZE + ITEM_SIZE * len(self.items)


@dataclass(slots=True)
class RoleHandoffAck(Message):
    """New t-peer confirms the handoff to the leaving t-peer."""


# ----------------------------------------------------------------------
# s-network membership (Section 3.2.2)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SJoinRequest(Message):
    """Join request walking a random branch until degree < delta."""

    new_address: int = 0


@dataclass(slots=True)
class SJoinAccept(Message):
    """Connect point accepts the new s-peer.

    Carries the s-network's t-peer address and the shared ``p_id`` ("the
    p_id of the s-peer is the same as its neighbor").
    """

    cp: int = -1
    t_peer: int = -1
    p_id: int = 0
    segment_lo: int = 0  # lower (exclusive) bound of the s-network's segment


@dataclass(slots=True)
class SLeaveNotify(Message):
    """Graceful s-peer leave notification to each neighbor."""

    leaver: int = -1


@dataclass(slots=True)
class SRejoinRequest(Message):
    """A disconnected s-peer (cp left/crashed) rejoins via the t-peer.

    Carries the requester's ``p_id`` so the bootstrap server can route
    retries to whoever currently anchors that segment when the cached
    ``t_peer`` pointer has gone stale (the anchor departed or was
    replaced while the requester was disconnected).
    """

    new_address: int = 0
    p_id: int = 0


# ----------------------------------------------------------------------
# Liveness (Section 3.2.2)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Hello(Message):
    """Periodic heartbeat to a neighbor."""


@dataclass(slots=True)
class Ack(Message):
    """Acknowledgment of a data query; doubles as a liveness proof."""

    query_id: int = -1


# ----------------------------------------------------------------------
# Data plane (Section 3.4)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class StoreRequest(Message):
    """Insert a (key, value) item; forwarded along the ring if remote.

    ``write_id`` (appended for repro.replica) is the origin's tracking
    id for a quorum-acknowledged durable write; -1 -- the wire default,
    so pre-replica senders interoperate -- means untracked fire-and-
    forget store semantics, exactly as before.
    """

    key: str = ""
    value: Any = None
    d_id: int = 0
    origin: int = -1
    write_id: int = -1

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


@dataclass(slots=True)
class SpreadStore(Message):
    """Placement scheme 2: random spreading among t-peer's neighbors.

    ``write_id`` rides along like on :class:`StoreRequest`: >= 0 means
    the origin is waiting for a landed ack from whichever peer the
    spreading walk finally picks; -1 (the wire default) keeps the
    fire-and-forget semantics for pre-existing senders.
    """

    key: str = ""
    value: Any = None
    d_id: int = 0
    origin: int = -1
    write_id: int = -1

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


@dataclass(slots=True)
class LookupRequest(Message):
    """Lookup travelling the ring toward the owning segment."""

    d_id: int = 0
    key: str = ""
    origin: int = -1
    query_id: int = -1
    ttl: int = 0  # flood radius to use in the destination s-network
    attempt: int = 0  # reflood counter (re-keys flood deduplication)
    span_id: int = -1  # lookup trace span (observability; -1 = untraced)


@dataclass(slots=True)
class FloodQuery(Message):
    """TTL-bounded flood inside an s-network tree."""

    d_id: int = 0
    key: str = ""
    origin: int = -1
    query_id: int = -1
    ttl: int = 0
    attempt: int = 0  # reflood counter (re-keys flood deduplication)
    span_id: int = -1  # lookup trace span (observability; -1 = untraced)


@dataclass(slots=True)
class WalkQuery(Message):
    """A random walker inside an s-network (alternative to flooding).

    Forwarded to ONE random tree neighbor per hop until the item is
    found or the hop budget runs out (Section 1 names random walks as
    the other unstructured search primitive).
    """

    d_id: int = 0
    key: str = ""
    origin: int = -1
    query_id: int = -1
    ttl: int = 0
    span_id: int = -1  # lookup trace span (observability; -1 = untraced)


@dataclass(slots=True)
class PartialQuery(Message):
    """Keyword/prefix search flood (Section 5.3).

    "Interest-based s-network is also useful for partial/keyword search
    ...  the partial search is conducted in the corresponding s-network
    similar to that in other unstructured peer-to-peer networks."
    Matching is key-prefix; every holder replies with all its matches.
    """

    prefix: str = ""
    origin: int = -1
    query_id: int = -1
    ttl: int = 0


@dataclass(slots=True)
class PartialResult(Message):
    """One peer's matches for a partial search."""

    query_id: int = -1
    matches: Tuple[Tuple[str, Any], ...] = ()
    holder: int = -1

    @property
    def size(self) -> float:
        return CONTROL_SIZE + ITEM_SIZE * len(self.matches)


@dataclass(slots=True)
class DataFound(Message):
    """Positive lookup answer sent directly to the querying peer.

    Carries the holder's s-network identity (``holder_pid`` plus its
    segment's lower bound) so bypass rule 3 (Section 5.4) can add a
    shortcut for future lookups into that segment.
    """

    query_id: int = -1
    key: str = ""
    value: Any = None
    holder: int = -1
    holder_pid: int = 0
    holder_pred_pid: int = 0
    hops: int = 0  # overlay hops the answered query travelled (tracing)

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


@dataclass(slots=True)
class LoadTransfer(Message):
    """Bulk movement of data items (join load transfer / load dump).

    ``transfer_id >= 0`` requests an acknowledgment: departure-time
    dumps are acked and retried so simultaneous leaves cannot silently
    destroy the handed-over data.
    """

    items: Tuple[Tuple[str, Any, int], ...] = ()  # (key, value, d_id)
    reason: str = "join"
    transfer_id: int = -1
    # Where the ack belongs when the dump was relayed (server fallback).
    origin: int = -1

    @property
    def size(self) -> float:
        return CONTROL_SIZE + ITEM_SIZE * len(self.items)


@dataclass(slots=True)
class StoreAck(Message):
    """Final holder confirms a store to the originating peer.

    Only sent when bypass links (Section 5.4) are enabled: rule 2 adds a
    bypass link between the originator and the holder when they sit in
    different s-networks, so the originator must learn who the holder
    ended up being.  Carries the holder's s-network identity (its
    ``p_id`` and the segment boundary) so the originator can route
    future lookups for that segment over the bypass.
    """

    key: str = ""
    holder: int = -1
    holder_pid: int = 0
    holder_pred_pid: int = 0


@dataclass(slots=True)
class LoadTransferAck(Message):
    """Receipt for an acked LoadTransfer (departure-time dumps)."""

    transfer_id: int = -1


@dataclass(slots=True)
class CollectLoad(Message):
    """Load-transfer instruction flooded through an s-network tree.

    After a t-peer join completes, the successor's whole s-network must
    hand over items in the new peer's segment (Table 1's
    ``loadtransfer`` loops over "each peer in the current s-network").
    This message carries the segment bounds and the new owner's address;
    every receiving member extracts matching items and ships them via
    :class:`LoadTransfer`.
    """

    new_address: int = -1
    new_pid: int = 0
    pred_pid: int = 0


@dataclass(slots=True)
class SegmentGrow(Message):
    """s-network-wide notice that the segment's lower bound moved down.

    Sent when the predecessor t-peer leaves or is excised: the departed
    segment merges into this s-network, so members widen their local
    ownership test.  Flooded down the tree.
    """

    new_lo: int = 0


@dataclass(slots=True)
class TPeerUpdate(Message):
    """s-network-wide notice that the anchoring t-peer changed.

    Flooded through the tree after a role handoff or crash promotion.
    Receivers repoint their ``t_peer`` pointer (and their ``cp`` if it
    was the departed t-peer).
    """

    new_t: int = -1
    old_t: int = -1


@dataclass(slots=True)
class RingRepairRequest(Message):
    """A t-peer asks the server for fresh ring pointers.

    Used when a ring neighbor crashed and no s-peer exists to promote
    (empty s-network): the server is the only party that still knows the
    ring order.
    """

    suspect: int = -1


@dataclass(slots=True)
class RingRepairReply(Message):
    """Server's authoritative answer to a ring repair request."""

    predecessor: int = -1
    predecessor_pid: int = 0
    successor: int = -1
    successor_pid: int = 0


@dataclass(slots=True)
class RingNotify(Message):
    """Chord-style notify: "I am your ring neighbor at this p_id".

    Sent by a freshly promoted t-peer to the neighbors the server's
    authoritative directory names, so that *concurrent adjacent*
    handoffs converge: an announcement addressed to a departed old
    address is simply dropped, and the later handoff's notify fixes the
    earlier peer's stale pointer.  ``claim`` is "pred" ("I am your
    predecessor") or "suc".
    """

    p_id: int = 0
    claim: str = "pred"


@dataclass(slots=True)
class RejoinRedirect(Message):
    """Server points a losing crash reporter at the replacement t-peer.

    The disconnected s-peers that did not win the election rejoin the
    s-network through the promoted peer.
    """

    new_t: int = -1


@dataclass(slots=True)
class ServerUpdate(Message):
    """Registry maintenance notice to the bootstrap server.

    The server keeps an authoritative view of t-network membership (it
    generated every ``p_id``) and of s-network sizes so it can balance
    assignments and arbitrate crash replacements.  ``kind`` is one of
    ``t_join``, ``t_leave``, ``t_handoff``, ``s_join``, ``s_leave``.
    """

    kind: str = ""
    address: int = -1
    p_id: int = 0
    extra: int = -1  # handoff: old address; s_join/s_leave: t-peer address


@dataclass(slots=True)
class CachePush(Message):
    """Origin hands a freshly fetched popular item to its t-peer.

    Part of the caching scheme (the paper's future work): the t-peer
    becomes a surrogate, answering future remote lookups from this
    whole s-network before they reach the ring.
    """

    key: str = ""
    value: Any = None
    d_id: int = 0

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


@dataclass(slots=True)
class ReplicaPush(Message):
    """A durable extra copy of an item (replication extension).

    Walks downward like :class:`SpreadStore` but the receiving peer
    *keeps* the copy instead of coin-flipping, and ``remaining`` further
    replicas continue from there.
    """

    key: str = ""
    value: Any = None
    d_id: int = 0
    remaining: int = 0

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


# ----------------------------------------------------------------------
# BitTorrent-style s-network (Section 5.5)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BTRegister(Message):
    """s-peer reports a newly stored item to its tracker t-peer."""

    key: str = ""
    d_id: int = 0
    holder: int = -1


@dataclass(slots=True)
class BTLookup(Message):
    """Lookup sent directly to the tracker t-peer (no flooding)."""

    d_id: int = 0
    key: str = ""
    origin: int = -1
    query_id: int = -1


@dataclass(slots=True)
class BTLookupReply(Message):
    """Tracker's answer: which peer holds the item (-1 = not found)."""

    query_id: int = -1
    key: str = ""
    holder: int = -1


@dataclass(slots=True)
class BTFetch(Message):
    """Origin fetches the item directly from the holder."""

    key: str = ""
    origin: int = -1
    query_id: int = -1


# ----------------------------------------------------------------------
# repro.replica: k-successor segment replication (durable writes)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ReplicaWrite(Message):
    """One replica copy travelling down the owner's successor chain.

    The owner t-peer sends this to its ring successor; each receiving
    t-peer stores the copy in its *replica store* (not its database --
    it does not own the segment), acknowledges to ``ack_to`` when the
    write is tracked, and forwards the message onward while
    ``remaining > 0`` and the next successor is neither itself nor
    ``owner`` (small rings stop the chain instead of wrapping).
    """

    key: str = ""
    value: Any = None
    d_id: int = 0
    owner: int = -1  # owning t-peer (chain stop condition)
    ack_to: int = -1  # where ReplicaAck goes; -1 = untracked, no ack
    write_id: int = -1  # owner-scoped pending-write id
    remaining: int = 0  # further chain hops after this receiver

    # Constant size: a plain class attribute avoids a property call on
    # the transport hot path.
    size = CONTROL_SIZE + ITEM_SIZE


@dataclass(slots=True)
class ReplicaAck(Message):
    """Replica confirms a copy; owner reports the quorum decision.

    Two legs share the class: a replica holder acks the owner
    (``final=False``, ``write_id`` is the owner's pending id) and the
    owner notifies the write's origin once the ack quorum is met or
    definitively missed (``final=True``, ``write_id`` is the origin's
    tracking id, ``committed`` carries the verdict).
    """

    write_id: int = -1
    replica: int = -1  # address of the confirming replica holder
    committed: bool = True
    final: bool = False


@dataclass(slots=True)
class ReplicaSyncRequest(Message):
    """Anti-entropy probe: the owner's segment digest, chain-forwarded.

    Each replica holder on the successor chain digests its replica
    store over ``(lo, hi]`` and answers ``origin`` with a
    :class:`ReplicaSyncResponse` when the digests disagree (an empty
    owner digest never matches, which is how a freshly promoted owner
    pulls the whole segment).
    """

    lo: int = 0
    hi: int = 0
    digest: str = ""
    origin: int = -1
    remaining: int = 0


@dataclass(slots=True)
class ReplicaSyncResponse(Message):
    """A replica holder's full segment contents, sent on digest mismatch.

    The owner merges items it is missing into its database and pushes
    items the responder is missing back as targeted
    :class:`ReplicaWrite` messages, repairing both directions.
    """

    lo: int = 0
    hi: int = 0
    items: Tuple[Tuple[str, Any, int], ...] = ()  # (key, value, d_id)

    @property
    def size(self) -> float:
        return CONTROL_SIZE + ITEM_SIZE * len(self.items)


# ----------------------------------------------------------------------
# repro.swarm: tracker-mode chunked bulk transfer (Section 5.5)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class AnnounceRequest(Message):
    """Peer announces its piece bitmap to the tracker and asks for holders.

    Routed like :class:`StoreRequest`: an s-peer sends it to its t-peer,
    t-peers forward along the ring until the segment owner of ``d_id``
    (the tracker for ``content``) handles it.  ``have`` is a
    little-endian byte bitmap (bit ``i`` of byte ``i // 8`` = piece
    ``i``); an all-zero map registers a leech, a full map a seed.
    """

    content: str = ""  # manifest content hash (hex)
    d_id: int = 0  # hash of the content id -> tracker segment
    origin: int = -1
    n_pieces: int = 0
    have: bytes = b""


@dataclass(slots=True)
class AnnounceResponse(Message):
    """Tracker's answer: the other holders and their piece bitmaps."""

    content: str = ""
    n_pieces: int = 0
    holders: Tuple[Tuple[int, bytes], ...] = ()  # (address, bitmap)


@dataclass(slots=True)
class HaveAnnounce(Message):
    """Incremental bitmap update: ``holder`` acquired piece ``piece``.

    Routed to the tracker like :class:`AnnounceRequest`; keeps the
    tracker's availability view fresh without re-announcing the whole
    bitmap after every piece.
    """

    content: str = ""
    d_id: int = 0
    holder: int = -1
    piece: int = 0
    n_pieces: int = 0


@dataclass(slots=True)
class PieceRequest(Message):
    """Direct request for one piece from a peer known to hold it."""

    content: str = ""
    index: int = 0
    origin: int = -1


@dataclass(slots=True)
class PieceResponse(Message):
    """One verified-size piece of content, sent directly to the requester.

    ``data`` is empty when the holder no longer has the piece (the
    requester re-announces and retries elsewhere).
    """

    content: str = ""
    index: int = 0
    data: bytes = b""
    total: int = 0  # n_pieces, so the sim size model can scale per piece

    @property
    def size(self) -> float:
        # The whole item costs ITEM_SIZE; each piece is 1/total of it.
        return CONTROL_SIZE + ITEM_SIZE / max(1, self.total)


# ----------------------------------------------------------------------
# Codec hook (live runtime)
# ----------------------------------------------------------------------
def wire_types() -> Tuple[type, ...]:
    """Every concrete message class, in stable wire-registration order.

    The live runtime's codec (:mod:`repro.runtime.codec`) derives its
    type-id table from this tuple: position in the ``__all__`` listing
    is the wire type id (plus a fixed offset).  Append new message
    classes to ``__all__`` -- never reorder or remove entries -- and
    existing wire ids stay stable across versions.
    """
    module = globals()
    out = []
    for name in __all__:
        obj = module.get(name)
        if isinstance(obj, type) and issubclass(obj, Message) and obj is not Message:
            out.append(obj)
    return tuple(out)
