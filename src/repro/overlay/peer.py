"""Base peer machinery shared by all overlay nodes.

A :class:`BasePeer` owns a mailbox dispatch table (message class ->
``on_<ClassName>`` method discovered by reflection), a data store, and
its attachment to a physical host.  The hybrid peer, the Chord baseline
peer and the Gnutella baseline peer all inherit from it.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Optional, Type

from ..sim.engine import Engine
from ..sim.trace import TraceBus
from .idspace import IdSpace
from .messages import Message
from .transport import TransportBase

__all__ = ["BasePeer"]


class BasePeer:
    """An addressable protocol participant.

    Parameters
    ----------
    address:
        Unique overlay address (stand-in for an IP; the live runtime
        packs a real ``(ip, port)`` endpoint into this int).
    host:
        Physical node this peer resides on (0 in the live runtime).
    engine, transport, idspace:
        Shared plumbing.  ``engine`` is anything with the
        :class:`~repro.sim.engine.Engine` timer surface (``now`` /
        ``call_later``); ``transport`` any
        :class:`~repro.overlay.transport.TransportBase`.
    trace:
        Optional trace bus for metrics/tests.

    Subclasses implement handlers named ``on_<MessageClassName>``; the
    dispatch table is built once per class and cached.
    """

    _dispatch_cache: Dict[type, Dict[str, str]] = {}

    def __init__(
        self,
        address: int,
        host: int,
        engine: Engine,
        transport: TransportBase,
        idspace: IdSpace,
        trace: Optional[TraceBus] = None,
    ) -> None:
        self.address = address
        self.host = host
        self.engine = engine
        self.transport = transport
        self.idspace = idspace
        self.trace = trace
        self.alive = True
        self.messages_received = 0
        # Per-category wants() answers, cached against the bus version
        # (same trick as Transport): emit() builds its payload dict
        # before the guard runs, so hot handlers ask wants_trace()
        # first and skip the call entirely.
        self._wants_cache: Dict[str, bool] = {}
        self._wants_version = -1
        self._dispatch = self._build_dispatch()
        # Shadow the send() method with a pre-bound partial: one less
        # Python frame on the hottest call path in the system.
        self.send = partial(transport.send, self)

    # ------------------------------------------------------------------
    def _build_dispatch(self) -> Dict[str, Callable[[Message], None]]:
        # The name -> method-name map is discovered once per class; each
        # instance then binds it to itself so dispatch is a single dict
        # lookup yielding a bound method (no per-message getattr).
        cls = type(self)
        cached = BasePeer._dispatch_cache.get(cls)
        if cached is None:
            cached = {
                name[3:]: name
                for name in dir(cls)
                if name.startswith("on_") and callable(getattr(cls, name))
            }
            BasePeer._dispatch_cache[cls] = cached
        return {msg_name: getattr(self, meth) for msg_name, meth in cached.items()}

    # ------------------------------------------------------------------
    def send(self, dst_address: int, msg: Message) -> bool:
        """Send a message through the transport.

        Instances shadow this with a bound partial of the same
        signature (see ``__init__``); the method remains as the
        documented interface.
        """
        return self.transport.send(self, dst_address, msg)

    def send_many(self, dst_addresses, msg: Message) -> int:
        """Fan one message out to many destinations (see Transport.send_many)."""
        return self.transport.send_many(self, dst_addresses, msg)

    def receive(self, msg: Message) -> None:
        """Dispatch an incoming message to its ``on_*`` handler."""
        if not self.alive:
            return
        self.messages_received += 1
        dispatch = self._dispatch
        cls = type(msg)
        handler = dispatch.get(cls)
        if handler is None:
            # First message of this class: resolve by name, then memoize
            # under the class itself so steady-state dispatch hashes a
            # type instead of a string.
            handler = dispatch.get(cls.__name__)
            if handler is None:
                self.unhandled(msg)
                return
            dispatch[cls] = handler
        handler(msg)

    def unhandled(self, msg: Message) -> None:
        """Hook for messages with no handler; loud by default.

        Protocol bugs where a peer in the wrong role receives a message
        should fail fast in tests rather than vanish.
        """
        raise NotImplementedError(
            f"{type(self).__name__} at {self.address} has no handler for "
            f"{type(msg).__name__}"
        )

    # ------------------------------------------------------------------
    def emit(self, category: str, **payload: Any) -> None:
        """Publish a trace record (no-op unless someone wants ``category``)."""
        if self.trace is not None and self.trace.wants(category):
            self.trace.publish(self.engine.now, category, peer=self.address, **payload)

    def wants_trace(self, category: str) -> bool:
        """Cached ``trace.wants(category)`` for per-message call sites.

        ``emit()`` evaluates its keyword arguments before the guard can
        run; handlers on the message hot path therefore check this first
        so that with no subscriber the cost is one dict lookup.  The
        cache is invalidated wholesale whenever the bus's listener set
        changes (``TraceBus.version``).
        """
        trace = self.trace
        if trace is None:
            return False
        if trace.version != self._wants_version:
            self._wants_cache.clear()
            self._wants_version = trace.version
        want = self._wants_cache.get(category)
        if want is None:
            want = trace.wants(category)
            self._wants_cache[category] = want
        return want

    def crash(self) -> None:
        """Die abruptly: no notifications, in-flight messages undeliverable."""
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} addr={self.address} host={self.host} {state}>"
