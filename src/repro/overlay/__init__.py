"""Generic overlay primitives.

Shared by the hybrid system and both baselines: the circular identifier
space (:mod:`~repro.overlay.idspace`), the protocol message taxonomy
(:mod:`~repro.overlay.messages`), the base peer with reflective message
dispatch (:mod:`~repro.overlay.peer`), and the transport that delivers
overlay messages across physical shortest paths
(:mod:`~repro.overlay.transport`).
"""

from .idspace import IdSpace
from .peer import BasePeer
from .transport import Actor, Transport

__all__ = ["IdSpace", "BasePeer", "Actor", "Transport"]
