"""Identifier-space arithmetic.

Both peers and data items live in one circular integer ID space:
t-peers carry a ``p_id``; a data key is hashed to a ``d_id`` "in the
same range as p_id" (Section 3.1).  The ``p_id``s of the t-peers cut
the circle into segments, and each s-network serves the data whose
``d_id`` falls in its t-peer's segment.

All interval logic here is modular ("wrapping"), matching Chord
conventions: a segment owned by t-peer ``t`` with predecessor ``p`` is
the half-open arc ``(p, t]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["IdSpace", "ClusteredIdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """A circular ID space of size ``2**bits``.

    The paper does not fix the space size; 32 bits comfortably exceeds
    any simulated population and keeps hashes cheap.
    """

    bits: int = 32

    def __post_init__(self) -> None:
        if not (1 <= self.bits <= 128):
            raise ValueError(f"bits must be in [1, 128], got {self.bits}")
        # The space size is a power of two, so all modular reductions
        # below are bitmasks.  Cached here (bypassing frozen) because
        # interval tests run millions of times per experiment.
        object.__setattr__(self, "_mask", (1 << self.bits) - 1)

    @property
    def size(self) -> int:
        return 1 << self.bits

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def hash_key(self, key: str) -> int:
        """Hash a data key to a ``d_id``.

        Uses BLAKE2b (stable across processes, unlike builtin ``hash``)
        truncated to the space size.
        """
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
        return int.from_bytes(digest, "big") % self.size

    def hash_address(self, address: int) -> int:
        """Hash a peer address (stand-in for an IP) to a ``p_id``.

        One of the server's ``p_id`` generation options in Section 3.2.1
        ("generate the p_id by hashing the IP address of the new peer").
        """
        digest = hashlib.blake2b(
            address.to_bytes(8, "big", signed=False), digest_size=16
        ).digest()
        return int.from_bytes(digest, "big") % self.size

    # ------------------------------------------------------------------
    # Circle arithmetic
    # ------------------------------------------------------------------
    def normalize(self, x: int) -> int:
        """Reduce ``x`` into the space."""
        return x & self._mask

    def distance_cw(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b`` (0 when equal)."""
        return (b - a) & self._mask

    def in_interval(
        self,
        x: int,
        left: int,
        right: int,
        *,
        closed_left: bool = False,
        closed_right: bool = False,
    ) -> bool:
        """Is ``x`` in the clockwise arc from ``left`` to ``right``?

        The arc is open at both ends unless ``closed_*`` flags say
        otherwise.  When ``left == right`` the open arc is the whole
        circle minus the point (single-peer ring semantics): every
        other point is inside.
        """
        mask = self._mask
        x &= mask
        left &= mask
        right &= mask
        if left == right:
            if x == left:
                return closed_left or closed_right
            return True
        if x == left:
            return closed_left
        if x == right:
            return closed_right
        # x differs from both endpoints, so the strict comparison below
        # is exactly the original ``0 < dist(left, x) < dist(left, right)``.
        return ((x - left) & mask) < ((right - left) & mask)

    def owner_segment_contains(self, d_id: int, predecessor_id: int, owner_id: int) -> bool:
        """Does the segment ``(predecessor, owner]`` contain ``d_id``?

        This is the ownership test used by both data placement and
        lookup routing; it is the single hottest predicate in the
        system, hence the flattened arithmetic (equivalent to
        ``in_interval(..., closed_right=True)``).
        """
        mask = self._mask
        d = (d_id - predecessor_id) & mask
        r = (owner_id - predecessor_id) & mask
        if r == 0:  # predecessor == owner: the whole circle
            return True
        return 0 < d <= r

    def midpoint_cw(self, a: int, b: int) -> int:
        """The clockwise midpoint of the arc from ``a`` to ``b``.

        Used for ``p_id`` conflict resolution: *"the t-peer initiating
        the join process will generate a new p_id which lies in between
        the p_id of itself and its successor ... simply the midpoint for
        load balancing purpose"* (Section 3.2.1).

        When ``a == b`` the arc is the whole circle (single-member
        ring), so the midpoint is the antipode.
        """
        if self.normalize(a) == self.normalize(b):
            return self.normalize(a + self.size // 2)
        return self.normalize(a + self.distance_cw(a, b) // 2)

    def finger_start(self, p_id: int, k: int) -> int:
        """Start of the k-th finger interval: ``p_id + 2**k``."""
        if not (0 <= k < self.bits):
            raise ValueError(f"finger index {k} out of range for {self.bits}-bit space")
        return self.normalize(p_id + (1 << k))


@dataclass(frozen=True)
class ClusteredIdSpace(IdSpace):
    """An ID space where same-category keys cluster into one band.

    Section 5.3's interest-based s-networks serve "data of some common
    properties", i.e. a whole category must hash into one segment.
    This space realises that: a key of the form ``"category:rest"``
    hashes to ``band(category) | low_hash(rest)`` where the band is the
    top ``bits - band_bits`` bits of the category's hash.  All keys of a
    category therefore land within a ``2**band_bits``-wide arc around
    the category anchor ``hash_key(category)``, which is the id the
    server uses to pick the anchoring t-peer.

    Keys without a ``":"`` hash uniformly, exactly like the base space.
    """

    band_bits: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (1 <= self.band_bits < self.bits):
            raise ValueError(
                f"band_bits must be in [1, bits), got {self.band_bits} for "
                f"{self.bits}-bit space"
            )

    def hash_key(self, key: str) -> int:
        category, sep, rest = key.partition(":")
        if not sep or not category:
            return super().hash_key(key)
        band_mask = ((1 << (self.bits - self.band_bits)) - 1) << self.band_bits
        band = super().hash_key(category) & band_mask
        low = super().hash_key(rest) & ((1 << self.band_bits) - 1)
        return band | low

    def category_anchor(self, category: str) -> int:
        """The id the server anchors this category's s-network at."""
        return super().hash_key(category)
