"""Data insertion and lookup (Section 3.4) plus the BitTorrent-style
s-network variant (Section 5.5).

:class:`DataPlaneMixin` implements the two public operations --
``store(key, value)`` and ``lookup(key)`` -- and every message handler
they fan out into:

* local operations when the hashed ``d_id`` falls inside the peer's own
  s-network segment (insert into own database; TTL-bounded tree flood);
* remote operations routed through the t-network ring to the owning
  segment, then flooded there;
* both placement schemes of Section 3.4 -- *direct* (the owning t-peer
  stores everything, causing the imbalance of Fig. 4a-c) and *spread*
  (recursive random spreading over directly connected s-peers,
  Fig. 4d-f);
* origin-side lookup timers with optional TTL-growing refloods;
* the tracker-style data plane when ``snetwork_style == "bittorrent"``.

Lookup metrics (latency / failure ratio / connum) are recorded in the
shared :class:`~repro.core.lookup.QueryRegistry`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..overlay.messages import (
    Ack,
    BTFetch,
    CachePush,
    ReplicaAck,
    ReplicaPush,
    BTLookup,
    BTLookupReply,
    BTRegister,
    DataFound,
    FloodQuery,
    LookupRequest,
    SpreadStore,
    StoreAck,
    StoreRequest,
)
from ..sim.timers import Timer
from .config import PLACEMENT_SPREAD, SEARCH_WALK, SNETWORK_BITTORRENT

__all__ = ["DataPlaneMixin"]


class _PendingLookup:
    """Origin-side state of one in-flight lookup."""

    __slots__ = (
        "timer", "ttl", "attempts", "via_bypass", "bypass_retry_done",
        "d_id", "key", "local", "span",
    )

    def __init__(
        self, timer: Timer, ttl: int, d_id: int, key: str, local: bool,
        span: int = -1,
    ) -> None:
        self.timer = timer
        self.ttl = ttl
        self.attempts = 0
        self.via_bypass = False  # the initial send used a bypass link
        self.bypass_retry_done = False
        self.d_id = d_id
        self.key = key
        self.local = local
        self.span = span  # trace span id carried on every query message


class DataPlaneMixin:
    """store/lookup operations and their message handlers."""

    # ==================================================================
    # Public API
    # ==================================================================
    def store(self, key: str, value: Any) -> int:
        """Insert a (key, value) item into the system; returns its d_id.

        "The peer generating the data item first hashes the key into
        this space.  If the d_id lies in the range of the current
        s-network, the data item is inserted to its database ...
        otherwise the data item is sent to the t-peer."
        """
        d_id = self.idspace.hash_key(key)
        if self.config.replication_factor > 1:
            # Durable path (repro.replica): the owning t-peer anchors
            # the primary copy and fans a ReplicaWrite chain down its
            # k-1 ring successors.  Placement spreading is bypassed --
            # one authoritative holder per item is what makes the
            # anti-entropy digest and failover promotion well-defined.
            if self.role == "t" and self.owns(d_id):
                self._replica_ingest(key, value, d_id, origin=self.address)
            else:
                target = self.t_peer if self.role == "s" else self.ring_next_hop(d_id)
                self.send(
                    target,
                    StoreRequest(key=key, value=value, d_id=d_id, origin=self.address),
                )
            return d_id
        if self.owns_locally(d_id):
            self._insert_as_holder(key, value, d_id, origin=self.address)
        elif self.role == "s":
            self.send(
                self.t_peer,
                StoreRequest(key=key, value=value, d_id=d_id, origin=self.address),
            )
        else:
            self.send(
                self.ring_next_hop(d_id),
                StoreRequest(key=key, value=value, d_id=d_id, origin=self.address),
            )
        return d_id

    def lookup(self, key: str) -> int:
        """Start a lookup; returns the query id tracked by the registry."""
        d_id = self.idspace.hash_key(key)
        local = self.owns_locally(d_id)
        rec = self.queries.start(self.address, key, d_id, self.engine.now, local)
        qid = rec.query_id
        timer = Timer(self.engine, self.config.lookup_timeout, lambda: self._lookup_expired(qid))
        # Span id: deterministic (address, query) tag carried on every
        # message this lookup spawns, so per-hop trace records across
        # peers (or scraped nodes) can be stitched into one span.
        span = ((self.address & 0xFFFFFFFF) << 24) ^ (qid & 0xFFFFFF)
        pending = _PendingLookup(timer, self.config.ttl, d_id, key, local, span=span)
        self.pending_lookups[qid] = pending
        self._launch_lookup(qid, pending)
        return qid

    # ==================================================================
    # Lookup driving
    # ==================================================================
    def _launch_lookup(self, qid: int, pending: _PendingLookup) -> None:
        pending.timer.start()
        d_id, key, ttl = pending.d_id, pending.key, pending.ttl
        # Own database first -- every peer "checks its own database" --
        # then any surrogate copy in the local cache.
        item = self.database.get(key) or self.cache_lookup(key)
        if item is not None:
            self.queries.succeed(qid, self.engine.now, holder=self.address)
            pending.timer.cancel()
            del self.pending_lookups[qid]
            if self.wants_trace("lookup.done"):
                self.emit(
                    "lookup.done", query_id=qid, span=pending.span,
                    hops=0, contacts=0, latency=0.0,
                )
            return
        if pending.local:
            if self.config.snetwork_style == SNETWORK_BITTORRENT:
                if self.role == "t":
                    self._bt_resolve(qid, key, origin=self.address)
                else:
                    self.send(
                        self.t_peer,
                        BTLookup(d_id=d_id, key=key, origin=self.address, query_id=qid),
                    )
                return
            if self.config.search_mode == SEARCH_WALK:
                self.launch_walkers(qid, key, d_id, span_id=pending.span)
                return
            flood = FloodQuery(
                d_id=d_id, key=key, origin=self.address, query_id=qid,
                ttl=ttl, attempt=pending.attempts, span_id=pending.span,
            )
            self.seen_queries.add((qid, pending.attempts))
            fanout = self.send_many(self.flood_targets(), flood)
            if self.wants_trace("flood.fanout"):
                self.emit("flood.fanout", query_id=qid, span=pending.span, fanout=fanout)
            return
        # Remote: try a bypass shortcut first (Section 5.4), else ride
        # the t-network.
        if self.config.bypass_links:
            target = self.bypass_target_for(d_id)
            if target is not None:
                pending.via_bypass = True
                self.queries.note_bypass(qid)
                self.send(
                    target,
                    FloodQuery(
                        d_id=d_id, key=key, origin=self.address, query_id=qid,
                        ttl=ttl, attempt=pending.attempts, span_id=pending.span,
                    ),
                )
                return
        request = LookupRequest(
            d_id=d_id, key=key, origin=self.address, query_id=qid,
            ttl=ttl, attempt=pending.attempts, span_id=pending.span,
        )
        if self.role == "s":
            self.send(self.t_peer, request)
        else:
            self.send(self.ring_next_hop(d_id), request)

    def _lookup_expired(self, qid: int) -> None:
        pending = self.pending_lookups.get(qid)
        if pending is None:
            return
        retry_budget = self.config.max_refloods
        if pending.via_bypass:
            # A stale bypass may have flooded the wrong s-network; one
            # retry through the authoritative t-network is always owed
            # on top of the configured refloods.
            retry_budget += 1
        if pending.attempts < retry_budget:
            pending.attempts += 1
            if pending.via_bypass and not pending.bypass_retry_done:
                # Same TTL, but via the t-network this time.
                pending.bypass_retry_done = True
            else:
                pending.ttl += self.config.reflood_ttl_step
                self.queries.note_reflood(qid)
            self._relaunch(qid, pending)
            return
        pending.timer.cancel()
        del self.pending_lookups[qid]
        self.queries.fail(qid, self.engine.now)
        self.emit("lookup.failed", query_id=qid, key=pending.key)

    def _relaunch(self, qid: int, pending: _PendingLookup) -> None:
        """Re-issue the lookup (reflood) with the current TTL."""
        pending.timer.start()
        d_id, key, ttl = pending.d_id, pending.key, pending.ttl
        if pending.local and self.config.snetwork_style != SNETWORK_BITTORRENT:
            self.seen_queries.add((qid, pending.attempts))
            flood = FloodQuery(
                d_id=d_id, key=key, origin=self.address, query_id=qid,
                ttl=ttl, attempt=pending.attempts, span_id=pending.span,
            )
            fanout = self.send_many(self.flood_targets(), flood)
            if self.wants_trace("flood.fanout"):
                self.emit("flood.fanout", query_id=qid, span=pending.span, fanout=fanout)
            return
        request = LookupRequest(
            d_id=d_id, key=key, origin=self.address, query_id=qid,
            ttl=ttl, attempt=pending.attempts, span_id=pending.span,
        )
        if self.role == "s":
            self.send(self.t_peer, request)
        else:
            self.send(self.ring_next_hop(d_id), request)

    # ==================================================================
    # Lookup message handlers
    # ==================================================================
    def on_LookupRequest(self, msg: LookupRequest) -> None:
        """Ring leg of a remote lookup."""
        if self.wants_trace("lookup.hop"):
            self.emit(
                "lookup.hop", span=msg.span_id, query_id=msg.query_id,
                hop=msg.hop_count + 1, kind="ring",
            )
        if self.role != "t":
            # Stale t-peer pointer (handoff in flight): re-route.
            # Single-destination re-send of the same object, so the
            # in-place hop bump is safe (see TransportBase contract).
            msg.hop_count += 1
            self.send(self.t_peer, msg)
            return
        self.queries.contact(msg.query_id)
        self.note_query_activity(msg.sender, msg.query_id)
        if self.cache is not None:
            cached = self.cache.get(msg.key, self.engine.now)
            if cached is not None:
                # Surrogate copy: answer without riding the rest of the
                # ring (the caching scheme's load diversion).
                self.cache_hit_answer(
                    msg.origin, msg.query_id, cached, hops=msg.hop_count + 1
                )
                return
        # self.owns(msg.d_id), inlined: one test per ring hop.
        pred = self.predecessor_pid
        mask = self.idspace._mask
        span = (self.p_id - pred) & mask
        if not (span == 0 or 0 < ((msg.d_id - pred) & mask) <= span):
            msg.hop_count += 1
            self.send(self.ring_next_hop(msg.d_id), msg)
            return
        item = self.database.get(msg.key)
        if item is None and self.config.replication_factor > 1:
            # Failover window: ownership reached us before the repair
            # pull finished -- serve reads from the replica copy.
            item = self.replicas.get(msg.key)
        if item is not None:
            self._answer(msg.origin, msg.query_id, item, hops=msg.hop_count + 1)
            return
        if self.config.snetwork_style == SNETWORK_BITTORRENT:
            self._bt_resolve(
                msg.query_id, msg.key, origin=msg.origin, hops=msg.hop_count + 1
            )
            return
        if self.config.search_mode == SEARCH_WALK:
            self.launch_walkers(
                msg.query_id, msg.key, msg.d_id,
                span_id=msg.span_id, hops=msg.hop_count + 1,
            )
            return
        flood = FloodQuery(
            d_id=msg.d_id, key=msg.key, origin=msg.origin,
            query_id=msg.query_id, ttl=msg.ttl, attempt=msg.attempt,
            span_id=msg.span_id,
        )
        flood.hop_count = msg.hop_count + 1
        self.seen_queries.add((msg.query_id, msg.attempt))
        fanout = self.send_many(self.flood_targets(), flood)
        if self.wants_trace("flood.fanout"):
            self.emit(
                "flood.fanout", query_id=msg.query_id, span=msg.span_id,
                fanout=fanout,
            )

    def on_FloodQuery(self, msg: FloodQuery) -> None:
        """Gnutella-style flood step inside the s-network tree."""
        seen_key = (msg.query_id, msg.attempt)
        if seen_key in self.seen_queries:
            # Only possible over mesh-ablation extra links; the tree
            # delivers each query exactly once (Section 3.2.2).
            self.queries.contact(msg.query_id, duplicate=True)
            return
        self.seen_queries.add(seen_key)
        self.queries.contact(msg.query_id)
        self.note_query_activity(msg.sender, msg.query_id)
        if self.wants_trace("lookup.hop"):
            self.emit(
                "lookup.hop", span=msg.span_id, query_id=msg.query_id,
                hop=msg.hop_count + 1, kind="flood",
            )
        item = self.database.get(msg.key)
        if item is None and self.cache is not None:
            item = self.cache.get(msg.key, self.engine.now)
        if item is not None:
            # "the peer will stop flooding and send the data item to the
            # peer requesting the data item directly."
            self._answer(msg.origin, msg.query_id, item, hops=msg.hop_count + 1)
            return
        if msg.ttl > 1:
            fwd = FloodQuery(
                d_id=msg.d_id, key=msg.key, origin=msg.origin,
                query_id=msg.query_id, ttl=msg.ttl - 1, attempt=msg.attempt,
                span_id=msg.span_id,
            )
            fwd.hop_count = msg.hop_count + 1
            fanout = self.send_many(self.flood_targets(exclude=msg.sender), fwd)
            if self.wants_trace("flood.fanout"):
                self.emit(
                    "flood.fanout", query_id=msg.query_id, span=msg.span_id,
                    fanout=fanout,
                )

    def _answer(self, origin: int, qid: int, item, hops: int = 0) -> None:
        self.answers_served += 1
        self.send(
            origin,
            DataFound(
                query_id=qid,
                key=item.key,
                value=item.value,
                holder=self.address,
                holder_pid=self.p_id,
                holder_pred_pid=self._segment_lower_bound(),
                hops=hops,
            ),
        )

    def _segment_lower_bound(self) -> int:
        return self.predecessor_pid if self.role == "t" else self.segment_lo

    def on_DataFound(self, msg: DataFound) -> None:
        """Answer arrived at the origin."""
        pending = self.pending_lookups.pop(msg.query_id, None)
        if pending is not None:
            pending.timer.cancel()
        if self.queries.succeed(
            msg.query_id, self.engine.now, holder=msg.holder, hops=msg.hops
        ):
            if self.wants_trace("lookup.done"):
                rec = self.queries.get(msg.query_id)
                self.emit(
                    "lookup.done",
                    query_id=msg.query_id,
                    span=pending.span if pending is not None else -1,
                    hops=msg.hops,
                    contacts=rec.contacts if rec is not None else 0,
                    latency=rec.latency if rec is not None else 0.0,
                )
            if self.config.bypass_links and msg.holder_pid != self.p_id:
                self.add_bypass(msg.holder, msg.holder_pred_pid, msg.holder_pid)
            if self.config.cache_enabled and msg.holder != self.address:
                d_id = self.idspace.hash_key(msg.key)
                self.cache_store(msg.key, msg.value, d_id)
                if self.role == "s" and not self.owns_locally(d_id):
                    # Seed the s-network's gateway surrogate: future
                    # remote lookups from this network stop at the t-peer.
                    self.send(
                        self.t_peer,
                        CachePush(key=msg.key, value=msg.value, d_id=d_id),
                    )

    def on_CachePush(self, msg: CachePush) -> None:
        """Adopt a surrogate copy pushed by an s-network member."""
        if self.config.cache_enabled:
            self.cache_store(msg.key, msg.value, msg.d_id)

    # ==================================================================
    # Store handlers
    # ==================================================================
    def on_StoreRequest(self, msg: StoreRequest) -> None:
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        # self.owns(msg.d_id), inlined: one test per ring hop.
        pred = self.predecessor_pid
        mask = self.idspace._mask
        span = (self.p_id - pred) & mask
        if not (span == 0 or 0 < ((msg.d_id - pred) & mask) <= span):
            self.send(self.ring_next_hop(msg.d_id), msg)
            return
        if self.config.replication_factor > 1:
            # Durable path (repro.replica): primary copy here, then the
            # k-successor chain; tracked when the origin asked for a
            # quorum verdict (write_id >= 0).
            self._replica_ingest(
                msg.key, msg.value, msg.d_id, msg.origin, origin_wid=msg.write_id
            )
        elif self.config.placement == PLACEMENT_SPREAD:
            self._spread(msg.key, msg.value, msg.d_id, msg.origin, msg.write_id)
        else:
            self._insert_as_holder(
                msg.key, msg.value, msg.d_id, msg.origin, write_id=msg.write_id
            )

    def _spread(
        self, key: str, value: Any, d_id: int, origin: int, write_id: int = -1
    ) -> None:
        """Placement scheme 2: "picks a random s-peer from its directly
        connected s-peers and itself".

        Spreading continues strictly *downward* (children only) so the
        walk terminates; the paper's phrasing leaves the direction open
        and downward preserves the intended load-balancing effect.
        """
        choices = [self.address] + sorted(self.children)
        pick = choices[int(self.rng.integers(0, len(choices)))]
        if pick == self.address:
            self._insert_as_holder(key, value, d_id, origin, write_id=write_id)
        else:
            self.send(
                pick,
                SpreadStore(
                    key=key, value=value, d_id=d_id,
                    origin=origin, write_id=write_id,
                ),
            )

    def on_SpreadStore(self, msg: SpreadStore) -> None:
        self._spread(msg.key, msg.value, msg.d_id, msg.origin, msg.write_id)

    def _push_replicas(self, key: str, value: Any, d_id: int, count: int) -> None:
        """Hand ``count`` replicas to random children (one hop each)."""
        if count <= 0:
            return
        children = sorted(self.children)
        if not children:
            return
        pick = children[int(self.rng.integers(0, len(children)))]
        self.send(
            pick,
            ReplicaPush(key=key, value=value, d_id=d_id, remaining=count - 1),
        )

    def on_ReplicaPush(self, msg: ReplicaPush) -> None:
        """Adopt a durable replica; forward any further copies downward."""
        self.database.insert(msg.key, msg.value, msg.d_id)
        if msg.remaining > 0:
            self._push_replicas(msg.key, msg.value, msg.d_id, msg.remaining)

    def _insert_as_holder(
        self, key: str, value: Any, d_id: int, origin: int, write_id: int = -1
    ) -> None:
        """Final insertion at this peer, plus variant bookkeeping.

        ``write_id >= 0`` means the origin's daemon is holding a client
        put ack until the copy exists somewhere (the k == 1 analogue of
        the quorum verdict): report back the moment the insert lands.
        """
        self.database.insert(key, value, d_id)
        self.emit("data.stored", key=key, d_id=d_id)
        if self.config.snetwork_style == SNETWORK_BITTORRENT:
            if self.role == "t":
                self.bt_index[key] = self.address
            else:
                self.send(self.t_peer, BTRegister(key=key, d_id=d_id, holder=self.address))
        if write_id >= 0:
            if origin in (-1, self.address):
                self._write_verdict(write_id, True)
            else:
                self.send(
                    origin,
                    ReplicaAck(
                        write_id=write_id, replica=self.address,
                        committed=True, final=True,
                    ),
                )
        if self.config.bypass_links and origin not in (-1, self.address):
            self.send(
                origin,
                StoreAck(
                    key=key,
                    holder=self.address,
                    holder_pid=self.p_id,
                    holder_pred_pid=self._segment_lower_bound(),
                ),
            )

    def on_StoreAck(self, msg: StoreAck) -> None:
        """Bypass rule 2: link up with the holder of our remote insert."""
        if self.config.bypass_links and msg.holder_pid != self.p_id:
            self.add_bypass(msg.holder, msg.holder_pred_pid, msg.holder_pid)

    # ==================================================================
    # BitTorrent-style data plane (Section 5.5)
    # ==================================================================
    def on_BTRegister(self, msg: BTRegister) -> None:
        if self.role == "t":
            self.bt_index[msg.key] = msg.holder

    def _bt_resolve(self, qid: int, key: str, origin: int, hops: int = 0) -> None:
        """Tracker t-peer answers from its index (no flooding)."""
        item = self.database.get(key)
        if item is not None:
            if origin == self.address:
                self.queries.succeed(qid, self.engine.now, holder=self.address)
                self.answers_served += 1
                pending = self.pending_lookups.pop(qid, None)
                if pending is not None:
                    pending.timer.cancel()
            else:
                self._answer(origin, qid, item, hops=hops)
            return
        holder = self.bt_index.get(key, -1)
        if origin == self.address:
            if holder == -1:
                self._bt_negative(qid)
            else:
                self.send(holder, BTFetch(key=key, origin=self.address, query_id=qid))
        else:
            self.send(origin, BTLookupReply(query_id=qid, key=key, holder=holder))

    def on_BTLookup(self, msg: BTLookup) -> None:
        self.queries.contact(msg.query_id)
        self.note_query_activity(msg.sender, msg.query_id)
        if self.wants_trace("lookup.hop"):
            self.emit(
                "lookup.hop", span=-1, query_id=msg.query_id,
                hop=msg.hop_count + 1, kind="bt",
            )
        if self.role != "t":
            msg.hop_count += 1
            self.send(self.t_peer, msg)
            return
        self._bt_resolve(msg.query_id, msg.key, msg.origin, hops=msg.hop_count + 1)

    def on_BTLookupReply(self, msg: BTLookupReply) -> None:
        """Origin: fetch from the holder the tracker named."""
        if msg.holder == -1:
            self._bt_negative(msg.query_id)
            return
        if msg.query_id in self.pending_lookups:
            self.send(msg.holder, BTFetch(key=msg.key, origin=self.address, query_id=msg.query_id))

    def on_BTFetch(self, msg: BTFetch) -> None:
        self.queries.contact(msg.query_id)
        if self.wants_trace("lookup.hop"):
            self.emit(
                "lookup.hop", span=-1, query_id=msg.query_id,
                hop=msg.hop_count + 1, kind="bt",
            )
        item = self.database.get(msg.key)
        if item is not None:
            self._answer(msg.origin, msg.query_id, item, hops=msg.hop_count + 1)
        # A lost item (crash) yields silence; the origin's timer fails it.

    def _bt_negative(self, qid: int) -> None:
        """Tracker had no holder: fail fast instead of waiting out the timer."""
        pending = self.pending_lookups.pop(qid, None)
        if pending is not None:
            pending.timer.cancel()
        self.queries.fail(qid, self.engine.now)
