"""The well-known bootstrap server.

Section 3.2: "Peers that want to join the system first contact a
well-known server to obtain an arbitrary existing peer in the system."
Beyond bootstrapping, the paper gives the server several concrete jobs,
all implemented here:

* ``p_id`` generation (random or hash-of-address, Section 3.2.1);
* role assignment -- by target ratio ``p_s``, or by link capacity when
  the Section 5.1 enhancement is on ("Based on the value, the server
  decides whether the peer is a t-peer or an s-peer");
* s-network assignment -- balanced ("the server is responsible for
  assigning a joining s-peer to some s-network with a smaller size"),
  random, interest-matched (Section 5.3) or landmark-binned
  (Section 5.2);
* crash arbitration -- "The disconnected s-peers will compete to
  replace the crashed t-peer by sending messages to the server.  The
  server will pick an s-peer to be the new t-peer."

The server keeps an authoritative directory of the t-network ring
(it generated every ``p_id``), updated by :class:`ServerUpdate`
notifications, which also lets it repair the ring when a t-peer with an
empty s-network crashes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..overlay.idspace import IdSpace
from ..overlay.messages import (
    CrashReport,
    Hello,
    LoadTransfer,
    Message,
    PromoteToTPeer,
    RejoinRedirect,
    RingRepairReply,
    RingRepairRequest,
    ServerJoin,
    ServerJoinReply,
    ServerUpdate,
    SRejoinRequest,
)
from ..overlay.peer import BasePeer
from ..sim.engine import Engine
from ..sim.trace import TraceBus
from ..overlay.transport import Transport
from .config import (
    ASSIGN_BALANCED,
    ASSIGN_BINNED,
    ASSIGN_INTEREST,
    ASSIGN_RANDOM,
    HybridConfig,
)

__all__ = ["RingDirectory", "BootstrapServer"]


class RingDirectory:
    """Sorted view of the t-network ring: (p_id, address) pairs.

    Supports the queries the server needs: owner of an id, ring
    neighbors of a member, insertion/removal/substitution.
    """

    def __init__(self) -> None:
        self._pids: List[int] = []
        self._addrs: List[int] = []
        self._by_addr: Dict[int, int] = {}  # address -> p_id

    def __len__(self) -> int:
        return len(self._pids)

    def __contains__(self, address: int) -> bool:
        return address in self._by_addr

    def members(self) -> List[Tuple[int, int]]:
        """All (p_id, address) pairs in ring order."""
        return list(zip(self._pids, self._addrs))

    def pid_of(self, address: int) -> Optional[int]:
        return self._by_addr.get(address)

    def has_pid(self, p_id: int) -> bool:
        i = bisect.bisect_left(self._pids, p_id)
        return i < len(self._pids) and self._pids[i] == p_id

    # ------------------------------------------------------------------
    def insert(self, p_id: int, address: int) -> None:
        if address in self._by_addr:
            raise ValueError(f"address {address} already on ring")
        if self.has_pid(p_id):
            raise ValueError(f"p_id {p_id} already on ring")
        i = bisect.bisect_left(self._pids, p_id)
        self._pids.insert(i, p_id)
        self._addrs.insert(i, address)
        self._by_addr[address] = p_id

    def remove(self, address: int) -> None:
        p_id = self._by_addr.pop(address, None)
        if p_id is None:
            return
        i = bisect.bisect_left(self._pids, p_id)
        del self._pids[i]
        del self._addrs[i]

    def substitute(self, old: int, new: int) -> None:
        """Replace member ``old`` with ``new`` at the same ``p_id``."""
        p_id = self._by_addr.pop(old, None)
        if p_id is None:
            return
        i = bisect.bisect_left(self._pids, p_id)
        self._addrs[i] = new
        self._by_addr[new] = p_id

    # ------------------------------------------------------------------
    def successor_of_pid(self, p_id: int) -> Tuple[int, int]:
        """(p_id, address) of the first member strictly after ``p_id``."""
        if not self._pids:
            raise LookupError("ring is empty")
        i = bisect.bisect_right(self._pids, p_id) % len(self._pids)
        return self._pids[i], self._addrs[i]

    def owner_of(self, d_id: int) -> Tuple[int, int]:
        """(p_id, address) of the member owning ``d_id``.

        The owner is the first member at or clockwise-after ``d_id``
        (segments are ``(pred, owner]``).
        """
        if not self._pids:
            raise LookupError("ring is empty")
        i = bisect.bisect_left(self._pids, d_id) % len(self._pids)
        return self._pids[i], self._addrs[i]

    def neighbors_of(self, address: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """((pred_pid, pred_addr), (suc_pid, suc_addr)) of a member."""
        p_id = self._by_addr.get(address)
        if p_id is None:
            raise LookupError(f"address {address} not on ring")
        i = bisect.bisect_left(self._pids, p_id)
        n = len(self._pids)
        pi, si = (i - 1) % n, (i + 1) % n
        return (self._pids[pi], self._addrs[pi]), (self._pids[si], self._addrs[si])

    def random_member(self, rng: np.random.Generator) -> Tuple[int, int]:
        if not self._pids:
            raise LookupError("ring is empty")
        i = int(rng.integers(0, len(self._pids)))
        return self._pids[i], self._addrs[i]


@dataclass
class _Election:
    """State of one crash-replacement election."""

    crashed: int
    p_id: int
    s_reporters: List[int] = field(default_factory=list)
    t_reporters: List[int] = field(default_factory=list)
    decided: bool = False
    winner: int = -1


class BootstrapServer(BasePeer):
    """The rendezvous/arbitration actor.

    A :class:`~repro.overlay.peer.BasePeer` like everyone else -- it has
    a host and all exchanges with it pay real network latency.
    """

    def __init__(
        self,
        host: int,
        engine: Engine,
        transport: Transport,
        idspace: IdSpace,
        config: HybridConfig,
        rng: np.random.Generator,
        trace: Optional[TraceBus] = None,
        landmarks: Tuple[int, ...] = (),
    ) -> None:
        super().__init__(config.server_address, host, engine, transport, idspace, trace)
        self.config = config
        self.rng = rng
        self.landmarks = tuple(landmarks)
        self.ring = RingDirectory()
        # s-network occupancy: t-peer address -> number of s-peers.
        self.s_counts: Dict[int, int] = {}
        # Coordinates (landmark orderings) of t-peers, for binning.
        self.t_coords: Dict[int, Tuple[int, ...]] = {}
        # Interest -> anchoring t-peer (Section 5.3).
        self.interest_map: Dict[str, int] = {}
        self._elections: Dict[int, _Election] = {}
        self.t_count = 0
        self.s_count = 0
        self.joins_served = 0
        # Build-time role pre-assignment (stands in for the capacity
        # ranking a long-running server would accumulate; see
        # HybridSystem.build).  Checked before the online heuristic.
        self.preassigned_roles: Dict[int, str] = {}
        self._bootstrap_pending = False
        self._waiting_joins: List[ServerJoin] = []
        self._cap_samples: List[float] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def directory_snapshot(self) -> Dict[str, object]:
        """JSON-safe view of the authoritative directory.

        Served over the wire by the live runtime's ``status`` verb and
        used by the localnet harness to assert that the directory and
        the live ring agree; the simulator's tests read the same fields
        directly.
        """
        return {
            "t_count": self.t_count,
            "s_count": self.s_count,
            "joins_served": self.joins_served,
            "ring": [[p_id, addr] for p_id, addr in self.ring.members()],
            "s_counts": {str(a): n for a, n in sorted(self.s_counts.items())},
        }

    # ------------------------------------------------------------------
    # p_id generation (Section 3.2.1)
    # ------------------------------------------------------------------
    def generate_pid(self, address: int) -> int:
        if self.config.pid_strategy == "hash":
            return self.idspace.hash_address(address)
        return int(self.rng.integers(0, self.idspace.size))

    # ------------------------------------------------------------------
    # Role assignment
    # ------------------------------------------------------------------
    def decide_role(self, capacity: float, address: int = -1) -> str:
        """'t' or 's' for a joining peer.

        Keeps the realised ratio tracking ``p_s``.  With the
        heterogeneity enhancement, low-capacity peers dodge t-duty while
        any alternative exists and high-capacity peers take it eagerly.
        """
        preassigned = self.preassigned_roles.get(address)
        if preassigned is not None and (preassigned == "t" or self.t_count > 0):
            return preassigned
        total = self.t_count + self.s_count + 1
        target_t = max(1, round((1.0 - self.config.p_s) * total))
        deficit = target_t - self.t_count
        if self.t_count == 0:
            return "t"
        if self.config.p_s >= 1.0:
            return "s"
        if not self.config.heterogeneity_aware:
            return "t" if deficit > 0 else "s"
        # Capacity-aware: the cut line is the running median of observed
        # capacities; fast peers fill the t-deficit first, slow peers
        # only when the deficit has grown past slack (they are the only
        # ones left).
        self._cap_samples.append(capacity)
        ordered = sorted(self._cap_samples)
        median = ordered[len(ordered) // 2]
        if deficit > 0 and capacity >= median:
            return "t"
        if deficit > 1:  # starving for t-peers; anyone will do
            return "t"
        return "s"

    # ------------------------------------------------------------------
    # s-network assignment
    # ------------------------------------------------------------------
    def choose_snetwork(
        self,
        interest: Optional[str],
        coordinate: Optional[Tuple[int, ...]],
    ) -> int:
        """Address of the t-peer whose s-network the new s-peer joins."""
        if not self.s_counts:
            raise LookupError("no t-peer available to anchor an s-network")
        policy = self.config.assignment
        if policy == ASSIGN_INTEREST and interest is not None:
            return self._choose_by_interest(interest)
        if policy == ASSIGN_BINNED and coordinate is not None:
            return self._choose_by_bin(coordinate)
        if policy == ASSIGN_RANDOM:
            addrs = list(self.s_counts)
            return addrs[int(self.rng.integers(0, len(addrs)))]
        # balanced (default): smallest s-network, ties by address for
        # determinism.
        return min(self.s_counts, key=lambda a: (self.s_counts[a], a))

    def _choose_by_interest(self, interest: str) -> int:
        t = self.interest_map.get(interest)
        if t is not None and t in self.s_counts:
            return t
        # First peer with this interest: anchor the interest at the
        # t-peer owning the hash of the interest label, so data of the
        # category (whose d_ids cluster near that hash; see
        # workloads.keys) lands in the same segment.
        _, owner = self.ring.owner_of(self.idspace.hash_key(interest))
        self.interest_map[interest] = owner
        return owner

    def _choose_by_bin(self, coordinate: Tuple[int, ...]) -> int:
        """Landmark binning: longest common prefix of landmark orderings.

        Peers whose orderings agree are physically close (Section 5.2);
        ties break toward the smaller s-network so clusters spread
        round-robin over equally-near s-networks.
        """

        def prefix_len(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
            n = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                n += 1
            return n

        best = None
        best_key = (-1, 0, 0)
        for t_addr in self.s_counts:
            coord = self.t_coords.get(t_addr, ())
            key = (prefix_len(coordinate, coord), -self.s_counts[t_addr], -t_addr)
            if key > best_key:
                best_key = key
                best = t_addr
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_ServerJoin(self, msg: ServerJoin) -> None:
        """Answer a join request with role, id material and entry peer.

        Bootstrap is serialized: while the very first t-peer's join is
        outstanding the ring directory is empty, and answering anyone
        else would mint a second, disjoint ring.  Such requests wait
        until the bootstrap's ``t_join`` confirmation arrives.
        """
        if not self.ring:
            if self._bootstrap_pending:
                self._waiting_joins.append(msg)
                return
            self._bootstrap_pending = True
            p_id = self.generate_pid(msg.address)
            if msg.coordinate is not None:
                self.t_coords[msg.address] = tuple(msg.coordinate)
            self.joins_served += 1
            self.send(
                msg.address,
                ServerJoinReply(role="t", p_id=p_id, entry_peer=-1, landmarks=self.landmarks),
            )
            return
        self.joins_served += 1
        role = self.decide_role(msg.capacity, msg.address)
        if role == "t":
            p_id = self.generate_pid(msg.address)
            _, entry = self.ring.random_member(self.rng)
            if msg.coordinate is not None:
                self.t_coords[msg.address] = tuple(msg.coordinate)
            reply = ServerJoinReply(
                role="t", p_id=p_id, entry_peer=entry, landmarks=self.landmarks
            )
        else:
            anchor = self.choose_snetwork(msg.interest, msg.coordinate)
            p_id = self.ring.pid_of(anchor) or 0
            # Count the assignment immediately: the server made the
            # decision, so waiting for the s_join confirmation would
            # let concurrent joiners all pile onto the same "smallest"
            # s-network.
            self.s_counts[anchor] = self.s_counts.get(anchor, 0) + 1
            self.s_count += 1
            reply = ServerJoinReply(
                role="s", p_id=p_id, entry_peer=anchor, landmarks=self.landmarks
            )
        self.send(msg.address, reply)

    def on_ServerUpdate(self, msg: ServerUpdate) -> None:
        """Keep the directory in sync with completed membership events."""
        if msg.kind == "t_join":
            if msg.address not in self.ring:
                self.ring.insert(msg.p_id, msg.address)
                self.s_counts.setdefault(msg.address, 0)
                self.t_count += 1
            if self._bootstrap_pending:
                self._bootstrap_pending = False
                waiting, self._waiting_joins = self._waiting_joins, []
                for queued in waiting:
                    self.on_ServerJoin(queued)
        elif msg.kind == "t_leave":
            if msg.address in self.ring:
                self.ring.remove(msg.address)
                self.s_counts.pop(msg.address, None)
                self.t_count -= 1
        elif msg.kind == "t_handoff":
            old = msg.extra
            if old in self.ring:
                self.ring.substitute(old, msg.address)
                count = self.s_counts.pop(old, 0)
                # The promoted peer was an s-peer of this network.
                self.s_counts[msg.address] = max(0, count - 1)
                self.s_count -= 1
                if old in self.t_coords:
                    self.t_coords[msg.address] = self.t_coords.pop(old)
            # Answer with authoritative ring pointers: when several
            # adjacent t-peers hand off at once, each promoted peer's
            # inherited pointers may name departed addresses; the reply
            # (reflecting all previously processed handoffs) plus the
            # RingNotify assertions it triggers make the ring converge.
            self._send_repair(msg.address)
        elif msg.kind == "s_join":
            # Already counted optimistically at assignment time; the
            # confirmation only matters when the peer was re-anchored
            # between assignment and completion (crash redirects).
            pass
        elif msg.kind == "s_leave":
            if msg.extra in self.s_counts:
                self.s_counts[msg.extra] = max(0, self.s_counts[msg.extra] - 1)
            self.s_count = max(0, self.s_count - 1)
        else:
            raise ValueError(f"unknown ServerUpdate kind {msg.kind!r}")

    # ------------------------------------------------------------------
    # Crash arbitration (Section 3.2)
    # ------------------------------------------------------------------
    def on_CrashReport(self, msg: CrashReport) -> None:
        crashed = msg.crashed
        p_id = self.ring.pid_of(crashed)
        if p_id is None:
            # Already replaced (or never a t-peer): redirect the reporter
            # to whoever owns that spot now, if anyone.
            if self._last_winner_for(crashed) != -1:
                self.send(msg.reporter, RejoinRedirect(new_t=self._last_winner_for(crashed)))
            return
        election = self._elections.get(crashed)
        if election is None:
            election = _Election(crashed=crashed, p_id=p_id)
            self._elections[crashed] = election
            self.engine.call_later(
                self.config.election_grace, self._close_election, crashed
            )
        if election.decided:
            self._answer_reporter(msg, election)
            return
        if msg.reporter_is_speer:
            election.s_reporters.append(msg.reporter)
            # First s-peer to report wins (FCFS; the paper allows
            # "random or the peer with the smallest IP address").
            self._decide(election, winner=msg.reporter)
        else:
            election.t_reporters.append(msg.reporter)

    def _decide(self, election: _Election, winner: int) -> None:
        election.decided = True
        election.winner = winner
        (pred_pid, pred), (suc_pid, suc) = self.ring.neighbors_of(election.crashed)
        self.ring.substitute(election.crashed, winner)
        count = self.s_counts.pop(election.crashed, 0)
        self.s_counts[winner] = max(0, count - 1)
        self.s_count = max(0, self.s_count - 1)
        if election.crashed in self.t_coords:
            self.t_coords[winner] = self.t_coords.pop(election.crashed)
        self.send(
            winner,
            PromoteToTPeer(
                crashed=election.crashed,
                p_id=election.p_id,
                predecessor=pred if pred != election.crashed else winner,
                predecessor_pid=pred_pid if pred != election.crashed else election.p_id,
                successor=suc if suc != election.crashed else winner,
                successor_pid=suc_pid if suc != election.crashed else election.p_id,
            ),
        )
        for reporter in election.s_reporters:
            if reporter != winner:
                self.send(reporter, RejoinRedirect(new_t=winner))
        for reporter in election.t_reporters:
            self._send_repair(reporter)
        self.emit("server.election", crashed=election.crashed, winner=winner)

    def _close_election(self, crashed: int) -> None:
        """Grace expired: no s-peer replacement exists; excise the ring."""
        election = self._elections.get(crashed)
        if election is None or election.decided:
            return
        election.decided = True
        self.ring.remove(crashed)
        self.s_counts.pop(crashed, None)
        self.t_count -= 1
        for reporter in election.t_reporters:
            self._send_repair(reporter)
        self.emit("server.excise", crashed=crashed)

    def _answer_reporter(self, msg: CrashReport, election: _Election) -> None:
        if msg.reporter_is_speer:
            if election.winner != -1:
                self.send(msg.reporter, RejoinRedirect(new_t=election.winner))
        else:
            self._send_repair(msg.reporter)

    def _send_repair(self, t_address: int) -> None:
        if t_address not in self.ring:
            return
        (pred_pid, pred), (suc_pid, suc) = self.ring.neighbors_of(t_address)
        self.send(
            t_address,
            RingRepairReply(
                predecessor=pred,
                predecessor_pid=pred_pid,
                successor=suc,
                successor_pid=suc_pid,
            ),
        )

    def _last_winner_for(self, crashed: int) -> int:
        election = self._elections.get(crashed)
        return election.winner if election is not None else -1

    def on_LoadTransfer(self, msg: LoadTransfer) -> None:
        """Relay a stranded departure dump to the current segment owner.

        A disconnected leaver whose cached pointers all went stale falls
        back to the server; the directory still knows who anchors the
        items' segment.
        """
        if not self.ring or not msg.items:
            return
        _, owner = self.ring.owner_of(msg.items[0][2])
        self.send(owner, msg)

    def on_SRejoinRequest(self, msg: SRejoinRequest) -> None:
        """Route a stale rejoin to the current anchor of the segment."""
        if not self.ring:
            return
        _, owner = self.ring.owner_of(msg.p_id)
        self.send(owner, msg)

    def on_RingRepairRequest(self, msg: RingRepairRequest) -> None:
        """A t-peer noticed a dead ring neighbor; hand it fresh pointers."""
        suspect = msg.suspect
        if suspect in self.ring and not self.transport.is_reachable(suspect):
            # Treat like a crash report from a t-peer.
            self.on_CrashReport(
                CrashReport(crashed=suspect, reporter=msg.sender, reporter_is_speer=False)
            )
        else:
            if suspect in self.ring:
                # The transport still believes the suspect is up.  In the
                # live runtime reachability only flips after a delivery
                # fails, and the server may not have sent the suspect
                # anything since it died -- so probe it.  A dead suspect
                # exhausts the connect retries and turns unreachable,
                # letting the reporter's next repair request (neighbor
                # timers re-fire periodically) take the crash path; a
                # live suspect just ignores a stray HELLO.
                self.send(suspect, Hello())
            self._send_repair(msg.sender)

    def unhandled(self, msg: Message) -> None:
        raise NotImplementedError(
            f"server has no handler for {type(msg).__name__}"
        )
