"""Per-peer (key, value) database.

Section 3.1: "A data item is represented by a (key, value) pair ...
Each peer receiving the flooding packets or random walk packets checks
its own database for the data item queried."

The store also implements the two bulk moves of Table 1's pseudocode:
``loadtransfer`` (items in a segment move to a newly joined t-peer) and
``loaddump`` (a leaving peer hands everything to its successor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..overlay.idspace import IdSpace

__all__ = ["DataItem", "DataStore"]


@dataclass(frozen=True)
class DataItem:
    """One stored (key, value) pair plus its hashed id."""

    key: str
    value: Any
    d_id: int


class DataStore:
    """Dictionary-backed item database keyed by the data key.

    Re-inserting an existing key overwrites its value (standard DHT
    ``store`` semantics).
    """

    def __init__(self, idspace: IdSpace) -> None:
        self._idspace = idspace
        self._items: Dict[str, DataItem] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items.values())

    # ------------------------------------------------------------------
    def insert(self, key: str, value: Any, d_id: Optional[int] = None) -> DataItem:
        """Insert/overwrite an item; computes ``d_id`` if not given."""
        if d_id is None:
            d_id = self._idspace.hash_key(key)
        item = DataItem(key, value, d_id)
        self._items[key] = item
        return item

    def insert_item(self, item: DataItem) -> None:
        """Insert an already-materialised item (bulk transfers)."""
        self._items[item.key] = item

    def get(self, key: str) -> Optional[DataItem]:
        """Look the key up locally; None if absent."""
        return self._items.get(key)

    def delete(self, key: str) -> bool:
        """Remove an item; returns whether it was present."""
        return self._items.pop(key, None) is not None

    def keys(self) -> List[str]:
        return list(self._items)

    # ------------------------------------------------------------------
    # Bulk moves from Table 1
    # ------------------------------------------------------------------
    def extract_segment(self, pred_pid: int, new_pid: int) -> List[DataItem]:
        """Remove and return items whose ``d_id`` is in ``(pred, new]``.

        Implements ``loadtransfer``: when a new t-peer with id ``new_pid``
        is inserted after the segment boundary ``pred_pid``, all items it
        is now responsible for move to it.
        """
        moved = [
            item
            for item in self._items.values()
            if self._idspace.owner_segment_contains(item.d_id, pred_pid, new_pid)
        ]
        for item in moved:
            del self._items[item.key]
        return moved

    def extract_all(self) -> List[DataItem]:
        """Remove and return everything (``loaddump`` on leave)."""
        moved = list(self._items.values())
        self._items.clear()
        return moved

    def as_tuples(self) -> Tuple[Tuple[str, Any], ...]:
        """Serialise to (key, value) tuples for message payloads."""
        return tuple((item.key, item.value) for item in self._items.values())
