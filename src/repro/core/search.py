"""Alternative s-network search primitives.

Two extensions the paper names but does not evaluate:

* **random walks** (Section 1: unstructured networks "use flooding or
  random walks to look up data items") -- ``search_mode="walk"`` sends
  ``walkers`` independent walkers with a per-walker hop budget instead
  of a TTL flood.  Walks touch far fewer peers per query but trade
  success probability for it; the ablation benchmark quantifies the
  trade.
* **partial/keyword search** (Section 5.3) -- ``search(prefix)`` floods
  a prefix query through the peer's own s-network; *every* matching
  peer answers with *all* its matches, and the origin aggregates until
  its timer expires.  Unlike exact lookups there is no single holder,
  which is exactly why the paper pairs this with interest-based
  s-networks (the category's data all lives in one network).

Both are implemented by :class:`SearchMixin` on the hybrid peer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..overlay.messages import PartialQuery, PartialResult, WalkQuery
from ..sim.timers import Timer

__all__ = ["SearchMixin", "PartialSearch"]


class PartialSearch:
    """Origin-side state of one partial (prefix) search."""

    __slots__ = ("timer", "prefix", "matches", "holders", "done")

    def __init__(self, timer: Timer, prefix: str) -> None:
        self.timer = timer
        self.prefix = prefix
        self.matches: Dict[str, Any] = {}
        self.holders: set = set()
        self.done = False


class SearchMixin:
    """Random-walk lookups and prefix search."""

    # ==================================================================
    # Random walks
    # ==================================================================
    def launch_walkers(
        self, qid: int, key: str, d_id: int, span_id: int = -1, hops: int = 0
    ) -> None:
        """Start ``config.walkers`` random walks from this peer.

        ``span_id``/``hops`` thread the lookup trace span through: when
        the walk is launched by a remote ring lookup, hops already
        travelled on the ring carry over into the walkers.
        """
        targets = sorted(self.flood_targets())
        if not targets:
            return
        budget = self.config.walk_ttl
        for i in range(self.config.walkers):
            nxt = targets[int(self.rng.integers(0, len(targets)))]
            walker = WalkQuery(
                d_id=d_id, key=key, origin=self.address, query_id=qid,
                ttl=budget, span_id=span_id,
            )
            walker.hop_count = hops
            self.send(nxt, walker)

    def on_WalkQuery(self, msg: WalkQuery) -> None:
        """One walker step: check, then wander on."""
        self.queries.contact(msg.query_id)
        self.note_query_activity(msg.sender, msg.query_id)
        if self.wants_trace("lookup.hop"):
            self.emit(
                "lookup.hop", span=msg.span_id, query_id=msg.query_id,
                hop=msg.hop_count + 1, kind="walk",
            )
        item = self.database.get(msg.key) or self.cache_lookup(msg.key)
        if item is not None:
            self._answer(msg.origin, msg.query_id, item, hops=msg.hop_count + 1)
            return
        if msg.ttl <= 1:
            return
        candidates = sorted(self.flood_targets(exclude=msg.sender))
        if not candidates:
            # Dead end (leaf): step back through the sender.
            candidates = [msg.sender] if msg.sender != -1 else []
        if not candidates:
            return
        nxt = candidates[int(self.rng.integers(0, len(candidates)))]
        fwd = WalkQuery(
            d_id=msg.d_id, key=msg.key, origin=msg.origin,
            query_id=msg.query_id, ttl=msg.ttl - 1, span_id=msg.span_id,
        )
        fwd.hop_count = msg.hop_count + 1
        self.send(nxt, fwd)

    # ==================================================================
    # Partial / keyword search (Section 5.3)
    # ==================================================================
    def search(self, prefix: str, timeout: Optional[float] = None) -> int:
        """Prefix search in this peer's own s-network; returns a query id.

        Results accumulate until the timer fires; read them afterwards
        with :meth:`search_results`.  The registry records the search
        like a lookup: success = at least one match arrived.
        """
        if not prefix:
            raise ValueError("prefix must be non-empty")
        rec = self.queries.start(
            self.address, f"partial:{prefix}", 0, self.engine.now, local=True
        )
        qid = rec.query_id
        timer = Timer(
            self.engine,
            timeout if timeout is not None else self.config.lookup_timeout,
            lambda: self._finish_search(qid),
        )
        state = PartialSearch(timer, prefix)
        self.pending_searches[qid] = state
        timer.start()
        # Check our own database first, then flood the s-network.
        for item in self.database:
            if item.key.startswith(prefix):
                state.matches[item.key] = item.value
                state.holders.add(self.address)
        query = PartialQuery(
            prefix=prefix, origin=self.address, query_id=qid, ttl=self.config.ttl
        )
        self.seen_queries.add((qid, 0))
        self.send_many(self.flood_targets(), query)
        return qid

    def on_PartialQuery(self, msg: PartialQuery) -> None:
        """Flood step: report every local match, keep flooding.

        Unlike exact lookups, a hit does NOT stop the flood -- other
        peers may hold further matches (this is the "partial lookup"
        semantics YAPPERS popularised; the paper contrasts itself for
        exact search but adopts the flood for keyword queries).
        """
        seen_key = (msg.query_id, 0)
        if seen_key in self.seen_queries:
            self.queries.contact(msg.query_id, duplicate=True)
            return
        self.seen_queries.add(seen_key)
        self.queries.contact(msg.query_id)
        self.note_query_activity(msg.sender, msg.query_id)
        matches = tuple(
            (item.key, item.value)
            for item in self.database
            if item.key.startswith(msg.prefix)
        )
        if matches:
            self.answers_served += 1
            self.send(
                msg.origin,
                PartialResult(query_id=msg.query_id, matches=matches, holder=self.address),
            )
        if msg.ttl > 1:
            fwd = PartialQuery(
                prefix=msg.prefix, origin=msg.origin,
                query_id=msg.query_id, ttl=msg.ttl - 1,
            )
            self.send_many(self.flood_targets(exclude=msg.sender), fwd)

    def on_PartialResult(self, msg: PartialResult) -> None:
        state = self.pending_searches.get(msg.query_id)
        if state is None or state.done:
            return
        for key, value in msg.matches:
            state.matches[key] = value
        state.holders.add(msg.holder)

    def _finish_search(self, qid: int) -> None:
        state = self.pending_searches.get(qid)
        if state is None or state.done:
            return
        state.done = True
        state.timer.cancel()
        if state.matches:
            self.queries.succeed(qid, self.engine.now, holder=-1)
        else:
            self.queries.fail(qid, self.engine.now)
        self.emit("search.done", query_id=qid, matches=len(state.matches))

    def search_results(self, qid: int) -> Optional[Dict[str, Any]]:
        """Matches of a finished search (None if unknown/still running)."""
        state = self.pending_searches.get(qid)
        if state is None or not state.done:
            return None
        return dict(state.matches)

    def search_done(self, qid: int) -> bool:
        state = self.pending_searches.get(qid)
        return state is not None and state.done
